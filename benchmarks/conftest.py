"""Shared helpers for the paper-artifact benchmarks.

Each benchmark regenerates one table or figure from the paper, prints the
rows, writes them under ``benchmarks/results/``, and asserts the paper's
qualitative shape.  Select the experiment scale with::

    REPRO_BENCH_SCALE=small|medium|full pytest benchmarks/ --benchmark-only

(default: medium).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import FULL, MEDIUM, SMALL

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {"small": SMALL, "medium": MEDIUM, "full": FULL}


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "medium").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def artifact():
    """Writer: artifact('fig4', text) -> benchmarks/results/fig4.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write


@pytest.fixture(scope="session")
def shared_traces(scale):
    """The three Azure-like trace samples, generated once per session."""
    from repro.experiments import make_traces

    return make_traces(scale)
