"""Full-stack cluster study benchmark (everything composed)."""

from repro.experiments import format_table, run_cluster_study


def test_cluster_trace_study(benchmark, scale, artifact, shared_traces):
    result = benchmark.pedantic(
        lambda: run_cluster_study(scale, trace=shared_traces["representative"]),
        rounds=1, iterations=1,
    )
    per_worker = [
        {"worker": name, "invocations": count}
        for name, count in sorted(result.per_worker_invocations.items())
    ]
    artifact(
        "cluster_study",
        format_table([result.as_dict()], title="Cluster study — summary")
        + "\n\n"
        + format_table(per_worker, title="Per-worker placement"),
    )

    # The cluster digests the workload: nothing (or almost nothing) shed
    # at 60% provisioned load.
    assert result.drop_ratio < 0.01
    # Keep-alive works at cluster scale: most invocations run warm.
    assert result.cold_ratio < 0.5
    # CH-BL keeps locality while still spreading load: every worker took
    # part, and spillover forwards occurred under bursts.
    assert all(count > 0 for count in result.per_worker_invocations.values())
    assert result.placements == result.invocations
    # The load-fitting hit its Little's-law target (0.6 * 4 workers * 8 cores).
    assert abs(result.total_load - 19.2) < 0.5
