"""Figure 1 benchmark: control-plane overhead vs concurrent invocations.

Regenerates the paper's headline comparison: OpenWhisk's warm-path
overhead (>10 ms median, p99 into the 100s of ms, erratic scaling) against
Ilúvatar's (~2 ms, tails <10 ms) as closed-loop concurrency grows.
"""

import numpy as np

from repro.experiments import format_table, run_fig1


def test_fig1_overhead_scaling(benchmark, scale, artifact):
    rows = benchmark.pedantic(
        lambda: run_fig1(scale), rounds=1, iterations=1
    )
    table = format_table(
        [r.as_dict() for r in rows],
        title="Figure 1 — control-plane overhead vs concurrency (ms)",
    )
    artifact("fig1_overhead_scaling", table)

    ow = {r.clients: r for r in rows if r.system == "openwhisk"}
    ilu = {r.clients: r for r in rows if r.system == "iluvatar"}
    for clients in scale.fig1_clients:
        # Paper: OpenWhisk >10 ms median; Ilúvatar ~2 ms — a >=10x gap
        # (the paper reports up to 100x including the tail).
        assert ow[clients].p50_ms > 10.0
        assert ilu[clients].p50_ms < 5.0
        assert ow[clients].p50_ms / ilu[clients].p50_ms > 5.0
    # Ilúvatar's tail stays single-digit ms below saturation.
    light = [c for c in scale.fig1_clients if c <= 32]
    assert all(ilu[c].p99_ms < 15.0 for c in light)
    # OpenWhisk's p99 reaches into the hundreds of ms somewhere.
    assert max(ow[c].p99_ms for c in scale.fig1_clients) > 100.0
