"""Figure 4 benchmark: % increase in execution time vs cache size.

Paper shapes asserted:
* representative — GD reduces cold-start overhead >=3x vs TTL across the
  mid/large cache sizes, and reaches its floor at a much smaller cache;
* rare — caching policies (LRU) beat TTL ~2x at large sizes, HIST sits
  between TTL and the caching family;
* random — recency dominates; LRU among the best.
"""

import numpy as np

from repro.experiments import fig4_rows, format_table, run_keepalive_sweep


def _get(rows, trace, policy, gb):
    for r in rows:
        if (r["trace"], r["policy"], r["cache_gb"]) == (trace, policy, gb):
            return r["exec_increase_pct"]
    raise KeyError((trace, policy, gb))


def test_fig4_exec_time_increase(benchmark, scale, artifact, shared_traces):
    results = benchmark.pedantic(
        lambda: run_keepalive_sweep(scale, traces=shared_traces),
        rounds=1, iterations=1,
    )
    rows = fig4_rows(results)
    artifact(
        "fig4_exec_increase",
        format_table(rows, title="Figure 4 — % increase in execution time"),
    )

    sizes = scale.cache_sizes_gb
    large = [gb for gb in sizes if gb >= np.median(sizes)]

    # Representative: GD >= 3x better than TTL somewhere in the sweep and
    # never meaningfully worse.
    ratios = []
    for gb in large:
        ttl = _get(rows, "representative", "TTL", gb)
        gd = _get(rows, "representative", "GD", gb)
        assert gd <= ttl * 1.05
        if gd > 0:
            ratios.append(ttl / gd)
    assert max(ratios) >= 3.0 or any(
        _get(rows, "representative", "GD", gb) < 0.5 for gb in large
    )

    # Rare: LRU ~2x better than TTL at the largest cache size.
    big = max(sizes)
    assert _get(rows, "rare", "LRU", big) <= _get(rows, "rare", "TTL", big) / 1.5
    # HIST between TTL and caching-based policies on rare.
    hist = _get(rows, "rare", "HIST", big)
    assert hist <= _get(rows, "rare", "TTL", big) * 1.05
    assert hist >= _get(rows, "rare", "GD", big) * 0.95

    # Random: LRU within 25% of the best policy at the largest size.
    best = min(
        _get(rows, "random", p, big) for p in ("TTL", "LRU", "GD", "LND", "FREQ")
    )
    assert _get(rows, "random", "LRU", big) <= best * 1.25 + 0.1
