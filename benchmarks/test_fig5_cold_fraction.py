"""Figure 5 benchmark: cold-start (miss) fraction vs cache size.

Same sweep as Figure 4, reported as miss-ratio curves.  Shapes: miss
fractions fall with cache size for work-conserving policies; TTL flattens
(non-work-conserving); LRU ≈ TTL equivalence on rare-object workloads at
small sizes, diverging once the cache can hold the reuse distance.
"""

import numpy as np

from repro.experiments import fig5_rows, format_table, run_keepalive_sweep


def _get(rows, trace, policy, gb):
    for r in rows:
        if (r["trace"], r["policy"], r["cache_gb"]) == (trace, policy, gb):
            return r["cold_fraction"]
    raise KeyError((trace, policy, gb))


def test_fig5_cold_start_fraction(benchmark, scale, artifact, shared_traces):
    results = benchmark.pedantic(
        lambda: run_keepalive_sweep(scale, traces=shared_traces),
        rounds=1, iterations=1,
    )
    rows = fig5_rows(results)
    artifact(
        "fig5_cold_fraction",
        format_table(rows, title="Figure 5 — cold-start fraction"),
    )

    sizes = sorted(scale.cache_sizes_gb)
    big, small = sizes[-1], sizes[0]

    for r in rows:
        assert 0.0 <= r["cold_fraction"] <= 1.0

    # Work-conserving policies improve (weakly) with cache size.
    for trace in ("representative", "rare", "random"):
        for policy in ("LRU", "GD", "LND", "FREQ"):
            assert _get(rows, trace, policy, big) <= _get(
                rows, trace, policy, small
            ) + 0.02

    # TTL saturates: beyond some size, more memory stops helping it while
    # LRU keeps improving (the rare-object divergence).
    assert _get(rows, "rare", "LRU", big) < _get(rows, "rare", "TTL", big)

    # At the smallest cache, TTL ~ LRU (classic equivalence for rare
    # objects under pressure).
    assert abs(
        _get(rows, "rare", "TTL", small) - _get(rows, "rare", "LRU", small)
    ) < 0.05
