"""Figure 6 benchmark: FaasCache vs OpenWhisk on skewed workloads."""

from repro.experiments import format_table, run_litmus


def test_fig6_litmus_tests(benchmark, scale, artifact):
    results = benchmark.pedantic(
        lambda: run_litmus(scale), rounds=1, iterations=1
    )
    rows = [r.as_dict() for r in results]
    artifact(
        "fig6_litmus",
        format_table(rows, title="Figure 6 — warm/cold/dropped per system"),
    )

    by_key = {(r.workload, r.system): r for r in results}
    # Aggregate direction across the litmus suite: FaasCache serves more
    # and sheds less (paper: 50-100% more warm+cold, ~2x total served).
    fc_served = sum(r.served for r in results if r.system == "faascache")
    ow_served = sum(r.served for r in results if r.system == "openwhisk")
    fc_dropped = sum(r.dropped for r in results if r.system == "faascache")
    ow_dropped = sum(r.dropped for r in results if r.system == "openwhisk")
    assert fc_served > ow_served
    assert fc_dropped < ow_dropped

    # The skewed-frequency workload individually shows the win.
    skew_fc = by_key[("skew_frequency", "faascache")]
    skew_ow = by_key[("skew_frequency", "openwhisk")]
    assert skew_fc.warm >= skew_ow.warm
    assert skew_fc.served >= skew_ow.served
