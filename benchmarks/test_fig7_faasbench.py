"""Figure 7 benchmark: per-function breakdown, FaasCache vs OpenWhisk."""

from repro.experiments import fig7_rows, format_table
from repro.experiments.fig7_faasbench import run_faasbench, warm_hit_ratios


def test_fig7_faasbench_breakdown(benchmark, scale, artifact):
    breakdown = benchmark.pedantic(
        lambda: run_faasbench(scale), rounds=1, iterations=1
    )
    rows = []
    for system, functions in breakdown.items():
        for fqdn in sorted(functions):
            counts = functions[fqdn]
            served = counts["warm"] + counts["cold"]
            rows.append(
                {
                    "system": system,
                    "function": fqdn,
                    "warm": counts["warm"],
                    "cold": counts["cold"],
                    "dropped": counts["dropped"],
                    "warm_ratio": counts["warm"] / served if served else float("nan"),
                }
            )
    artifact(
        "fig7_faasbench",
        format_table(rows, title="Figure 7 — per-function outcome breakdown"),
    )

    ratios = warm_hit_ratios(breakdown)
    # The hot, high-init, small floating-point function keeps (or gains)
    # warm-hit ratio under Greedy-Dual (paper: ~3x better hit ratio).
    assert (
        ratios["faascache"]["float_op.1"]
        >= ratios["openwhisk"]["float_op.1"] * 0.95
    )
    # FaasCache serves at least as many float_op requests warm.
    fc_float = breakdown["faascache"]["float_op.1"]
    ow_float = breakdown["openwhisk"]["float_op.1"]
    assert fc_float["warm"] >= ow_float["warm"] * 0.95

    # The memory-heavy CNN background is comparatively de-prioritized by
    # Greedy-Dual: its warm ratio does not improve as much as float_op's.
    def ml_ratio(system):
        warm = cold = 0
        for fqdn, counts in breakdown[system].items():
            if fqdn.startswith("ml_inference"):
                warm += counts["warm"]
                cold += counts["cold"]
        return warm / max(warm + cold, 1)

    float_gain = ratios["faascache"]["float_op.1"] - ratios["openwhisk"]["float_op.1"]
    ml_gain = ml_ratio("faascache") - ml_ratio("openwhisk")
    assert float_gain >= ml_gain
