"""Figure 8 benchmark: dynamic cache sizing via miss-speed control."""

from repro.experiments import format_table, run_fig8


def test_fig8_dynamic_provisioning(benchmark, scale, artifact, shared_traces):
    outcome = benchmark.pedantic(
        lambda: run_fig8(scale, trace=shared_traces["representative"]),
        rounds=1, iterations=1,
    )
    times, sizes, speeds = outcome.controller.timeseries()
    rows = [
        {"t_min": t / 60.0, "size_mb": s, "miss_per_s": m}
        for t, s, m in zip(times, sizes, speeds)
    ]
    summary = outcome.as_dict()
    artifact(
        "fig8_dynamic",
        format_table(rows, title="Figure 8 — cache size / miss-speed timeseries")
        + "\n\n"
        + format_table([summary], title="Summary"),
    )

    # Paper shape: the dynamic average sits well below the conservative
    # static provision (paper: ~30% smaller) without pinning to the floor.
    assert outcome.savings > 0.10
    assert outcome.average_size_mb > outcome.controller.config.min_size_mb
    # The controller resizes only outside the 30% error band — there must
    # be both resize and hold decisions in a realistic run.
    resized = [s.resized for s in outcome.controller.history]
    assert any(resized)
    # Miss speed stays within an order of magnitude of the target on
    # average (it tracks, not diverges).
    target = outcome.controller.config.target_miss_speed
    avg_speed = sum(speeds) / len(speeds)
    assert 0.1 * target < avg_speed < 10.0 * target
