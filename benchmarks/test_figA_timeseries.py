"""Appendix-figure benchmark: invocations/sec timeseries of the traces."""

import numpy as np

from repro.experiments import appendix_timeseries, format_table


def test_appendix_trace_timeseries(benchmark, scale, artifact):
    series = benchmark.pedantic(
        lambda: appendix_timeseries(scale), rounds=1, iterations=1
    )
    rows = []
    for name, arr in series.items():
        rows.append(
            {
                "trace": name,
                "bins": arr.size,
                "mean_rps": float(arr.mean()),
                "peak_rps": float(arr.max()),
                "p10_rps": float(np.percentile(arr, 10)),
            }
        )
    artifact(
        "figA_timeseries",
        format_table(rows, title="Appendix — invocations/sec per trace"),
    )

    # The full trace dominates every sample.
    by_name = {r["trace"]: r for r in rows}
    for sample in ("representative", "rare", "random"):
        assert by_name[sample]["mean_rps"] <= by_name["full"]["mean_rps"]
    # Diurnal wave: the full trace's peak is well above its 10th pct.
    assert by_name["full"]["peak_rps"] > 1.5 * max(by_name["full"]["p10_rps"], 0.01)
    # The representative sample inherits the diurnal shape (paper: it
    # captures the full trace's daily pattern).
    rep = series["representative"]
    full = series["full"]
    n = min(rep.size, full.size)
    if rep[:n].std() > 0 and full[:n].std() > 0:
        corr = float(np.corrcoef(rep[:n], full[:n])[0, 1])
        assert corr > 0.2
