"""Hit-ratio-curve provisioning benchmark (the abstract's second claim).

The paper's abstract: reuse distances and hit-ratio curves "can also be
used for auto-scaled server resource provisioning".  This benchmark
computes the representative trace's HRC analytically, asks it for the
cache size meeting a cold-ratio target, and validates the recommendation
against the keep-alive simulator — the static, one-pass counterpart of
Figure 8's feedback controller.
"""

from repro.experiments import format_table
from repro.keepalive import hit_ratio_curve, recommend_cache_size, simulate


def test_hrc_based_provisioning(benchmark, scale, artifact, shared_traces):
    trace = shared_traces["representative"]

    def analyze():
        curve = hit_ratio_curve(trace)
        targets = (0.30, 0.20, 0.10)
        rows = []
        for target in targets:
            size = recommend_cache_size(trace, target_cold_ratio=target)
            row = {"target_cold_ratio": target, "recommended_mb": size}
            if size is not None:
                sim = simulate(trace, "LRU", size)
                row["simulated_cold_ratio"] = sim.cold_ratio
            rows.append(row)
        return curve, rows

    curve, rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    artifact(
        "hrc_provisioning",
        format_table(rows, title="HRC-recommended cache sizes vs simulation")
        + f"\n\ncompulsory miss ratio: {curve.compulsory_miss_ratio:.4f}",
    )

    # The curve is a valid monotone CDF-like object.
    assert 0 <= curve.compulsory_miss_ratio < 1
    assert all(b >= a - 1e-12 for a, b in
               zip(curve.hit_ratios, curve.hit_ratios[1:]))

    # Recommendations are achievable and verified: the LRU simulation at
    # the recommended size lands within a small tolerance of the target
    # (concurrency effects are the only divergence source).
    for row in rows:
        if row["recommended_mb"] is None:
            assert row["target_cold_ratio"] < curve.compulsory_miss_ratio
            continue
        assert row["simulated_cold_ratio"] <= row["target_cold_ratio"] + 0.03

    # Tighter targets cost monotonically more memory.
    sizes = [r["recommended_mb"] for r in rows if r["recommended_mb"]]
    assert sizes == sorted(sizes)
