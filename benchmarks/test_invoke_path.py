"""Invocation fast-path throughput and trace-cache benchmarks.

This is the perf-trajectory benchmark for the control-plane hot path: it
drives a large burst of warm invocations through a single null-backend
worker and records simulator throughput (invocations simulated per wall
second), the per-invocation kernel overhead for warm and cold paths, and
the content-addressed trace cache's cold-vs-warm generation time.  All
numbers land in ``BENCH_invoke_path.json`` at the repo root so every
future PR can be compared against this one.

``PRE_PR_TPUT`` is the throughput of the same harness measured on the
commit before the fast-path work (pooled kernel events, waiter fast
path, begin/end spans, batched jitter), interleaved A/B on the same
machine; the acceptance bar for this PR is >= 1.5x that.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

from repro import Environment, Worker, WorkerConfig
from repro.experiments import make_traces
from repro.workloads import lookbusy_function

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_invoke_path.json"

# Throughput of this exact harness at the pre-PR commit (best of 5,
# interleaved with post-PR runs on the same machine).
PRE_PR_TPUT = 5906.7
MIN_TPUT_SPEEDUP = 1.5

# Warm trace generation must beat cold generation by at least this much.
MIN_CACHE_SPEEDUP = 5.0

N_INVOCATIONS = 4000
N_COLD_FUNCTIONS = 400


def _drive_warm(n: int = N_INVOCATIONS) -> float:
    """Wall seconds to simulate ``n`` warm invocations on one worker."""
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            cores=512,
            memory_mb=262_144.0,
            backend="null",
            bypass_enabled=False,
        ),
    )
    worker.start()
    worker.register_sync(lookbusy_function("tp", run_time=0.01, memory_mb=64.0))
    start = time.perf_counter()
    events = [worker.async_invoke("tp.1") for _ in range(n)]
    env.run(until=600.0)
    elapsed = time.perf_counter() - start
    worker.stop()
    assert all(e.triggered and not e.value.dropped for e in events)
    return elapsed


def _drive_cold(n: int = N_COLD_FUNCTIONS) -> float:
    """Wall seconds to simulate ``n`` cold starts (one per function)."""
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            cores=512,
            memory_mb=262_144.0,
            backend="null",
            bypass_enabled=False,
        ),
    )
    worker.start()
    for i in range(n):
        worker.register_sync(
            lookbusy_function(f"cold-{i}", run_time=0.01, memory_mb=64.0)
        )
    start = time.perf_counter()
    events = [worker.async_invoke(f"cold-{i}.1") for i in range(n)]
    env.run(until=600.0)
    elapsed = time.perf_counter() - start
    worker.stop()
    assert all(e.triggered and not e.value.dropped for e in events)
    assert all(e.value.cold for e in events)
    return elapsed


def _measure_cache(scale, cache_dir: Path) -> dict:
    """Cold vs warm trace generation through the artifact cache."""
    shutil.rmtree(cache_dir, ignore_errors=True)
    t0 = time.perf_counter()
    cold_traces = make_traces(scale, cache=str(cache_dir))
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_traces = make_traces(scale, cache=str(cache_dir))
    warm_s = time.perf_counter() - t0
    for name in cold_traces:
        assert (cold_traces[name].timestamps == warm_traces[name].timestamps).all()
    shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "scale": scale.name,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
    }


def _measure(scale, cache_dir: Path) -> dict:
    # Warm up the interpreter/allocator, then keep the best of 9: the
    # throughput number is a property of the code, so the least-noisy
    # sample is the right estimator on a shared machine.
    _drive_warm(1000)
    warm_elapsed = min(_drive_warm() for _ in range(9))
    cold_elapsed = min(_drive_cold() for _ in range(3))
    tput = N_INVOCATIONS / warm_elapsed
    return {
        "benchmark": "invocation fast path + trace cache",
        "cpu_count": os.cpu_count(),
        "invocations": N_INVOCATIONS,
        "pre_pr_tput_inv_per_s": PRE_PR_TPUT,
        "tput_inv_per_s": round(tput, 1),
        "tput_speedup_vs_pre_pr": round(tput / PRE_PR_TPUT, 2),
        "warm_overhead_us_per_invocation": round(
            1e6 * warm_elapsed / N_INVOCATIONS, 2
        ),
        "cold_overhead_us_per_invocation": round(
            1e6 * cold_elapsed / N_COLD_FUNCTIONS, 2
        ),
        "trace_cache": _measure_cache(scale, cache_dir),
    }


def test_invoke_path_throughput(benchmark, scale, artifact, tmp_path):
    record = benchmark.pedantic(
        lambda: _measure(scale, tmp_path / "cache"), rounds=1, iterations=1
    )
    record["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    cache = record["trace_cache"]
    lines = [
        f"Invocation fast path (cores={record['cpu_count']})",
        f"  warm TPUT: {record['tput_inv_per_s']} inv/s "
        f"({record['tput_speedup_vs_pre_pr']}x vs pre-PR "
        f"{record['pre_pr_tput_inv_per_s']})",
        f"  kernel overhead: warm {record['warm_overhead_us_per_invocation']} "
        f"us/inv, cold {record['cold_overhead_us_per_invocation']} us/inv",
        f"  trace cache ({cache['scale']}): cold {cache['cold_s']}s, "
        f"warm {cache['warm_s']}s, {cache['speedup']}x",
    ]
    artifact("invoke_path", "\n".join(lines))
    print(f"[written to {BENCH_PATH}]")

    assert record["tput_speedup_vs_pre_pr"] >= MIN_TPUT_SPEEDUP, (
        f"expected >= {MIN_TPUT_SPEEDUP}x the pre-PR throughput "
        f"({PRE_PR_TPUT} inv/s), got {record['tput_speedup_vs_pre_pr']}x"
    )
    assert cache["speedup"] >= MIN_CACHE_SPEEDUP, (
        f"expected warm trace generation >= {MIN_CACHE_SPEEDUP}x faster "
        f"than cold, got {cache['speedup']}x"
    )
