"""Load-balancer ablation and control-plane throughput benchmarks.

Two extension benchmarks beyond the paper's figures:

* CH-BL bound-factor sensitivity — the locality/spillover tradeoff the
  design section argues about;
* control-plane throughput — how many invocations per wall-second the
  Python reproduction pushes through the full worker path with the null
  backend (the paper's "each worker can simulate 100s of cores" claim,
  measured for this implementation).
"""

import time

from repro import Environment, Worker, WorkerConfig
from repro.experiments import format_table
from repro.experiments.lb_ablation import run_lb_ablation, run_lb_policy_comparison
from repro.workloads import lookbusy_function


def test_chbl_bound_factor_ablation(benchmark, artifact):
    rows = benchmark.pedantic(
        lambda: run_lb_ablation(), rounds=1, iterations=1
    )
    artifact(
        "ablation_chbl_bound",
        format_table(rows, title="CH-BL bound-factor ablation"),
    )
    by_factor = {r["bound_factor"]: r for r in rows}
    # Tighter bounds forward more (weakly monotone).
    assert by_factor[1.0]["forwards"] >= by_factor[2.0]["forwards"]
    # Looser bounds preserve (or improve) locality.
    assert by_factor[2.0]["warm_ratio"] >= by_factor[1.0]["warm_ratio"] - 0.05
    for r in rows:
        assert r["completed"] > 0


def test_lb_policy_comparison(benchmark, artifact):
    rows = benchmark.pedantic(
        lambda: run_lb_policy_comparison(), rounds=1, iterations=1
    )
    artifact(
        "ablation_lb_policies",
        format_table(rows, title="LB policy comparison (locality effect)"),
    )
    by_policy = {r["policy"]: r for r in rows}
    # CH-BL's locality yields a higher warm ratio than round-robin.
    assert by_policy["ch_bl"]["warm_ratio"] > by_policy["round_robin"]["warm_ratio"]
    for r in rows:
        assert r["completed"] > 0


def test_control_plane_throughput(benchmark, artifact):
    """Wall-clock throughput of the full invoke path (null backend)."""

    def drive(n_invocations: int = 4000) -> float:
        env = Environment()
        worker = Worker(
            env,
            WorkerConfig(cores=512, memory_mb=262_144.0, backend="null",
                         bypass_enabled=False),
        )
        worker.start()
        f = lookbusy_function("tp", run_time=0.01, memory_mb=64.0)
        worker.register_sync(f)
        start = time.perf_counter()
        events = [worker.async_invoke("tp.1") for _ in range(n_invocations)]
        env.run(until=600.0)
        elapsed = time.perf_counter() - start
        worker.stop()
        assert all(e.triggered and not e.value.dropped for e in events)
        return n_invocations / elapsed

    throughput = benchmark.pedantic(drive, rounds=1, iterations=1)
    artifact(
        "kernel_throughput",
        format_table(
            [{"invocations_per_wall_second": throughput}],
            title="Control-plane throughput (null backend, 512 simulated cores)",
        ),
    )
    # The in-situ simulator must sustain hundreds of invocations per
    # wall-second for cluster-scale studies to be practical.
    assert throughput > 200.0
