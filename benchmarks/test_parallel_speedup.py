"""Serial-vs-parallel wall clock for the Fig-4/5 keep-alive sweep.

This is the perf-trajectory benchmark for the parallel execution engine:
it times the same sweep at ``n_jobs=1`` and ``n_jobs=min(4, cores)``,
asserts the results are bit-identical, and records both timings in
``BENCH_parallel.json`` at the repo root so every future PR can be
compared against this one.

The >=2x speedup assertion only arms on machines with >= 4 cores —
on smaller runners the numbers are still recorded, just not enforced.
"""

import dataclasses
import json
import os
import time
import warnings
from pathlib import Path

from repro.experiments import SMALL, make_traces, run_keepalive_sweep
from repro.parallel import last_run_info

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

MIN_SPEEDUP = 2.0  # acceptance bar on a >=4-core runner


def _time_sweep(sc, traces, n_jobs):
    t0 = time.perf_counter()
    results = run_keepalive_sweep(sc, traces=traces, n_jobs=n_jobs)
    elapsed = time.perf_counter() - t0
    # KeepAliveResult is deliberately eq=False (identity semantics), so
    # the serial-vs-parallel equivalence check compares field values.
    return elapsed, [(name, dataclasses.asdict(r)) for name, r in results]


def _measure(scale, shared_traces, jobs):
    entries = {"small": (SMALL, make_traces(SMALL))}
    if scale.name != "small":
        entries[scale.name] = (scale, shared_traces)
    record = {
        "benchmark": "keepalive sweep (figs 4/5), serial vs parallel",
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "scales": {},
    }
    for name, (sc, traces) in entries.items():
        serial_s, serial_results = _time_sweep(sc, traces, 1)
        parallel_s, parallel_results = _time_sweep(sc, traces, jobs)
        pool = last_run_info()
        assert serial_results == parallel_results, (
            f"parallel sweep diverged from serial at scale {name}"
        )
        record["scales"][name] = {
            "cells": len(serial_results),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else None,
            # How the "parallel" leg actually executed: a fallback run is a
            # serial number wearing a parallel label.
            "pool_used": pool["pool_used"],
            "fallback_reason": pool["fallback_reason"],
        }
    return record


def test_parallel_sweep_speedup(benchmark, scale, shared_traces, artifact):
    # At least 2 workers so the pool path is genuinely measured even on a
    # single-core runner (the speedup bar only arms at >= 4 cores).
    cores = os.cpu_count() or 1
    jobs = max(2, min(4, cores))
    record = benchmark.pedantic(
        lambda: _measure(scale, shared_traces, jobs), rounds=1, iterations=1
    )
    record["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    if cores < 2:
        # Numbers taken on a single core are pure process-pool overhead —
        # scream about it in the JSON itself so nobody quotes them as a
        # parallel-scaling result.
        record["WARNING"] = (
            f"MEASURED ON A SINGLE-CORE MACHINE (cpu_count={cores}): the "
            "speedup columns are process-pool overhead, NOT parallel "
            "scaling. Re-record on a multi-core runner before comparing."
        )
        warnings.warn(record["WARNING"], RuntimeWarning, stacklevel=1)
    if cores <= 2:
        # A "speedup" measured on <= 2 cores is process-pool overhead, not
        # parallel scaling — annotate so downstream tooling ignores it.
        record["speedup_meaningful"] = False
        record["speedup_note"] = (
            f"only {cores} core(s): speedup not meaningful, assertion skipped"
        )
    else:
        record["speedup_meaningful"] = True
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    lines = [f"Parallel sweep speedup (jobs={jobs}, cores={record['cpu_count']})"]
    for name, row in record["scales"].items():
        pool = "pool" if row["pool_used"] else f"serial! ({row['fallback_reason']})"
        lines.append(
            f"  {name}: {row['cells']} cells, serial {row['serial_s']}s, "
            f"parallel {row['parallel_s']}s, speedup {row['speedup']}x [{pool}]"
        )
    if "WARNING" in record:
        lines.append(f"  WARNING: {record['WARNING']}")
    if not record["speedup_meaningful"]:
        lines.append(f"  note: {record['speedup_note']}")
    artifact("parallel_speedup", "\n".join(lines))
    print(f"[written to {BENCH_PATH}]")

    if jobs >= 4 and record["speedup_meaningful"]:
        biggest = max(record["scales"],
                      key=lambda n: record["scales"][n]["cells"])
        assert record["scales"][biggest]["speedup"] >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x on {jobs} workers, got "
            f"{record['scales'][biggest]['speedup']}x"
        )
