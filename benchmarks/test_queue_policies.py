"""Queueing-policy and design-choice ablation benchmarks (Section 4).

Not a single paper figure, but the design section's testable claims:
SJF/EEDF cut short-function latency vs FCFS; the namespace pool hides
~100 ms of cold start; the HTTP client cache trims the warm path.
"""

import pytest

from repro.experiments import (
    format_table,
    run_bypass_ablation,
    run_coldpath_ablation,
    run_queue_policy_ablation,
    run_regulator_ablation,
)


def test_queue_discipline_ablation(benchmark, artifact):
    rows = benchmark.pedantic(
        lambda: run_queue_policy_ablation(duration=180.0), rounds=1, iterations=1
    )
    artifact(
        "ablation_queue_policies",
        format_table(rows, title="Queue discipline ablation"),
    )
    by_policy = {r["policy"]: r for r in rows}
    # Size-aware disciplines reduce short-function tail latency vs FCFS.
    assert by_policy["sjf"]["short_p99_ms"] < by_policy["fcfs"]["short_p99_ms"]
    assert by_policy["eedf"]["short_p99_ms"] < by_policy["fcfs"]["short_p99_ms"]
    # All policies complete the same work (no starvation-induced drops).
    completed = {r["completed"] for r in rows}
    assert max(completed) - min(completed) <= 0.05 * max(completed)


def test_bypass_and_regulator_ablations(benchmark, artifact):
    def run_both():
        return (
            run_bypass_ablation(duration=120.0),
            run_regulator_ablation(duration=120.0),
        )

    bypass_rows, regulator_rows = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    artifact(
        "ablation_bypass_regulator",
        format_table(bypass_rows, title="Short-function bypass ablation")
        + "\n\n"
        + format_table(regulator_rows, title="Concurrency regulator ablation"),
    )
    by_bypass = {r["bypass"]: r for r in bypass_rows}
    # Bypass helps (or at least does not hurt) short-function latency.
    assert (
        by_bypass[True]["short_p50_ms"]
        <= by_bypass[False]["short_p50_ms"] * 1.10
    )
    for rows in (bypass_rows, regulator_rows):
        for r in rows:
            assert r["completed"] > 0


def test_coldpath_ablation(benchmark, artifact):
    rows = benchmark.pedantic(
        lambda: run_coldpath_ablation(cold_starts=60), rounds=1, iterations=1
    )
    artifact(
        "ablation_coldpath",
        format_table(rows, title="Namespace pool / HTTP cache ablation"),
    )
    by_cfg = {(r["namespace_pool"], r["http_client_cache"]): r for r in rows}
    delta = (
        by_cfg[(False, True)]["cold_e2e_mean_ms"]
        - by_cfg[(True, True)]["cold_e2e_mean_ms"]
    )
    # Paper: ~100 ms of cold start hidden by the pre-created namespaces.
    assert delta == pytest.approx(100.0, rel=0.25)
    # HTTP client caching trims the warm path (paper: up to ~3 ms).
    warm_delta = (
        by_cfg[(True, False)]["warm_overhead_mean_ms"]
        - by_cfg[(True, True)]["warm_overhead_mean_ms"]
    )
    assert 0.5 < warm_delta < 5.0
