"""Single-process vs sharded wall clock for the cluster study.

The perf-trajectory benchmark for ``repro.cluster_shard``: the same
32-worker cluster study runs once on the single-process engine and once
sharded across ``min(4, cores)`` shard processes, asserts the two
:class:`ClusterStudyResult` rows are identical, and records both wall
clocks in ``BENCH_shard.json`` at the repo root.

Sharding buys wall clock only when the shards land on real cores, so the
>= 1.5x assertion arms exclusively on >= 4-core runners; on smaller
machines the numbers are still recorded — with a warning written into
the JSON itself, because a "speedup" measured on one core is IPC
overhead wearing a speedup label.
"""

import json
import os
import time
import warnings
from pathlib import Path

import pytest

from repro.cluster_shard import ShardingUnavailable
from repro.experiments.cluster_study import run_cluster_study
from repro.experiments.keepalive_sweep import make_traces

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

MIN_SPEEDUP = 1.5   # acceptance bar on a >=4-core runner
NUM_WORKERS = 32    # the cluster being sharded
CORES_PER_WORKER = 2
DURATION_CAP = 300.0


def _time_study(scale, trace, shards):
    # The trace is generated once by the caller; only the replay is timed
    # (regenerating it inside the timed region measured the trace
    # generator, which both engines share, and diluted the comparison).
    t0 = time.perf_counter()
    result = run_cluster_study(
        scale,
        trace=trace,
        num_workers=NUM_WORKERS,
        cores_per_worker=CORES_PER_WORKER,
        duration_cap=DURATION_CAP,
        status_interval=2.0,
        shards=shards,
    )
    return time.perf_counter() - t0, result


def test_sharded_study_speedup(benchmark, scale, artifact):
    cores = os.cpu_count() or 1
    shards = max(2, min(4, cores))
    trace = make_traces(scale)["representative"]

    def measure():
        serial_s, serial = _time_study(scale, trace, 1)
        try:
            sharded_s, sharded = _time_study(scale, trace, shards)
        except ShardingUnavailable as exc:  # pragma: no cover - sandbox
            pytest.skip(f"shard processes unavailable here: {exc}")
        assert sharded.as_dict() == serial.as_dict(), (
            "sharded study diverged from single-process"
        )
        assert sharded.per_worker_invocations == serial.per_worker_invocations
        return {
            "benchmark": "cluster study, single-process vs sharded",
            "cpu_count": cores,
            "num_workers": NUM_WORKERS,
            "cores_per_worker": CORES_PER_WORKER,
            "duration_cap_s": DURATION_CAP,
            "shards": shards,
            "invocations": serial.invocations,
            "serial_s": round(serial_s, 3),
            "sharded_s": round(sharded_s, 3),
            "speedup": round(serial_s / sharded_s, 2) if sharded_s > 0 else None,
        }

    record = benchmark.pedantic(measure, rounds=1, iterations=1)
    record["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    if cores < 4:
        record["WARNING"] = (
            f"MEASURED ON A {cores}-CORE MACHINE: {shards} shard processes "
            "cannot run concurrently, so the speedup column measures seam "
            "IPC overhead, NOT parallel scaling. Re-record on a >= 4-core "
            "runner before comparing."
        )
        warnings.warn(record["WARNING"], RuntimeWarning, stacklevel=1)
        record["speedup_meaningful"] = False
    else:
        record["speedup_meaningful"] = True
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        f"Sharded cluster study ({NUM_WORKERS} workers, shards={shards}, "
        f"cores={cores})",
        f"  {record['invocations']} invocations: "
        f"serial {record['serial_s']}s, sharded {record['sharded_s']}s, "
        f"speedup {record['speedup']}x",
    ]
    if "WARNING" in record:
        lines.append(f"  WARNING: {record['WARNING']}")
    artifact("shard_speedup", "\n".join(lines))
    print(f"[written to {BENCH_PATH}]")

    if record["speedup_meaningful"]:
        assert record["speedup"] >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x from {shards} shards on "
            f"{cores} cores, got {record['speedup']}x"
        )
