"""Snapshot-restore ablation (Section 3.2's optional cold-start path).

Measures repeat-cold-start latency for every FunctionBench application
with snapshots off vs on.  Snapshots trade capture work (off the critical
path) for restores that skip both the sandbox build and the function's
initialization — the win grows with init time.
"""

from repro import Environment, Worker, WorkerConfig
from repro.experiments import format_table
from repro.workloads import FUNCTIONBENCH, registration_for


def _repeat_cold_latency(key: str, snapshots: bool, repeats: int = 5) -> float:
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            backend="containerd",
            cores=8,
            memory_mb=65536.0,
            snapshots_enabled=snapshots,
            bypass_enabled=False,
        ),
    )
    worker.start()
    worker.register_sync(registration_for(key))
    fqdn = f"{key}.1"
    # First cold start primes the snapshot (when enabled).
    env.run_process(worker.invoke(fqdn))
    worker.pool.evict_for(1e9)
    env.run(until=env.now + 30.0)  # capture + destroy settle
    total = 0.0
    for _ in range(repeats):
        inv = env.run_process(worker.invoke(fqdn))
        assert inv.cold
        total += inv.e2e_time
        worker.pool.evict_for(1e9)
        env.run(until=env.now + 10.0)
    worker.stop()
    return total / repeats


def test_snapshot_restore_ablation(benchmark, artifact):
    def run():
        rows = []
        for key in FUNCTIONBENCH:
            off = _repeat_cold_latency(key, snapshots=False)
            on = _repeat_cold_latency(key, snapshots=True)
            rows.append(
                {
                    "function": key,
                    "cold_e2e_off_s": off,
                    "cold_e2e_snapshot_s": on,
                    "speedup": off / on,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_snapshots",
        format_table(rows, title="Snapshot-restore cold-start ablation"),
    )
    by_fn = {r["function"]: r for r in rows}
    # Every function's repeat cold start is faster from a snapshot.
    for row in rows:
        assert row["speedup"] > 1.0
    # The benefit scales with the *share* of time spent initializing:
    # matrix multiply (2.2 s init of a 2.5 s run) gains far more than
    # video encoding (3 s init of a 56 s run).
    assert by_fn["matrix_multiply"]["speedup"] > 2 * by_fn["video_encoding"]["speedup"]
    # Restores skip init: snapshot cold e2e approaches warm-ish scale.
    assert by_fn["ml_inference"]["cold_e2e_snapshot_s"] < 3.5  # vs 7+ s full
