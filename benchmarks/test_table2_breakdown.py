"""Table 2 benchmark: per-component latency of a warm invocation."""

import pytest

from repro.experiments import PAPER_TABLE2_MS, format_table, run_table2


def test_table2_latency_breakdown(benchmark, artifact):
    rows = benchmark.pedantic(
        lambda: run_table2(warm_invocations=500), rounds=1, iterations=1
    )
    artifact(
        "table2_breakdown",
        format_table(rows, title="Table 2 — worker component latency (ms)"),
    )
    by_fn = {r["function"]: r["time"] for r in rows}
    # Agent communication dominates, as in the paper.
    canonical = {k: v for k, v in by_fn.items() if k in PAPER_TABLE2_MS}
    assert max(canonical, key=canonical.get) == "call_container"
    # Every modeled component lands near the paper's measured mean.
    for name, paper_ms in PAPER_TABLE2_MS.items():
        assert by_fn[name] == pytest.approx(paper_ms, rel=0.35)
    # Total warm control-plane time ~2-3 ms (paper: "about 3 ms").
    assert 1.0 < sum(canonical.values()) < 5.0
