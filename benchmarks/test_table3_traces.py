"""Table 3 benchmark: trace-sample statistics (and paper comparison)."""

from repro.experiments import PAPER_TABLE3, format_table
from repro.trace.analysis import popularity_skew


def test_table3_trace_statistics(benchmark, scale, artifact, shared_traces):
    def compute():
        return [shared_traces[n].stats_row()
                for n in ("representative", "rare", "random")]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    for row, paper in zip(rows, PAPER_TABLE3):
        row["paper_invocations"] = paper["num_invocations"]
        row["paper_reqs_per_sec"] = paper["reqs_per_sec"]
    artifact("table3_traces", format_table(rows, title="Table 3 — trace samples"))

    by_name = {r["trace"]: r for r in rows}
    # Ordering property from the paper: the rare sample is by far the
    # lightest load; its average IAT is the largest.
    assert by_name["rare"]["reqs_per_sec"] < by_name["representative"]["reqs_per_sec"]
    assert by_name["rare"]["avg_iat_ms"] > by_name["representative"]["avg_iat_ms"]
    for row in rows:
        assert row["num_invocations"] > 1000

    # Azure-like skew: the representative sample's top functions dominate.
    rep = shared_traces["representative"]
    assert popularity_skew(rep, top_fraction=0.10) > 0.5
