"""Table 4 benchmark: FunctionBench application characteristics."""

from repro.experiments import format_table, table4_rows
from repro.workloads import FUNCTIONBENCH

# The paper's Table 4, verbatim (memory MB, run s, init s).
PAPER_TABLE4 = {
    "ml_inference": (512.0, 6.5, 4.5),
    "video_encoding": (500.0, 56.0, 3.0),
    "matrix_multiply": (256.0, 2.5, 2.2),
    "disk_bench": (256.0, 2.2, 1.8),
    "image_manip": (300.0, 9.0, 6.0),
    "web_serving": (64.0, 2.4, 2.0),
    "float_op": (128.0, 2.0, 1.7),
}


def test_table4_workload_catalog(benchmark, artifact):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    artifact(
        "table4_workloads",
        format_table(rows, title="Table 4 — FunctionBench characteristics"),
    )
    for key, (mem, run, init) in PAPER_TABLE4.items():
        bench = FUNCTIONBENCH[key]
        assert bench.memory_mb == mem
        assert bench.run_time == run
        assert bench.init_time == init
