"""Replay an Azure-like trace through a CH-BL-balanced worker cluster.

Generates a synthetic day of serverless invocations (heavy-tailed
popularity, diurnal wave), samples a representative server-scale
workload, maps its functions onto FunctionBench profiles, and replays it
through a 4-worker cluster fronted by consistent hashing with bounded
loads — the full Ilúvatar stack end to end.

Run:  python examples/azure_trace_replay.py
"""

from repro import Environment, FunctionRegistration, WorkerConfig
from repro.experiments import print_table
from repro.loadbalancer import Cluster
from repro.loadgen import plan_from_trace, replay_plan
from repro.trace import (
    AzureTraceConfig,
    generate_dataset,
    popularity_skew,
    sample_representative,
    scale_to_load,
)
from repro.workloads import map_trace_to_catalog


def main() -> None:
    # 1. A synthetic Azure-like day (scaled down for a quick demo).
    dataset = generate_dataset(
        AzureTraceConfig(num_functions=800, duration_minutes=120, seed=2024)
    )
    trace = sample_representative(dataset, n=60)
    print(f"trace: {len(trace)} invocations over {trace.duration / 60:.0f} min, "
          f"{trace.num_functions} functions")
    print(f"top-10% functions produce "
          f"{popularity_skew(trace, 0.10) * 100:.0f}% of invocations")

    # 2. Re-profile with FunctionBench timings and fit the load to the
    #    cluster with Little's law (paper Section 5.1).
    trace = map_trace_to_catalog(trace)
    trace = scale_to_load(trace, target_load=6.0)  # ~6 concurrent on avg

    # 3. A 4-worker cluster behind CH-BL.
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=4,
        config=WorkerConfig(cores=8, memory_mb=6144.0, backend="null",
                            keepalive_policy="GD"),
        bound_factor=1.2,
    )
    cluster.start()
    for f in trace.functions:
        cluster.register_sync(
            FunctionRegistration(
                name=f.name, memory_mb=f.memory_mb,
                warm_time=f.warm_time, cold_time=f.cold_time,
            )
        )

    # 4. Replay and report.
    plan = plan_from_trace(trace)
    invocations = replay_plan(env, cluster, plan, grace=300.0)
    cluster.stop()

    done = [i for i in invocations if not i.dropped and i.completed_at]
    colds = sum(1 for i in done if i.cold)
    print(f"\ncompleted {len(done)}/{len(invocations)} invocations, "
          f"{colds} cold starts ({100 * colds / max(len(done), 1):.1f}%)")
    print(f"load balancer: {cluster.balancer.placements} placements, "
          f"{cluster.balancer.forwards} spillover forwards")

    rows = []
    for name, worker in cluster.workers.items():
        status = worker.status()
        records = worker.metrics.records
        rows.append(
            {
                "worker": name,
                "invocations": len(records),
                "cold": sum(1 for r in records if r.cold),
                "warm_containers": status["warm_containers"],
                "evictions": worker.pool.evictions,
            }
        )
    print_table(rows, title="\nPer-worker breakdown")


if __name__ == "__main__":
    main()
