"""Dynamic cache sizing with the miss-speed controller (Figure 8 demo).

Replays the representative trace with the proportional controller
adjusting the keep-alive cache size once per window; prints the
size/miss-speed timeseries and the memory saved vs a static provision.

Run:  python examples/dynamic_provisioning.py
"""

from repro.experiments import print_table
from repro.keepalive import KeepAliveSimulator, make_policy
from repro.provisioning import MissSpeedController, ProvisioningConfig
from repro.trace import AzureTraceConfig, generate_dataset, sample_representative


def main() -> None:
    dataset = generate_dataset(
        AzureTraceConfig(num_functions=1200, duration_minutes=480, seed=99)
    )
    trace = sample_representative(dataset, n=150)
    print(f"trace: {len(trace)} invocations over {trace.duration / 3600:.1f} h")

    static_mb = 10_000.0
    # Calibrate the target to what the static provision delivers.
    baseline = KeepAliveSimulator(make_policy("GD"), static_mb).run(trace)
    target = 1.6 * baseline.cold_starts / trace.duration
    print(f"static {static_mb:.0f} MB baseline: {baseline.cold_starts} cold "
          f"starts -> target miss speed {target:.4f}/s")

    controller = MissSpeedController(
        ProvisioningConfig(
            target_miss_speed=target,
            error_tolerance=0.30,     # the paper's 30% band
            initial_size_mb=static_mb,
            max_size_mb=static_mb,
            min_size_mb=512.0,
            window=300.0,
        )
    )

    def on_tick(now, sim):
        new_size = controller.update(now, sim.cold_starts)
        if new_size != sim.cache.capacity_mb:
            sim.cache.set_capacity(new_size, now)

    sim = KeepAliveSimulator(
        make_policy("GD"), static_mb, tick_interval=300.0, on_tick=on_tick
    )
    result = sim.run(trace)

    times, sizes, speeds = controller.timeseries()
    rows = [
        {"t_min": t / 60, "cache_mb": s, "miss_per_s": m,
         "resized": h.resized}
        for t, s, m, h in zip(times, sizes, speeds, controller.history)
    ]
    print_table(rows[:24], title="\nController timeseries (first 2 h)")

    print(f"\naverage dynamic size : {controller.average_size_mb:.0f} MB")
    print(f"static provision     : {static_mb:.0f} MB")
    print(f"memory saved         : "
          f"{100 * controller.savings_vs_static(static_mb):.1f}%")
    print(f"cold-start ratio     : {100 * result.cold_ratio:.2f}%")


if __name__ == "__main__":
    main()
