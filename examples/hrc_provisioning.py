"""Reuse distances and hit-ratio curves for cache provisioning.

The paper's abstract claims caching concepts — reuse distances and
hit-ratio curves — can drive server resource provisioning.  This demo
computes a trace's weighted reuse-distance distribution, prints its
hit-ratio curve, asks it for the cache size meeting a cold-start target,
and validates the recommendation against the keep-alive simulator.

Run:  python examples/hrc_provisioning.py
"""

import numpy as np

from repro.experiments import print_table
from repro.keepalive import (
    hit_ratio_curve,
    recommend_cache_size,
    reuse_distances,
    simulate,
)
from repro.trace import AzureTraceConfig, generate_dataset, sample_representative


def main() -> None:
    dataset = generate_dataset(
        AzureTraceConfig(num_functions=1200, duration_minutes=360, seed=31)
    )
    trace = sample_representative(dataset, n=120)
    print(f"trace: {len(trace)} invocations, {trace.num_functions} functions")

    # --- reuse-distance distribution ---------------------------------------
    distances = reuse_distances(trace)
    finite = distances[np.isfinite(distances)]
    print(f"\nreuse distances (MB of distinct containers between reuses):")
    for q in (50, 90, 99):
        print(f"  p{q}: {np.percentile(finite, q):,.0f} MB")
    print(f"  first-ever accesses (compulsory misses): "
          f"{np.isinf(distances).sum()} "
          f"({100 * np.isinf(distances).mean():.2f}%)")

    # --- hit-ratio curve ---------------------------------------------------
    curve = hit_ratio_curve(trace)
    rows = [
        {"cache_gb": gb, "predicted_warm_pct": 100 * curve.hit_ratio_at(gb * 1024)}
        for gb in (1, 2, 4, 8, 16, 32)
    ]
    print_table(rows, title="\nHit-ratio curve (one analytic pass)")

    # --- provisioning recommendation ----------------------------------------
    target = 0.10
    size = recommend_cache_size(trace, target_cold_ratio=target)
    print(f"\nsmallest cache for <= {target:.0%} cold starts: {size:,.0f} MB")
    result = simulate(trace, "LRU", size)
    print(f"LRU simulation at that size: {result.cold_ratio:.1%} cold "
          f"(target {target:.0%}) — the analytic curve is predictive.")


if __name__ == "__main__":
    main()
