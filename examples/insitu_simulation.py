"""In-situ simulation at scale: one worker "simulating" hundreds of cores.

The paper's null container backend turns invocations into sleeps while
every other control-plane code path runs unchanged, so a single process
can evaluate queueing policies at cluster scale.  This demo runs the same
bursty workload under all four queue disciplines on a simulated 256-core
worker and compares tail latencies.

Run:  python examples/insitu_simulation.py
"""

import numpy as np

from repro import Environment, Worker, WorkerConfig
from repro.experiments import print_table
from repro.loadgen import FunctionMix, build_plan, replay_plan
from repro.sim.distributions import Exponential, LogNormal
from repro.workloads import lookbusy_population


def run_policy(policy: str) -> dict:
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            name=f"sim-{policy}",
            cores=128,                # far beyond a test machine: in-situ
            memory_mb=262_144.0,      # simulation costs only control plane
            backend="null",
            queue_policy=policy,
            bypass_enabled=False,
            seed=17,
        ),
    )
    worker.start()

    # Sized so the offered load hovers around the worker's capacity —
    # that is where queue disciplines actually differ.
    functions = lookbusy_population(
        120,
        run_time_dist=LogNormal(mu=-0.3, sigma=1.2),  # ~0.1 s - 15 s spread
        memory_dist=LogNormal(mu=5.0, sigma=0.7),
        init_fraction=1.0,
        seed=17,
    )
    mixes = []
    rng = np.random.default_rng(17)
    for f in functions:
        worker.register_sync(f)
        mixes.append(FunctionMix(f.fqdn(), Exponential(float(rng.uniform(0.5, 3.0)))))
    plan = build_plan(mixes, duration=300.0, seed=17)

    invocations = replay_plan(env, worker, plan, grace=120.0)
    worker.stop()
    done = [i for i in invocations if not i.dropped and i.completed_at]
    e2e = np.array([i.e2e_time for i in done]) * 1000.0
    queue_ms = np.array([i.queue_time for i in done]) * 1000.0
    return {
        "policy": policy,
        "invocations": len(done),
        "cold": sum(1 for i in done if i.cold),
        "e2e_p50_ms": float(np.percentile(e2e, 50)),
        "e2e_p99_ms": float(np.percentile(e2e, 99)),
        "queue_p99_ms": float(np.percentile(queue_ms, 99)),
    }


def main() -> None:
    rows = [run_policy(p) for p in ("fcfs", "sjf", "eedf", "rare")]
    print_table(rows, title="Queue disciplines on a simulated 128-core worker")
    by = {r["policy"]: r for r in rows}
    print(
        f"\nclassic tradeoff under overload: SJF cuts the median "
        f"{by['fcfs']['e2e_p50_ms'] / by['sjf']['e2e_p50_ms']:.0f}x vs FCFS "
        f"(at a starvation-inflated tail), while EEDF balances both "
        f"(median {by['fcfs']['e2e_p50_ms'] / by['eedf']['e2e_p50_ms']:.1f}x "
        f"better than FCFS, tail comparable)."
    )


if __name__ == "__main__":
    main()
