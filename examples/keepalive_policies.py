"""Compare keep-alive policies on Azure-like traces (mini Figures 4/5).

Sweeps the six policies (TTL / LRU / FREQ / GD / LND / HIST) over cache
sizes for the representative and rare trace samples, printing the two
paper metrics: cold-start fraction and % increase in execution time.

Run:  python examples/keepalive_policies.py
"""

from repro.experiments import print_table
from repro.keepalive import POLICY_NAMES, simulate
from repro.trace import (
    AzureTraceConfig,
    generate_dataset,
    sample_rare,
    sample_representative,
)


def main() -> None:
    dataset = generate_dataset(
        AzureTraceConfig(num_functions=1200, duration_minutes=360, seed=77)
    )
    traces = {
        "representative": sample_representative(dataset, n=120),
        "rare": sample_rare(dataset, n=300),
    }

    for name, trace in traces.items():
        print(f"\n=== {name}: {len(trace)} invocations, "
              f"{trace.num_functions} functions ===")
        rows = []
        for policy in POLICY_NAMES:
            for size_gb in (2.0, 8.0, 20.0):
                r = simulate(trace, policy, size_gb * 1024.0)
                rows.append(
                    {
                        "policy": policy,
                        "cache_gb": size_gb,
                        "cold_pct": 100.0 * r.cold_ratio,
                        "exec_increase_pct": r.exec_increase_pct,
                        "evictions": r.evictions,
                    }
                )
        print_table(rows)

        best = min(
            (r for r in rows if r["cache_gb"] == 8.0),
            key=lambda r: r["exec_increase_pct"],
        )
        ttl = next(
            r for r in rows if r["policy"] == "TTL" and r["cache_gb"] == 8.0
        )
        print(
            f"\nat 8 GB, {best['policy']} cuts the execution-time increase "
            f"{ttl['exec_increase_pct'] / max(best['exec_increase_pct'], 1e-9):.1f}x "
            f"vs the 10-minute TTL"
        )


if __name__ == "__main__":
    main()
