"""Quickstart: a single Ilúvatar worker on the in-situ simulator.

Registers a function, shows the cold-start -> warm-start transition, the
prewarm API, and the Table-2-style control-plane latency breakdown.

Run:  python examples/quickstart.py
"""

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.experiments import print_table


def main() -> None:
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(
            name="quickstart-worker",
            cores=8,
            memory_mb=8192.0,
            backend="containerd",   # latency-modeled containerd backend
            keepalive_policy="GD",  # Greedy-Dual keep-alive
        ),
    )
    worker.start()

    hello = FunctionRegistration(
        name="hello",
        image="repro/hello:latest",
        memory_mb=256.0,
        warm_time=0.050,   # 50 ms of function code
        cold_time=0.450,   # +400 ms of imports/initialization when cold
    )
    # register() models the image pull; register_sync skips it.
    fqdn = env.run_process(worker.register(hello))
    print(f"registered {fqdn} (image pull took {env.now * 1000:.0f} ms)\n")

    # --- cold start -------------------------------------------------------
    inv = env.run_process(worker.invoke(fqdn))
    print(f"1st invocation: cold={inv.cold}  "
          f"e2e={inv.e2e_time * 1000:.1f} ms  "
          f"overhead={inv.overhead * 1000:.2f} ms")

    # --- warm starts ------------------------------------------------------
    for i in range(2, 5):
        inv = env.run_process(worker.invoke(fqdn))
        print(f"{i}th invocation: cold={inv.cold}  "
              f"e2e={inv.e2e_time * 1000:.1f} ms  "
              f"overhead={inv.overhead * 1000:.2f} ms")

    # --- prewarm avoids the first-invocation cold start ---------------------
    heavy = FunctionRegistration(
        name="ml-model", memory_mb=512.0, warm_time=0.8, cold_time=5.0
    )
    worker.register_sync(heavy)
    env.run_process(worker.prewarm("ml-model.1"))
    inv = env.run_process(worker.invoke("ml-model.1"))
    print(f"\nprewarmed ml-model.1: cold={inv.cold}  "
          f"e2e={inv.e2e_time * 1000:.0f} ms (would be ~5000 ms cold)\n")

    # --- component breakdown (paper Table 2) --------------------------------
    print_table(
        worker.spans.breakdown_table(scale=1000.0),
        title="Control-plane latency breakdown (ms, mean per invocation)",
    )

    print("\nWorker status:", worker.status())
    worker.stop()


if __name__ == "__main__":
    main()
