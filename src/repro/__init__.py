"""repro — a Python reproduction of "Ilúvatar: A Fast Control Plane for
Serverless Computing" (HPDC '23), including the FaasCache caching-based
keep-alive evaluation embedded in the paper's experimental section.

Public API tour
---------------

Control plane (the Ilúvatar half)::

    from repro import Environment, Worker, WorkerConfig, FunctionRegistration

    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null"))
    worker.start()
    worker.register_sync(FunctionRegistration(name="hello", warm_time=0.05,
                                              cold_time=0.5))
    inv = env.run_process(worker.invoke("hello.1"))
    print(inv.e2e_time, inv.overhead, inv.cold)

Keep-alive (the FaasCache half)::

    from repro.trace import generate_dataset, sample_representative
    from repro.keepalive import simulate

    trace = sample_representative(generate_dataset())
    result = simulate(trace, "GD", cache_size_mb=20 * 1024)
    print(result.cold_ratio, result.exec_increase_pct)
"""

from .core.config import WorkerConfig, WorkerLatencyProfile, load_config
from .core.function import FunctionRegistration, Invocation, InvocationResult
from .core.worker import Worker
from .errors import (
    ConfigurationError,
    ContainerError,
    DuplicateRegistration,
    FunctionNotRegistered,
    InsufficientResources,
    InvocationDropped,
    ReproError,
)
from .sim.core import Environment

__version__ = "1.0.0"

__all__ = [
    "WorkerConfig",
    "WorkerLatencyProfile",
    "load_config",
    "FunctionRegistration",
    "Invocation",
    "InvocationResult",
    "Worker",
    "Environment",
    "ConfigurationError",
    "ContainerError",
    "DuplicateRegistration",
    "FunctionNotRegistered",
    "InsufficientResources",
    "InvocationDropped",
    "ReproError",
    "__version__",
]
