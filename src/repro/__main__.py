"""``python -m repro`` — the experiment CLI."""

import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:  # e.g. `python -m repro table4 | head`
    sys.stderr.close()
    code = 0
sys.exit(code)
