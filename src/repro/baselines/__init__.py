"""Baseline control planes: the OpenWhisk model (and FaasCache variant)."""

from .components import ControllerModel, CouchDBModel, GCModel, KafkaModel, NginxModel
from .openwhisk import OpenWhiskConfig, OpenWhiskWorker

__all__ = [
    "ControllerModel",
    "CouchDBModel",
    "GCModel",
    "KafkaModel",
    "NginxModel",
    "OpenWhiskConfig",
    "OpenWhiskWorker",
]
