"""Latency models of the OpenWhisk pipeline components (Section 2.2).

OpenWhisk's invocation path is NGINX → controller → shared Kafka queue →
invoker → container, with results logged to CouchDB; Kafka and CouchDB sit
on the critical path and add 100s of ms, and the Scala/JVM implementation
suffers garbage-collection pauses that produce large, unpredictable
latency spikes.  Each component here is a small stochastic latency model
whose parameters come from the paper's qualitative descriptions and the
OpenWhisk literature it cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..sim.core import Environment

__all__ = ["NginxModel", "ControllerModel", "KafkaModel", "CouchDBModel", "GCModel"]


@dataclass
class NginxModel:
    """Reverse proxy: sub-millisecond, light tail."""

    base: float = 0.0003
    tail_mean: float = 0.0002

    def latency(self, rng: np.random.Generator) -> float:
        return self.base + float(rng.exponential(self.tail_mean))


@dataclass
class ControllerModel:
    """Central controller incl. load balancing.

    The paper measures <3 ms even under heavy load; a mild load term keeps
    that bound."""

    base: float = 0.001
    per_inflight: float = 0.00002
    cap: float = 0.003

    def latency(self, rng: np.random.Generator, inflight: int) -> float:
        lat = self.base + self.per_inflight * inflight
        lat += float(rng.exponential(0.2 * self.base))
        return min(lat, self.cap)


@dataclass
class KafkaModel:
    """The shared function queue: publish + consume round trip.

    Contention on the single shared topic grows with backlog, and producer
    linger/batching quantizes latency — one source of the non-monotone
    scaling inversions the paper observes."""

    base: float = 0.004
    per_backlog: float = 0.0015
    linger: float = 0.010
    linger_probability: float = 0.3

    def latency(self, rng: np.random.Generator, backlog: int) -> float:
        lat = self.base + self.per_backlog * backlog
        # Batching: messages that miss a batch wait for the next linger.
        if rng.random() < self.linger_probability:
            lat += self.linger * (1.0 + rng.random())
        lat += float(rng.exponential(0.3 * self.base))
        return lat


@dataclass
class CouchDBModel:
    """Activation-record store: tens of ms, heavy-tailed up to ~0.5 s."""

    write_median: float = 0.020
    sigma: float = 0.9          # log-normal shape
    per_inflight: float = 0.0008
    cap: float = 0.500

    def write_latency(self, rng: np.random.Generator, inflight: int) -> float:
        import math

        mu = math.log(self.write_median)
        lat = float(rng.lognormal(mu, self.sigma))
        lat += self.per_inflight * inflight
        return min(lat, self.cap)


class GCModel:
    """JVM stop-the-world pauses.

    A background process draws pause events whose frequency and length
    grow with allocation pressure (approximated by in-flight invocations);
    while a pause is active, every component call blocks until it ends."""

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        base_interval: float = 5.0,
        pause_mean: float = 0.030,
        pause_max: float = 0.600,
        load_factor: float = 0.02,
    ):
        if base_interval <= 0 or pause_mean <= 0 or pause_max <= 0:
            raise ValueError("GC parameters must be positive")
        self.env = env
        self.rng = rng
        self.base_interval = base_interval
        self.pause_mean = pause_mean
        self.pause_max = pause_max
        self.load_factor = load_factor
        self.pause_until = 0.0
        self.pauses = 0
        self.total_pause_time = 0.0
        self._inflight_fn = lambda: 0
        self._running = False

    def bind_load(self, inflight_fn) -> None:
        self._inflight_fn = inflight_fn

    def collector(self) -> Generator:
        """Background process emitting pauses."""
        self._running = True
        while self._running:
            inflight = max(self._inflight_fn(), 0)
            # Higher load -> more frequent collections.
            interval = self.base_interval / (1.0 + self.load_factor * inflight)
            yield self.env.timeout(float(self.rng.exponential(interval)))
            pause = min(
                float(self.rng.exponential(self.pause_mean * (1.0 + 0.05 * inflight))),
                self.pause_max,
            )
            self.pause_until = self.env.now + pause
            self.pauses += 1
            self.total_pause_time += pause

    def stop(self) -> None:
        self._running = False

    def stall(self) -> Generator:
        """Block the caller until any active pause ends."""
        delay = self.pause_until - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
