"""An OpenWhisk-like control plane model (the paper's baseline).

This worker exposes the same ``register_sync`` / ``invoke`` /
``async_invoke`` surface as :class:`repro.core.worker.Worker` so load
generators and experiments are backend-agnostic, and it drives the same
:class:`repro.core.lifecycle.InvocationContext` through the stages whose
semantics it shares (``admit → enqueue → acquire → (warm | cold_create)
→ execute → complete/drop``) — but its latency components and queueing
reproduce OpenWhisk's architecture and failure modes:

* NGINX → controller → **shared Kafka queue** → invoker → container, with
  a **CouchDB write on the critical path** (those are its ``enqueue`` and
  ``complete`` stages);
* **JVM GC pauses** stalling the pipeline;
* **no invocation queue or concurrency regulation** — admission is by
  container *memory* only, so CPUs are overcommitted and execution times
  stretch under load (processor sharing); there is no ``dispatch`` stage
  because there is no dispatcher;
* a bounded activation buffer: invocations that cannot obtain memory
  within a timeout, or that arrive to a full buffer, are **dropped**;
* keep-alive by **10-minute TTL** (LRU order under pressure) by default.

Setting ``keepalive_policy="GD"`` turns this model into **FaasCache** —
the paper's system is OpenWhisk with Greedy-Dual keep-alive — which is
exactly the comparison Figures 6 and 7 make.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Generator, Optional

import numpy as np

from ..containers.backends import NullBackend
from ..core.characteristics import CharacteristicsMap
from ..core.container_pool import ContainerPool
from ..core.function import FunctionRegistration, Invocation
from ..core.lifecycle import (
    ACQUIRE,
    ADMIT,
    COLD_CREATE,
    COMPLETE,
    ENQUEUE,
    EXECUTE,
    WARM,
    DROP,
    InvocationContext,
    StageTracker,
)
from ..errors import DuplicateRegistration, FunctionNotRegistered
from ..keepalive.policies import make_policy
from ..metrics.registry import InvocationRecord, MetricsRegistry, Outcome
from ..metrics.spans import SpanRecorder
from ..sim.core import Environment, Event
from ..sim.resources import Gauge
from .components import ControllerModel, CouchDBModel, GCModel, KafkaModel, NginxModel

__all__ = ["OpenWhiskConfig", "OpenWhiskWorker"]


@dataclass(frozen=True)
class OpenWhiskConfig:
    """Knobs for the OpenWhisk/FaasCache model."""

    name: str = "openwhisk-0"
    cores: int = 48
    memory_mb: float = 32768.0
    keepalive_policy: str = "TTL"      # "GD" => FaasCache
    keepalive_ttl: float = 600.0
    container_create_mean: float = 0.450  # Docker-era OpenWhisk cold create
    # Admission/drops.
    buffer_max: int = 256               # max in-flight + queued activations
    memory_wait_timeout: float = 2.0    # OW sheds quickly when memory-starved
    # CPU overcommitment: execution stretches when running > cores.
    enable_cpu_stretch: bool = True
    # Pipeline-stage tracing (nginx/controller/kafka/couchdb spans).  Off
    # by default: the baseline's published numbers need no breakdown, and
    # a disabled recorder is a true no-op on the hot path.
    tracing_enabled: bool = False
    seed: int = 7

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.buffer_max < 1:
            raise ValueError("buffer_max must be >= 1")


class OpenWhiskWorker:
    """The modeled OpenWhisk (or FaasCache) single-server deployment."""

    def __init__(self, env: Environment, config: Optional[OpenWhiskConfig] = None):
        self.env = env
        self.config = config or OpenWhiskConfig()
        cfg = self.config
        self.name = cfg.name
        self.rng = np.random.default_rng(cfg.seed)

        # Pipeline components.
        self.nginx = NginxModel()
        self.controller = ControllerModel()
        self.kafka = KafkaModel()
        self.couchdb = CouchDBModel()
        self.gc = GCModel(env, self.rng)
        self.gc.bind_load(lambda: self.inflight)

        # Invoker state: containers via the null backend (execution is
        # simulated), keep-alive per configured policy.
        self.backend = NullBackend(env, create_latency=0.0)
        self.memory = Gauge(env, capacity=cfg.memory_mb)
        policy_kwargs = {"ttl": cfg.keepalive_ttl} if cfg.keepalive_policy.upper() == "TTL" else {}
        self.keepalive_policy = make_policy(cfg.keepalive_policy, **policy_kwargs)
        self.pool = ContainerPool(
            env,
            self.backend,
            self.keepalive_policy,
            self.memory,
            free_buffer_mb=0.0,          # OpenWhisk evicts on demand only
            eviction_interval=10.0,       # TTL reaper cadence
        )

        self.characteristics = CharacteristicsMap()
        self.metrics = MetricsRegistry(clock=lambda: env.now)
        self.spans = SpanRecorder(
            clock=partial(getattr, env, "now"), enabled=cfg.tracing_enabled
        )
        # The shared stage contract: same context type, hooks, and stage
        # names as the Ilúvatar worker's pipeline, OpenWhisk semantics.
        self.lifecycle = StageTracker(env)
        self.registrations: dict[str, FunctionRegistration] = {}
        self.inflight = 0          # activations inside the pipeline
        self.executing = 0         # activations actually on-CPU
        self.kafka_backlog = 0
        self.dropped = 0
        self._started = False

    # ---------------------------------------------------------------- API
    def start(self) -> None:
        if self._started:
            raise RuntimeError("worker already started")
        self._started = True
        self.env.process(self.gc.collector(), name=f"{self.name}-gc")
        self.env.process(self.pool.evictor(), name=f"{self.name}-ttl-reaper")

    def stop(self) -> None:
        self.gc.stop()
        self.pool.stop()

    def register_sync(self, registration: FunctionRegistration) -> str:
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        self.registrations[fqdn] = registration
        return fqdn

    def invoke(self, fqdn: str, args=None) -> Generator:
        done = self.async_invoke(fqdn, args)
        inv = yield done
        return inv

    def async_invoke(self, fqdn: str, args=None) -> Event:
        registration = self.registrations.get(fqdn)
        if registration is None:
            raise FunctionNotRegistered(fqdn)
        done = self.env.event()
        inv = Invocation(function=registration, arrival=self.env.now, args=args)
        self.env.process(self._pipeline(inv, done), name=f"ow-{inv.id}")
        return done

    # ------------------------------------------------------------ pipeline
    def _pipeline(self, inv: Invocation, done: Event) -> Generator:
        """Drive the shared stage sequence with OpenWhisk's components."""
        lc = self.lifecycle
        ctx = lc.open(inv, done)
        self.characteristics.record_arrival(inv.function.fqdn(), self.env.now)

        if not self._admit(ctx):
            self._drop(ctx, "activation buffer full")
            return

        self.inflight += 1
        try:
            yield from self._frontend(ctx)
            ok = yield from self._acquire(ctx)
            if not ok:
                return
            yield from self._execute(ctx)
            yield from self._complete(ctx)
        finally:
            self.inflight -= 1

    def _admit(self, ctx: InvocationContext) -> bool:
        """Admit stage: the bounded activation buffer is the only gate."""
        lc = self.lifecycle
        lc.stage_enter(ctx, ADMIT)
        admitted = self.inflight < self.config.buffer_max
        lc.stage_exit(ctx, ADMIT)
        return admitted

    def _frontend(self, ctx: InvocationContext) -> Generator:
        """Enqueue stage: NGINX → controller → the shared Kafka queue.

        OpenWhisk's "queue" is this front-end pipeline; ``enqueued_at`` is
        the moment the activation reaches the invoker.
        """
        spans = self.spans
        lc = self.lifecycle
        lc.stage_enter(ctx, ENQUEUE)
        handle = spans.begin("nginx")
        yield self.env.timeout(self.nginx.latency(self.rng))
        spans.end(handle)
        yield from self.gc.stall()
        handle = spans.begin("controller")
        yield self.env.timeout(self.controller.latency(self.rng, self.inflight))
        spans.end(handle)

        # Shared Kafka queue (controller -> invoker).
        self.kafka_backlog += 1
        handle = spans.begin("kafka")
        try:
            yield self.env.timeout(
                self.kafka.latency(self.rng, self.kafka_backlog)
            )
        finally:
            spans.end(handle)
            self.kafka_backlog -= 1
        yield from self.gc.stall()
        ctx.inv.enqueued_at = self.env.now
        lc.stage_exit(ctx, ENQUEUE)

    def _acquire(self, ctx: InvocationContext) -> Generator:
        """Acquire + warm/cold_create stages: admission by memory only
        (CPU is overcommitted).  False when the invocation was shed."""
        cfg = self.config
        lc = self.lifecycle
        inv = ctx.inv
        lc.stage_enter(ctx, ACQUIRE)
        ctx.entry = self.pool.try_acquire(inv.function.fqdn())
        lc.stage_exit(ctx, ACQUIRE)
        if ctx.entry is not None:
            # Warm reuse costs OpenWhisk nothing beyond the front end.
            lc.stage_enter(ctx, WARM)
            inv.cold = False
            lc.stage_exit(ctx, WARM)
        else:
            inv.cold = True
            lc.stage_enter(ctx, COLD_CREATE)
            took = yield from self._take_memory(inv.function.memory_mb)
            if not took:
                lc.stage_exit(ctx, COLD_CREATE)
                self._drop(ctx, "insufficient memory")
                return False
            # Docker container create (no namespace pool, no reuse).
            handle = self.spans.begin("container_create", tag=inv.function.fqdn())
            create = cfg.container_create_mean
            yield self.env.timeout(
                create + float(self.rng.exponential(0.15 * create))
            )
            container = yield self.env.process(
                self.backend.create(inv.function)
            )
            self.spans.end(handle)
            ctx.entry = self.pool.add_in_use(
                container, init_cost=inv.function.init_time
            )
            lc.stage_exit(ctx, COLD_CREATE)
        inv.dispatched_at = self.env.now
        return True

    def _execute(self, ctx: InvocationContext) -> Generator:
        """Execute stage, with processor-sharing stretch under overcommit
        (OpenWhisk has no concurrency regulation: when more activations
        execute than there are cores, everyone slows)."""
        cfg = self.config
        lc = self.lifecycle
        inv = ctx.inv
        lc.stage_enter(ctx, EXECUTE)
        base_exec = inv.function.cold_time if inv.cold else inv.function.warm_time
        ctx.exec_time = base_exec
        self.executing += 1
        try:
            stretch = 1.0
            if cfg.enable_cpu_stretch:
                stretch = max(1.0, self.executing / cfg.cores)
            exec_time = base_exec * stretch
            inv.exec_started_at = self.env.now
            yield self.env.process(
                self.backend.invoke(ctx.entry.container, exec_time)
            )
        finally:
            self.executing -= 1
        inv.exec_finished_at = inv.exec_started_at + base_exec
        # (overhead accounting treats the stretch beyond the base
        # execution as control-plane-induced slowdown, which is how
        # the paper's "overhead" subtraction observes it too)
        lc.stage_exit(ctx, EXECUTE)

    def _complete(self, ctx: InvocationContext) -> Generator:
        """Complete stage: container back to the pool, then the CouchDB
        result write on the critical path."""
        lc = self.lifecycle
        inv = ctx.inv
        fqdn = inv.function.fqdn()
        lc.stage_enter(ctx, COMPLETE)
        self.pool.return_entry(ctx.entry)
        ctx.entry = None

        yield from self.gc.stall()
        handle = self.spans.begin("couchdb")
        yield self.env.timeout(
            self.couchdb.write_latency(self.rng, self.inflight)
        )
        self.spans.end(handle)

        inv.completed_at = self.env.now
        self.characteristics.record_execution(fqdn, ctx.exec_time, inv.cold)
        outcome = Outcome.COLD if inv.cold else Outcome.WARM
        self.metrics.record_invocation(
            InvocationRecord(
                function=fqdn,
                arrival=inv.arrival,
                outcome=outcome,
                exec_time=inv.exec_time,
                e2e_time=inv.e2e_time,
                queue_time=inv.queue_time,
                overhead=inv.overhead,
                cold=inv.cold,
                worker=self.name,
            )
        )
        lc.stage_exit(ctx, COMPLETE)
        lc.close(ctx, outcome)
        ctx.done.succeed(inv)

    def _take_memory(self, memory_mb: float) -> Generator:
        if self.memory.try_take(memory_mb):
            return True
        self.pool.evict_for(memory_mb - max(self.memory.level, 0.0))
        take = self.memory.take(memory_mb)
        timeout = self.env.timeout(self.config.memory_wait_timeout)
        result = yield self.env.any_of([take, timeout])
        if take in result:
            return True
        take.callbacks.append(lambda _e: self.memory.give(memory_mb))
        return False

    def _drop(self, ctx: InvocationContext, reason: str) -> None:
        """Drop stage: buffer overflow or memory-admission failure."""
        lc = self.lifecycle
        inv = ctx.inv
        lc.stage_enter(ctx, DROP)
        inv.dropped = True
        inv.drop_reason = reason
        inv.completed_at = self.env.now
        self.dropped += 1
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.DROPPED,
                worker=self.name,
            )
        )
        lc.stage_exit(ctx, DROP)
        lc.close(ctx, Outcome.DROPPED)
        ctx.done.succeed(inv)

    # -------------------------------------------------------------- status
    def status(self) -> dict:
        return {
            "name": self.name,
            "inflight": self.inflight,
            "executing": self.executing,
            "kafka_backlog": self.kafka_backlog,
            "free_memory_mb": self.memory.level,
            "warm_containers": self.pool.available_count(),
            "dropped": self.dropped,
            "gc_pauses": self.gc.pauses,
        }
