"""An OpenWhisk-like control plane model (the paper's baseline).

This worker exposes the same ``register_sync`` / ``invoke`` /
``async_invoke`` surface as :class:`repro.core.worker.Worker` so load
generators and experiments are backend-agnostic, but its invocation path
reproduces OpenWhisk's architecture and failure modes:

* NGINX → controller → **shared Kafka queue** → invoker → container, with
  a **CouchDB write on the critical path**;
* **JVM GC pauses** stalling the pipeline;
* **no invocation queue or concurrency regulation** — admission is by
  container *memory* only, so CPUs are overcommitted and execution times
  stretch under load (processor sharing);
* a bounded activation buffer: invocations that cannot obtain memory
  within a timeout, or that arrive to a full buffer, are **dropped**;
* keep-alive by **10-minute TTL** (LRU order under pressure) by default.

Setting ``keepalive_policy="GD"`` turns this model into **FaasCache** —
the paper's system is OpenWhisk with Greedy-Dual keep-alive — which is
exactly the comparison Figures 6 and 7 make.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Generator, Optional

import numpy as np

from ..containers.backends import NullBackend
from ..core.characteristics import CharacteristicsMap
from ..core.container_pool import ContainerPool
from ..core.function import FunctionRegistration, Invocation
from ..errors import DuplicateRegistration, FunctionNotRegistered
from ..keepalive.policies import make_policy
from ..metrics.registry import InvocationRecord, MetricsRegistry, Outcome
from ..metrics.spans import SpanRecorder
from ..sim.core import Environment, Event
from ..sim.resources import Gauge
from .components import ControllerModel, CouchDBModel, GCModel, KafkaModel, NginxModel

__all__ = ["OpenWhiskConfig", "OpenWhiskWorker"]


@dataclass(frozen=True)
class OpenWhiskConfig:
    """Knobs for the OpenWhisk/FaasCache model."""

    name: str = "openwhisk-0"
    cores: int = 48
    memory_mb: float = 32768.0
    keepalive_policy: str = "TTL"      # "GD" => FaasCache
    keepalive_ttl: float = 600.0
    container_create_mean: float = 0.450  # Docker-era OpenWhisk cold create
    # Admission/drops.
    buffer_max: int = 256               # max in-flight + queued activations
    memory_wait_timeout: float = 2.0    # OW sheds quickly when memory-starved
    # CPU overcommitment: execution stretches when running > cores.
    enable_cpu_stretch: bool = True
    # Pipeline-stage tracing (nginx/controller/kafka/couchdb spans).  Off
    # by default: the baseline's published numbers need no breakdown, and
    # a disabled recorder is a true no-op on the hot path.
    tracing_enabled: bool = False
    seed: int = 7

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.buffer_max < 1:
            raise ValueError("buffer_max must be >= 1")


class OpenWhiskWorker:
    """The modeled OpenWhisk (or FaasCache) single-server deployment."""

    def __init__(self, env: Environment, config: Optional[OpenWhiskConfig] = None):
        self.env = env
        self.config = config or OpenWhiskConfig()
        cfg = self.config
        self.name = cfg.name
        self.rng = np.random.default_rng(cfg.seed)

        # Pipeline components.
        self.nginx = NginxModel()
        self.controller = ControllerModel()
        self.kafka = KafkaModel()
        self.couchdb = CouchDBModel()
        self.gc = GCModel(env, self.rng)
        self.gc.bind_load(lambda: self.inflight)

        # Invoker state: containers via the null backend (execution is
        # simulated), keep-alive per configured policy.
        self.backend = NullBackend(env, create_latency=0.0)
        self.memory = Gauge(env, capacity=cfg.memory_mb)
        policy_kwargs = {"ttl": cfg.keepalive_ttl} if cfg.keepalive_policy.upper() == "TTL" else {}
        self.keepalive_policy = make_policy(cfg.keepalive_policy, **policy_kwargs)
        self.pool = ContainerPool(
            env,
            self.backend,
            self.keepalive_policy,
            self.memory,
            free_buffer_mb=0.0,          # OpenWhisk evicts on demand only
            eviction_interval=10.0,       # TTL reaper cadence
        )

        self.characteristics = CharacteristicsMap()
        self.metrics = MetricsRegistry(clock=lambda: env.now)
        self.spans = SpanRecorder(
            clock=partial(getattr, env, "now"), enabled=cfg.tracing_enabled
        )
        self.registrations: dict[str, FunctionRegistration] = {}
        self.inflight = 0          # activations inside the pipeline
        self.executing = 0         # activations actually on-CPU
        self.kafka_backlog = 0
        self.dropped = 0
        self._started = False

    # ---------------------------------------------------------------- API
    def start(self) -> None:
        if self._started:
            raise RuntimeError("worker already started")
        self._started = True
        self.env.process(self.gc.collector(), name=f"{self.name}-gc")
        self.env.process(self.pool.evictor(), name=f"{self.name}-ttl-reaper")

    def stop(self) -> None:
        self.gc.stop()
        self.pool.stop()

    def register_sync(self, registration: FunctionRegistration) -> str:
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        self.registrations[fqdn] = registration
        return fqdn

    def invoke(self, fqdn: str, args=None) -> Generator:
        done = self.async_invoke(fqdn, args)
        inv = yield done
        return inv

    def async_invoke(self, fqdn: str, args=None) -> Event:
        registration = self.registrations.get(fqdn)
        if registration is None:
            raise FunctionNotRegistered(fqdn)
        done = self.env.event()
        inv = Invocation(function=registration, arrival=self.env.now, args=args)
        self.env.process(self._pipeline(inv, done), name=f"ow-{inv.id}")
        return done

    # ------------------------------------------------------------ pipeline
    def _pipeline(self, inv: Invocation, done: Event) -> Generator:
        cfg = self.config
        fqdn = inv.function.fqdn()
        self.characteristics.record_arrival(fqdn, self.env.now)

        if self.inflight >= cfg.buffer_max:
            self._drop(inv, done, "activation buffer full")
            return

        spans = self.spans
        self.inflight += 1
        try:
            # Front end.
            handle = spans.begin("nginx")
            yield self.env.timeout(self.nginx.latency(self.rng))
            spans.end(handle)
            yield from self.gc.stall()
            handle = spans.begin("controller")
            yield self.env.timeout(self.controller.latency(self.rng, self.inflight))
            spans.end(handle)

            # Shared Kafka queue (controller -> invoker).
            self.kafka_backlog += 1
            handle = spans.begin("kafka")
            try:
                yield self.env.timeout(
                    self.kafka.latency(self.rng, self.kafka_backlog)
                )
            finally:
                spans.end(handle)
                self.kafka_backlog -= 1
            yield from self.gc.stall()

            # Invoker: admission by memory only (CPU is overcommitted).
            inv.enqueued_at = self.env.now
            entry = self.pool.try_acquire(fqdn)
            if entry is not None:
                inv.cold = False
            else:
                inv.cold = True
                took = yield from self._take_memory(inv.function.memory_mb)
                if not took:
                    self._drop(inv, done, "insufficient memory")
                    return
                # Docker container create (no namespace pool, no reuse).
                handle = spans.begin("container_create", tag=fqdn)
                create = cfg.container_create_mean
                yield self.env.timeout(
                    create + float(self.rng.exponential(0.15 * create))
                )
                container = yield self.env.process(
                    self.backend.create(inv.function)
                )
                spans.end(handle)
                entry = self.pool.add_in_use(
                    container, init_cost=inv.function.init_time
                )
            inv.dispatched_at = self.env.now

            # Execute, with processor-sharing stretch under overcommit
            # (OpenWhisk has no concurrency regulation: when more
            # activations execute than there are cores, everyone slows).
            base_exec = inv.function.cold_time if inv.cold else inv.function.warm_time
            self.executing += 1
            try:
                stretch = 1.0
                if cfg.enable_cpu_stretch:
                    stretch = max(1.0, self.executing / cfg.cores)
                exec_time = base_exec * stretch
                inv.exec_started_at = self.env.now
                yield self.env.process(
                    self.backend.invoke(entry.container, exec_time)
                )
            finally:
                self.executing -= 1
            inv.exec_finished_at = inv.exec_started_at + base_exec
            # (overhead accounting treats the stretch beyond the base
            # execution as control-plane-induced slowdown, which is how
            # the paper's "overhead" subtraction observes it too)

            self.pool.return_entry(entry)

            # Result logging: CouchDB write on the critical path.
            yield from self.gc.stall()
            handle = spans.begin("couchdb")
            yield self.env.timeout(
                self.couchdb.write_latency(self.rng, self.inflight)
            )
            spans.end(handle)

            inv.completed_at = self.env.now
            self.characteristics.record_execution(fqdn, base_exec, inv.cold)
            self.metrics.record_invocation(
                InvocationRecord(
                    function=fqdn,
                    arrival=inv.arrival,
                    outcome=Outcome.COLD if inv.cold else Outcome.WARM,
                    exec_time=inv.exec_time,
                    e2e_time=inv.e2e_time,
                    queue_time=inv.queue_time,
                    overhead=inv.overhead,
                    cold=inv.cold,
                    worker=self.name,
                )
            )
            done.succeed(inv)
        finally:
            self.inflight -= 1

    def _take_memory(self, memory_mb: float) -> Generator:
        if self.memory.try_take(memory_mb):
            return True
        self.pool.evict_for(memory_mb - max(self.memory.level, 0.0))
        take = self.memory.take(memory_mb)
        timeout = self.env.timeout(self.config.memory_wait_timeout)
        result = yield self.env.any_of([take, timeout])
        if take in result:
            return True
        take.callbacks.append(lambda _e: self.memory.give(memory_mb))
        return False

    def _drop(self, inv: Invocation, done: Event, reason: str) -> None:
        inv.dropped = True
        inv.drop_reason = reason
        inv.completed_at = self.env.now
        self.dropped += 1
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.DROPPED,
                worker=self.name,
            )
        )
        done.succeed(inv)

    # -------------------------------------------------------------- status
    def status(self) -> dict:
        return {
            "name": self.name,
            "inflight": self.inflight,
            "executing": self.executing,
            "kafka_backlog": self.kafka_backlog,
            "free_memory_mb": self.memory.level,
            "warm_containers": self.pool.available_count(),
            "dropped": self.dropped,
            "gc_pauses": self.gc.pauses,
        }
