"""Content-addressed artifact cache for expensive experiment inputs."""

from .store import (
    CACHE_CODE_VERSION,
    CACHE_ENV_VAR,
    ArtifactCache,
    CacheLike,
    cache_key,
    resolve_cache,
)

__all__ = [
    "ArtifactCache",
    "CacheLike",
    "cache_key",
    "resolve_cache",
    "CACHE_ENV_VAR",
    "CACHE_CODE_VERSION",
]
