"""Content-addressed on-disk artifact cache.

Experiment inputs — generated Azure-like datasets, trace samples,
minute-bucket expansions — are pure functions of their generator
parameters and seeds, yet every sweep cell historically regenerated them
from scratch.  This cache keys each artifact by a SHA-256 over its
parameters, seeds, and the generator code version, and stores the pickled
result on disk; a warm cache turns trace generation into a single read.

Correctness rules:

* Keys include a per-artifact-kind code version (bumped whenever the
  generating logic changes) and the numpy version (RNG streams are only
  guaranteed stable within a numpy version), so stale artifacts can never
  be returned for new code.
* Values are pickled verbatim — numpy arrays round-trip bit-exactly, so
  results are bit-identical with the cache on or off.
* Writes are atomic (temp file + ``os.replace``); concurrent writers of
  the same key simply race to an identical artifact.
* Unreadable/corrupt entries count as misses and are regenerated.

The ambient default cache directory comes from the ``REPRO_CACHE``
environment variable (also set by the CLI's ``--cache-dir``); with the
variable unset and no explicit cache, caching is off.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Union

import numpy as np

__all__ = [
    "ArtifactCache",
    "CacheLike",
    "cache_key",
    "resolve_cache",
    "CACHE_ENV_VAR",
    "CACHE_CODE_VERSION",
]

CACHE_ENV_VAR = "REPRO_CACHE"

# Global cache-format version: bump to invalidate every cached artifact
# (e.g. if the pickle layout of Trace/AzureDataset changes).
CACHE_CODE_VERSION = 1


def cache_key(kind: str, params: Any, code_version: int = 0) -> str:
    """Content key for an artifact: SHA-256 over a canonical description.

    ``params`` must have a deterministic ``repr`` (primitives, tuples,
    frozen dataclasses of primitives...).  Dicts are canonicalized by
    sorted key.  The numpy version is folded in because generated
    artifacts embed numpy RNG output.
    """
    if isinstance(params, dict):
        params = tuple(sorted(params.items()))
    canonical = repr(
        (kind, int(code_version), CACHE_CODE_VERSION, np.__version__, params)
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of pickled artifacts addressed by content key."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        # Two-level fan-out keeps directories small at scale.
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, artifact)`` on a hit, ``(False, None)`` otherwise."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Missing, unreadable, or stale-format entries are misses.
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Atomically store ``value`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_create(self, key: str, factory: Callable[[], Any]) -> Any:
        """Return the cached artifact, creating and storing it on a miss."""
        hit, value = self.get(key)
        if hit:
            return value
        value = factory()
        self.put(key, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


CacheLike = Union[None, bool, str, Path, ArtifactCache]


def resolve_cache(cache: CacheLike = None) -> Optional[ArtifactCache]:
    """Normalize a cache argument to an :class:`ArtifactCache` or ``None``.

    * an ``ArtifactCache`` → itself;
    * a path (``str``/``Path``) → a cache rooted there;
    * ``None`` → the ambient default: ``$REPRO_CACHE`` if set, else off;
    * ``False`` → caching explicitly off, ignoring the environment.
    """
    if cache is False:
        return None
    if isinstance(cache, ArtifactCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ArtifactCache(cache)
    if cache is None:
        ambient = os.environ.get(CACHE_ENV_VAR)
        if ambient:
            return ArtifactCache(ambient)
        return None
    raise TypeError(f"unsupported cache argument: {cache!r}")
