"""Command-line entry point: run any paper experiment from a shell.

Examples::

    python -m repro fig1 --scale small
    python -m repro fig4 --scale medium --jobs 4
    python -m repro table2
    python -m repro fig8
    python -m repro litmus --workloads skew_frequency
    python -m repro ablation --which queue
    python -m repro export-azure --out /tmp/azure-day --functions 1000
    python -m repro --scale small --telemetry /tmp/run cluster-study --trace
    python -m repro --scale small --telemetry /tmp/run cluster-study --health
    python -m repro inspect /tmp/run
    python -m repro health /tmp/run
    python -m repro watch /tmp/run --once
    python -m repro trace /tmp/run --top 5 --perfetto /tmp/run/trace.json

Every command prints the paper-style table to stdout; ``--scale`` selects
the experiment sizing (small/medium/full) and ``--jobs`` fans sweep
commands out over worker processes (``REPRO_JOBS`` is the ambient
default; results are identical at any job count).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .cache import CACHE_ENV_VAR
from .telemetry import TELEMETRY_ENV_VAR

from .experiments import (
    FULL,
    MEDIUM,
    SMALL,
    fig1_rows,
    fig4_rows,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    format_table,
    make_traces,
    run_bypass_ablation,
    run_coldpath_ablation,
    run_fig8,
    run_keepalive_sweep,
    run_queue_policy_ablation,
    run_regulator_ablation,
    run_table2,
    table3_rows,
    table4_rows,
)
from .parallel import resolve_jobs

__all__ = ["main", "build_parser"]

_SCALES = {"small": SMALL, "medium": MEDIUM, "full": FULL}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Ilúvatar/FaasCache paper artifacts.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="experiment sizing (default: small; benches use medium)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep commands (default: $REPRO_JOBS "
             "or 1 = serial; 0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed artifact cache for generated traces "
             "(default: $REPRO_CACHE if set, else no caching); results "
             "are bit-identical with or without the cache",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="export a telemetry run directory (timeseries, spans, records, "
             "Prometheus snapshot, summary) for commands that support it "
             "(default: $REPRO_TELEMETRY if set, else off); the simulated "
             "results are bit-identical with telemetry on or off",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="control-plane overhead vs concurrency")
    table2 = sub.add_parser("table2", help="worker latency breakdown")
    table2.add_argument("--invocations", type=int, default=200)
    sub.add_parser("table3", help="trace-sample statistics")
    sub.add_parser("table4", help="FunctionBench catalog")
    sub.add_parser("fig4", help="keep-alive sweep: execution-time increase")
    sub.add_parser("fig5", help="keep-alive sweep: cold-start fraction")
    litmus = sub.add_parser("litmus", help="Fig 6: FaasCache vs OpenWhisk")
    litmus.add_argument(
        "--workloads", nargs="+",
        default=["skew_frequency", "cyclic", "two_size"],
    )
    sub.add_parser("fig7", help="per-function breakdown")
    sub.add_parser("fig8", help="dynamic cache sizing")
    ablation = sub.add_parser("ablation", help="design-choice ablations")
    ablation.add_argument(
        "--which",
        choices=["queue", "bypass", "regulator", "coldpath", "lb", "dispatch",
                 "all"],
        default="all",
    )
    hrc = sub.add_parser(
        "hrc", help="hit-ratio-curve provisioning recommendation"
    )
    hrc.add_argument("--target-cold-ratio", type=float, default=0.10)
    cluster = sub.add_parser("cluster-study", help="full-stack cluster trace study")
    cluster.add_argument(
        "--compare-lb",
        action="store_true",
        help="sweep the study across LB policies (one process per policy)",
    )
    cluster.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the cluster's workers across N processes with a "
             "time-synchronized LB seam (default: $REPRO_SHARDS or 1 = "
             "single process; 0 = all cores); results are bit-identical "
             "at any shard count",
    )
    cluster.add_argument(
        "--trace",
        action="store_true",
        help="collect causal trace trees into the telemetry run directory "
             "(traces.jsonl; sharded runs also record the coordinator "
             "flight log in flight.json); requires --telemetry; render "
             "them afterwards with `repro trace RUN_DIR`",
    )
    cluster.add_argument(
        "--health",
        action="store_true",
        help="grade the run through the streaming health/SLO engine "
             "(health.json, slo.jsonl, health.prom, live.jsonl in the run "
             "directory); requires --telemetry; read back with "
             "`repro health RUN_DIR` or watch live with `repro watch`",
    )
    inspect = sub.add_parser(
        "inspect", help="summarize a telemetry run directory"
    )
    inspect.add_argument("run_dir", metavar="RUN_DIR")
    health_cmd = sub.add_parser(
        "health",
        help="SLO/health report over a run directory (one produced with "
             "cluster-study --health)",
    )
    health_cmd.add_argument("run_dir", metavar="RUN_DIR")
    watch_cmd = sub.add_parser(
        "watch",
        help="live dashboard over a run directory's live.jsonl heartbeats "
             "(refreshes until the run reports done)",
    )
    watch_cmd.add_argument("run_dir", metavar="RUN_DIR")
    watch_cmd.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no refresh loop)",
    )
    watch_cmd.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval in wall-clock seconds (default: 1.0)",
    )
    trace_cmd = sub.add_parser(
        "trace",
        help="critical-path report over a traced run directory "
             "(one produced with cluster-study --trace)",
    )
    trace_cmd.add_argument("run_dir", metavar="RUN_DIR")
    trace_cmd.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="render the N slowest invocations' critical paths (default: 5)",
    )
    trace_cmd.add_argument(
        "--percentile", type=float, default=None, metavar="P",
        help="also render the invocation at the Pth e2e-latency percentile",
    )
    trace_cmd.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="export the traces as Chrome trace-event JSON (loadable in "
             "Perfetto / chrome://tracing) to PATH",
    )
    export = sub.add_parser(
        "export-azure", help="write a synthetic dataset in the Azure CSV schema"
    )
    export.add_argument("--out", required=True)
    export.add_argument("--functions", type=int, default=2000)
    export.add_argument("--minutes", type=int, default=1440)
    export.add_argument("--seed", type=int, default=0xFAA5)
    azure_scale = sub.add_parser(
        "azure-scale",
        help="replay an Azure-schema dataset per shard count; record the "
             "throughput/RSS scaling curve in BENCH_azure_scale.json",
    )
    azure_scale.add_argument(
        "--dataset", default=None, metavar="DIR",
        help="directory of Azure-schema CSVs (e.g. from export-azure); "
             "default: generate a synthetic dataset in-process",
    )
    azure_scale.add_argument("--functions", type=int, default=120,
                             help="synthetic dataset size (ignored with --dataset)")
    azure_scale.add_argument("--minutes", type=int, default=60,
                             help="synthetic dataset length (ignored with --dataset)")
    azure_scale.add_argument("--seed", type=int, default=0xFAA5)
    azure_scale.add_argument("--workers", type=int, default=8)
    azure_scale.add_argument("--cores-per-worker", type=int, default=2)
    azure_scale.add_argument(
        "--shards", default="1,2", metavar="N,N,...",
        help="comma-separated shard counts to measure (default: 1,2); "
             "1 = single-process engine",
    )
    azure_scale.add_argument("--policy", default="ch_bl")
    azure_scale.add_argument("--status-interval", type=float, default=2.0)
    azure_scale.add_argument(
        "--health", action="store_true",
        help="grade every row's outcomes against the default SLO targets "
             "(outside the timed region); adds slo_viol/alerts columns",
    )
    azure_scale.add_argument(
        "--out", default=None, metavar="PATH",
        help="record path (default: BENCH_azure_scale.json at the repo root)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:  # e.g. REPRO_JOBS=banana
        parser.error(str(exc))
    if args.cache_dir:
        # Exported (not passed) so parallel worker processes inherit it.
        os.environ[CACHE_ENV_VAR] = args.cache_dir
    telemetry_dir = args.telemetry or os.environ.get(TELEMETRY_ENV_VAR) or None
    scale = _SCALES[args.scale]
    out = []

    if args.command == "fig1":
        out.append(format_table(fig1_rows(scale), title="Figure 1"))
    elif args.command == "table2":
        out.append(
            format_table(run_table2(args.invocations), title="Table 2 (ms)")
        )
    elif args.command == "table3":
        out.append(format_table(table3_rows(scale), title="Table 3"))
    elif args.command == "table4":
        out.append(format_table(table4_rows(), title="Table 4"))
    elif args.command in ("fig4", "fig5"):
        results = run_keepalive_sweep(scale, n_jobs=args.jobs)
        rows = fig4_rows(results) if args.command == "fig4" else fig5_rows(results)
        title = "Figure 4" if args.command == "fig4" else "Figure 5"
        out.append(format_table(rows, title=title))
    elif args.command == "litmus":
        out.append(
            format_table(
                fig6_rows(scale, workloads=tuple(args.workloads),
                          n_jobs=args.jobs),
                title="Figure 6",
            )
        )
    elif args.command == "fig7":
        out.append(format_table(fig7_rows(scale), title="Figure 7"))
    elif args.command == "fig8":
        outcome = run_fig8(scale)
        out.append(format_table([outcome.as_dict()], title="Figure 8"))
    elif args.command == "ablation":
        which = args.which
        if which in ("queue", "all"):
            out.append(format_table(run_queue_policy_ablation(n_jobs=args.jobs),
                                    title="Queue disciplines"))
        if which in ("bypass", "all"):
            out.append(format_table(run_bypass_ablation(), title="Bypass"))
        if which in ("regulator", "all"):
            out.append(format_table(run_regulator_ablation(), title="Regulator"))
        if which in ("coldpath", "all"):
            out.append(format_table(run_coldpath_ablation(), title="Cold path"))
        if which in ("lb", "all"):
            from .experiments import run_lb_ablation, run_lb_policy_comparison

            out.append(format_table(run_lb_ablation(n_jobs=args.jobs),
                                    title="CH-BL bound factor"))
            out.append(format_table(run_lb_policy_comparison(n_jobs=args.jobs),
                                    title="LB policies"))
        if which in ("dispatch", "all"):
            from .experiments import run_dispatch_race

            out.append(format_table(
                run_dispatch_race(n_jobs=args.jobs),
                title="Dispatch race (push CH-BL vs pull)",
            ))
    elif args.command == "hrc":
        from .keepalive import hit_ratio_curve, recommend_cache_size

        trace = make_traces(scale)["representative"]
        curve = hit_ratio_curve(trace)
        rows = [
            {"cache_gb": gb,
             "predicted_warm_pct": 100 * curve.hit_ratio_at(gb * 1024.0)}
            for gb in (1, 2, 4, 8, 16, 32)
        ]
        size = recommend_cache_size(trace, args.target_cold_ratio)
        out.append(format_table(rows, title="Hit-ratio curve"))
        out.append(
            f"smallest cache for <= {args.target_cold_ratio:.0%} cold: "
            f"{'unreachable' if size is None else f'{size:,.0f} MB'}"
        )
    elif args.command == "cluster-study":
        if args.trace and telemetry_dir is None:
            parser.error("--trace requires --telemetry DIR (or "
                         f"${TELEMETRY_ENV_VAR}) to hold traces.jsonl")
        if args.trace and args.compare_lb:
            parser.error("--trace applies to a single study run, not the "
                         "LB sweep")
        if args.health and telemetry_dir is None:
            parser.error("--health requires --telemetry DIR (or "
                         f"${TELEMETRY_ENV_VAR}) to hold health.json")
        if args.health and args.compare_lb:
            parser.error("--health applies to a single study run, not the "
                         "LB sweep")
        if args.compare_lb:
            from .experiments import run_cluster_lb_sweep

            rows = run_cluster_lb_sweep(scale, n_jobs=args.jobs,
                                        shards=args.shards)
            out.append(format_table(rows, title="Cluster study (LB sweep)"))
        else:
            from .experiments import run_cluster_study

            result = run_cluster_study(scale, telemetry_dir=telemetry_dir,
                                       shards=args.shards,
                                       trace_invocations=args.trace,
                                       health=args.health)
            out.append(format_table([result.as_dict()], title="Cluster study"))
            if telemetry_dir is not None:
                out.append(f"telemetry run exported to {telemetry_dir}")
                if args.trace:
                    out.append(
                        f"causal traces collected: repro trace {telemetry_dir}"
                    )
                if args.health:
                    out.append(
                        f"health graded: repro health {telemetry_dir}"
                    )
    elif args.command == "inspect":
        from .telemetry import inspect_report

        out.append(inspect_report(args.run_dir).rstrip())
    elif args.command == "health":
        from .health import health_report

        out.append(health_report(args.run_dir).rstrip())
    elif args.command == "watch":
        from .health import watch

        watch(args.run_dir, once=args.once, interval=args.interval)
        print()
        return 0
    elif args.command == "trace":
        from .tracing import export_perfetto, trace_report

        out.append(
            trace_report(args.run_dir, top=args.top,
                         percentile=args.percentile).rstrip()
        )
        if args.perfetto is not None:
            try:
                slices = export_perfetto(args.run_dir, args.perfetto)
            except FileNotFoundError as exc:
                parser.error(str(exc))
            out.append(f"wrote {slices} trace slices to {args.perfetto}")
    elif args.command == "export-azure":
        from .trace.azure import AzureTraceConfig, generate_dataset
        from .trace.azure_io import write_azure_csvs

        dataset = generate_dataset(
            AzureTraceConfig(
                num_functions=args.functions,
                duration_minutes=args.minutes,
                seed=args.seed,
            )
        )
        path = write_azure_csvs(dataset, args.out)
        out.append(
            f"wrote {dataset.total_invocations()} invocations / "
            f"{len(dataset.counts)} functions to {path}"
        )
    elif args.command == "azure-scale":
        from .experiments import run_azure_scale

        try:
            shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
        except ValueError:
            parser.error(f"--shards must be comma-separated integers, got "
                         f"{args.shards!r}")
        report = run_azure_scale(
            args.dataset,
            num_functions=args.functions,
            minutes=args.minutes,
            seed=args.seed,
            num_workers=args.workers,
            cores_per_worker=args.cores_per_worker,
            shard_counts=shard_counts,
            lb_policy=args.policy,
            status_interval=args.status_interval,
            out_path=args.out,
            health=args.health,
        )
        table_rows = []
        for r in report.rows:
            row = {
                "shards": r.shards,
                "engine": r.engine,
                "wall_s": round(r.wall_s, 3),
                "inv_per_sec": round(r.inv_per_sec, 1),
                "peak_rss_mb": round(r.peak_rss_mb, 1),
            }
            if r.seam_stats is not None:
                row["msgs_per_shard"] = r.seam_stats["messages_per_shard"]
                row["epochs"] = r.seam_stats["epochs"]
            if r.flight is not None:
                row["stall_s"] = round(r.flight["stall_s"], 3)
                row["overlap_pct"] = round(
                    100.0 * r.flight["overlap_efficiency"], 1
                )
            if r.health is not None:
                row["slo_viol"] = r.health["slo_violations"]
                row["alerts"] = r.health["alerts"]
            if r.fallback_reason is not None:
                row["fallback"] = "yes"
            table_rows.append(row)
        out.append(format_table(table_rows, title="Azure-scale sharded replay"))
        out.append(
            f"summaries_match={report.summaries_match}  "
            f"invocations={report.dataset['invocations']}  "
            f"record: {args.out or 'BENCH_azure_scale.json'}"
        )
        if "WARNING" in report.record:
            out.append(f"WARNING: {report.record['WARNING']}")
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)

    print("\n\n".join(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
