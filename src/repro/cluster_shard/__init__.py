"""Sharded multi-process cluster simulation with a time-synchronized
load-balancer seam.

A ``cluster-study`` at N shards partitions the cluster's workers across N
child processes, each simulating its own DES environment, while the
parent runs the load balancer and advances simulated time in conservative
epochs — the lookahead is the LB→worker dispatch latency, the only
channel through which workers ever interact.  The sharded run reproduces
the single-process run's invocation records **bit for bit** (pinned
against the golden fixture by ``tests/test_cluster_shard.py``); it exists
purely to spend more cores on the same simulation.

Opt in with ``--shards N`` / ``REPRO_SHARDS``; protocol, lookahead
contract and determinism argument are documented in ``docs/SHARDING.md``.
"""

from .coordinator import ShardedOutcome, run_sharded_replay
from .merge import MergedTelemetry, ShardTelemetryParts
from .protocol import (
    EPOCH_CHUNK,
    LOAD_POLICIES,
    RESULT_CHUNK,
    SHARDS_ENV_VAR,
    ShardSpec,
    ShardingUnavailable,
    partition_workers,
    plan_epochs,
    resolve_shards,
    sync_indices,
)

__all__ = [
    "EPOCH_CHUNK",
    "LOAD_POLICIES",
    "RESULT_CHUNK",
    "SHARDS_ENV_VAR",
    "MergedTelemetry",
    "ShardSpec",
    "ShardTelemetryParts",
    "ShardedOutcome",
    "ShardingUnavailable",
    "partition_workers",
    "plan_epochs",
    "resolve_shards",
    "run_sharded_replay",
    "sync_indices",
]
