"""The shard coordinator: the load balancer, run against remote loads.

The coordinator owns everything a single-process :class:`Cluster` keeps
at the LB layer — the status board, the balancer, the pick/RPC spans, the
placement counters — but its workers live in shard processes.  It walks
the invocation plan **epoch by epoch**: sync points (the arrivals where a
single-process balancer would have read worker loads, precomputed by
:func:`~.protocol.sync_indices`) bound each epoch, every arrival inside
an epoch is picked against the loads read at its start, and each shard
receives at most one compact columnar message per epoch — parallel numpy
arrays of arrival indices, timestamps, fqdn codes, and local worker
indices — instead of one tuple per invocation.

The sync request for the next epoch's boundary rides inside the current
epoch's message, so shards simulate (and compute the next loads) while
the coordinator is still slicing the following epoch and accounting this
one's spans.  Span accounting itself is batched: ``lb_pick``/``lb_rpc``
spans are emitted with explicit times after the epoch is sent, replacing
the per-arrival virtual-clock toggle; the clock is written once per epoch
(per arrival only when a snapshot status board must publish exact
per-arrival load-read times into the telemetry stream).

Conservative-epoch synchronization: between two sync arrivals no load is
read, so every shard holds all the information it needs to simulate up to
the next sync point; the dispatch/forward latency at the seam is the
lookahead that makes the pick→delivery ordering safe (delivery at
``t + rpc_latency`` is strictly after every state the pick depended on).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import Generator, Optional, Sequence

import numpy as np

from ..core.config import WorkerConfig
from ..dispatch.registry import is_pull_policy
from ..loadbalancer.cluster import Cluster
from ..loadbalancer.policies import StatusBoard, make_balancer
from ..metrics.spans import SpanRecorder
from .protocol import (
    EPOCH_CHUNK,
    ShardSpec,
    ShardingUnavailable,
    partition_workers,
    plan_epochs,
    sync_indices,
)

__all__ = ["FlightRecorder", "ShardedOutcome", "run_sharded_replay"]


class FlightRecorder:
    """Wall-clock accounting of the coordinator's epoch walk.

    One row per seam chunk: how long the coordinator *stalled* blocked on
    shard load reports, how long it spent picking and sending, how much
    coordinator-side work it *overlapped* with shard simulation (slicing
    the next chunk, accounting spans/traces), and how many payload bytes
    crossed the seam.  ``finish`` reduces the rows to totals, including
    ``overlap_efficiency`` — the fraction of coordinator wait-or-work time
    spent working (1.0 = the prefetch pipeline fully hides the seam, 0.0 =
    the coordinator is purely stall-bound).  Opt-in wall-clock telemetry:
    it observes nothing simulated, so recorded runs stay bit-identical.
    """

    __slots__ = ("epochs", "merge_s", "_t0")

    def __init__(self):
        self.epochs: list[dict] = []
        self.merge_s = 0.0
        self._t0 = perf_counter()

    def epoch(self, **row) -> None:
        self.epochs.append(row)

    def finish(self) -> dict:
        rows = self.epochs
        stall = sum(r["stall_s"] for r in rows)
        overlap = sum(r["overlap_s"] for r in rows)
        busy = stall + overlap
        return {
            "totals": {
                "epochs": len(rows),
                "arrivals": sum(r["arrivals"] for r in rows),
                "stall_s": stall,
                "pick_s": sum(r["pick_s"] for r in rows),
                "send_s": sum(r["send_s"] for r in rows),
                "overlap_s": overlap,
                "overlap_efficiency": (overlap / busy) if busy > 0 else 0.0,
                "payload_bytes": sum(r["payload_bytes"] for r in rows),
                "merge_s": self.merge_s,
                "wall_s": perf_counter() - self._t0,
            },
            "epochs": rows,
        }


class _Clock:
    """Mutable virtual clock the coordinator advances epoch by epoch."""

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0.0


@dataclass(frozen=True)
class ShardedOutcome:
    """Merged result of a sharded replay (single-process-equivalent)."""

    summaries: list        # (k, dropped, completed, cold, e2e, overhead), by k
    forwards: int
    placements: int
    per_worker_records: dict
    telemetry: Optional[object] = None   # MergedTelemetry when opted in
    seam_log: Optional[list] = None      # (k, pick_t, deliver_t) when collected
    seam_stats: Optional[dict] = None    # epoch/message accounting of the run
    flight_log: Optional[dict] = None    # FlightRecorder.finish() when opted in


def _spawn_shards(ctx, specs):
    """Start one process per spec; on any failure, clean up and signal
    :class:`ShardingUnavailable` so callers can fall back to serial."""
    from .shard import shard_main

    conns, procs = [], []
    try:
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=shard_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"repro-shard-{spec.index}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
    except (OSError, ValueError, ImportError, AttributeError,
            pickle.PicklingError) as exc:
        for p in procs:
            p.terminate()
        for p in procs:
            p.join()
        raise ShardingUnavailable(str(exc)) from exc
    return conns, procs


def _recv(conn, shard_index):
    """One message off a shard pipe; every failure names the shard."""
    try:
        msg = conn.recv()
    except (EOFError, OSError) as exc:
        raise RuntimeError(f"shard {shard_index} died mid-run: {exc}") from exc
    if msg[0] == "error":
        raise RuntimeError(f"shard {shard_index} failed:\n{msg[1]}")
    return msg


def _send(conn, shard_index, msg):
    """Send to a shard pipe; a broken pipe means the shard died mid-epoch,
    so drain its final message (usually the traceback, re-raised with the
    shard index by :func:`_recv`) instead of surfacing a bare OSError."""
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError) as exc:
        _recv(conn, shard_index)   # raises with the shard's own traceback
        raise RuntimeError(
            f"shard {shard_index} died mid-run: {exc}"
        ) from exc


def _plan_codes(fqdns: Sequence[str]) -> tuple[np.ndarray, tuple]:
    """Factor the plan's fqdn column into ``(codes, vocabulary)``.

    The vocabulary ships to every shard once (in its spec); dispatch
    messages then carry ``int32`` codes instead of repeated strings.
    """
    if not len(fqdns):
        return np.empty(0, dtype=np.int32), ()
    vocab, inverse = np.unique(np.asarray(fqdns, dtype=object),
                               return_inverse=True)
    return inverse.astype(np.int32), tuple(str(f) for f in vocab)


def _chunk_descs(
    segments, timestamps: np.ndarray, chunk: int
) -> Generator[tuple[int, int, Optional[int], Optional[tuple]], None, None]:
    """Lazily yield the seam walk's chunk descriptors.

    Each descriptor is ``(a, b, recv_k, sync_req)``: pick arrivals
    ``[a, b)``, after first receiving the loads answering sync arrival
    ``recv_k`` (``None`` when the picks need no fresh loads), and attach
    ``sync_req = (k, t)`` — the *next* epoch's load request — to the
    outgoing message (``None`` mid-epoch and at the end of the plan).
    Descriptors are generated lazily so a live-load plan (one epoch per
    arrival) never materializes a per-arrival descriptor list.
    """
    if segments and segments[0][0] is not None:
        # The first epoch starts at a sync arrival: prime the pipeline
        # with an empty message carrying only its load request.
        k0 = segments[0][0]
        yield (0, 0, None, (k0, float(timestamps[k0])))
    for idx, (sync_k, a, b) in enumerate(segments):
        next_req = None
        if idx + 1 < len(segments):
            nk = segments[idx + 1][0]
            if nk is not None:
                next_req = (nk, float(timestamps[nk]))
        ca = a
        while ca < b:
            cb = min(ca + chunk, b)
            yield (ca, cb, sync_k if ca == a else None,
                   next_req if cb == b else None)
            ca = cb


def _assemble_seam_log(timestamps, seam_parts) -> list:
    """Merge per-shard seam entries into ``(k, pick_t, deliver_t)`` rows.

    ``seam_parts`` is one iterable of ``(arrival_index, delivery_time)``
    entries per shard; empty shards (no deliveries before the horizon)
    and an empty plan both reduce to an empty log.  A standalone helper
    with its own locals — the arrival index here must never alias the
    dispatch loop's variables (the PR-6 inline version shadowed them).
    """
    deliveries: dict[int, float] = {}
    for part in seam_parts:
        if not part:
            continue
        for arrival, delivered_at in part:
            deliveries[arrival] = delivered_at
    return [
        (arrival, float(timestamps[arrival]), deliveries[arrival])
        for arrival in sorted(deliveries)
    ]


def run_sharded_replay(
    plan,
    *,
    num_workers: int,
    shards: int,
    registrations: Sequence,
    config: Optional[WorkerConfig] = None,
    bound_factor: float = 1.2,
    rpc_latency: float = 0.0005,
    lb_policy: str = "ch_bl",
    status_interval: Optional[float] = None,
    grace: float = 120.0,
    horizon: Optional[float] = None,
    telemetry_config=None,
    collect_seam: bool = False,
    start_method: Optional[str] = None,
    chunk_size: Optional[int] = None,
    spool_dir=None,
    flight_recorder: bool = False,
    live_path=None,
) -> ShardedOutcome:
    """Replay an :class:`~repro.loadgen.openloop.InvocationPlan` on a
    sharded cluster; parameters mirror :class:`Cluster` + ``replay_plan``.

    ``chunk_size`` caps the arrivals per seam message (default
    :data:`~.protocol.EPOCH_CHUNK`); epochs that fit send exactly one
    message per shard.  ``spool_dir``, when set with telemetry enabled,
    spools the shards' record/span/breakdown streams to disk as they
    arrive instead of holding them in RAM (the streaming-export path for
    full-trace replays).  ``flight_recorder`` turns on wall-clock seam
    accounting (:class:`FlightRecorder`): per-epoch stall/pick/send/
    overlap timings and payload bytes, reduced to totals on the returned
    outcome's ``flight_log`` and exported as ``flight.json`` by the
    merged telemetry — purely observational, simulated results are
    unchanged.

    ``live_path``, when set, appends coordinator heartbeats (JSON lines:
    sim time reached, epoch count, placements so far) for ``repro watch``
    to tail while the run executes; the final beat carries the merged
    health totals when health telemetry was enabled.  Heartbeats are
    written from the coordinator's overlap region, so they cost nothing
    the flight recorder would not already attribute to overlapped work —
    and they never touch simulated state.

    Raises :class:`ShardingUnavailable` when shard processes cannot start
    (callers fall back to the single-process path), and ``ValueError``
    when ``rpc_latency`` is not positive — the seam latency is the
    conservative lookahead, so sharding without it is unsound.
    """
    if rpc_latency <= 0:
        raise ValueError(
            "sharded runs need rpc_latency > 0: the LB->worker dispatch "
            "latency is the lookahead that makes the epoch barrier safe"
        )
    if is_pull_policy(lb_policy):
        # Checked again inside sync_indices; guarding here keeps the
        # refusal independent of call ordering and before any shard setup.
        raise ShardingUnavailable(
            f"pull dispatch policy {lb_policy!r} claims from a shared "
            "logical queue; the epoch seam carries no claim traffic, so "
            "pull runs are serial-only"
        )
    import multiprocessing as mp

    if mp.current_process().daemon:
        raise ShardingUnavailable(
            "daemonic parent (e.g. a run_parallel pool worker) cannot "
            "spawn shard processes"
        )

    base = config or WorkerConfig()
    cfgs = Cluster.worker_configs(base, num_workers)
    parts = partition_workers(num_workers, shards)
    num_shards = len(parts)
    # Coordinator fast path: worker-id-indexed arrays replace the
    # name-keyed dict walk — one name->id lookup per pick, then pure
    # array indexing for shard ownership and shard-local position.
    worker_names = [cfg.name for cfg in cfgs]
    worker_ids = {name: i for i, name in enumerate(worker_names)}
    shard_of = np.empty(num_workers, dtype=np.int32)
    local_of = np.empty(num_workers, dtype=np.int32)
    for s, rng in enumerate(parts):
        for i in rng:
            shard_of[i] = s
            local_of[i] = i - rng.start

    n = len(plan)
    ts_arr = np.asarray(plan.timestamps, dtype=np.float64)
    if horizon is None:
        horizon = plan.duration + grace
    sync_set = sync_indices(ts_arr, lb_policy, status_interval)
    segments = plan_epochs(n, sync_set)
    chunk = int(chunk_size or EPOCH_CHUNK)
    fqdn_codes, fqdn_vocab = _plan_codes(plan.fqdns)

    specs = [
        ShardSpec(
            index=s,
            worker_configs=tuple(cfgs[i] for i in rng),
            registrations=tuple(registrations),
            rpc_latency=float(rpc_latency),
            horizon=float(horizon),
            fqdn_vocab=fqdn_vocab,
            telemetry=telemetry_config,
            collect_seam=collect_seam,
        )
        for s, rng in enumerate(parts)
    ]

    # -- LB state, exactly as Cluster wires it (loads come from shards) --
    clk = _Clock()
    loads: dict[str, float] = {}
    status_board = StatusBoard(
        clock=partial(getattr, clk, "now"),
        live_load_fn=loads.__getitem__,
        interval=status_interval,
    )
    balancer = make_balancer(lb_policy, status_board.load, bound_factor=bound_factor)
    for name in worker_names:
        balancer.add_worker(name)
    spans = SpanRecorder(
        clock=partial(getattr, clk, "now"), enabled=base.tracing_enabled
    )
    lb_loads = None
    if telemetry_config is not None:
        from ..telemetry.sampler import Timeseries

        if telemetry_config.keep_spans:
            spans.keep_spans = True
        lb_loads = Timeseries(("t", "worker", "load"))
        # publish(worker, t, value) -> row (t, worker, value), matching
        # TelemetrySampler.record_lb_load on the single-process path.
        status_board.publish = (
            lambda worker, t, value: lb_loads.append(t, worker, value)
        )
    # A snapshot board publishes the first read of each worker at the
    # *reading* arrival's time, which can fall mid-epoch — only then does
    # the clock need per-arrival writes.  Otherwise one write per epoch
    # suffices: the refresh predicate cannot fire mid-epoch (that is what
    # makes it an epoch), and live boards never read the clock at all.
    arrival_clock = (
        status_interval is not None and lb_loads is not None and bool(sync_set)
    )

    method = start_method or os.environ.get("REPRO_MP_START") or None
    try:
        ctx = mp.get_context(method)
    except ValueError as exc:
        raise ShardingUnavailable(str(exc)) from exc
    conns, procs = _spawn_shards(ctx, specs)

    placements = 0
    sent = [0] * num_shards
    pick = balancer.pick
    emit = spans.emit
    spans_on = spans.enabled
    rpc = float(rpc_latency)
    trace_on = telemetry_config is not None and getattr(
        telemetry_config, "trace", False
    )
    lb_trace: Optional[list] = None
    if trace_on:
        from ..tracing import TraceEvent

        lb_trace = []
    fr = FlightRecorder() if flight_recorder else None
    live_writer = None
    next_live_t = 0.0
    live_interval = 10.0
    if live_path is not None:
        from ..health.live import LiveWriter

        health_cfg = getattr(telemetry_config, "health", None)
        if health_cfg is not None:
            live_interval = health_cfg.heartbeat_interval()
        live_writer = LiveWriter(live_path)
        next_live_t = live_interval

    def _prep(desc):
        """Slice one chunk's columns (the only per-chunk allocations)."""
        if desc is None:
            return None
        a, b, recv_k, sync_req = desc
        return (a, b, ts_arr[a:b].tolist(), plan.fqdns[a:b], recv_k, sync_req)

    try:
        descs = _chunk_descs(segments, ts_arr, chunk)
        prepared = _prep(next(descs, None))
        if prepared is None and segments:  # pragma: no cover - defensive
            raise RuntimeError("chunk walk produced no descriptors")
        while prepared is not None:
            a, b, tlist, fq, recv_k, sync_req = prepared
            if fr is not None:
                _t = perf_counter()
            if recv_k is not None:
                for s, conn in enumerate(conns):
                    msg = _recv(conn, s)
                    assert msg[0] == "loads" and msg[1] == recv_k
                    loads.update(msg[2])
            if fr is not None:
                _recv_done = perf_counter()
            m = b - a
            picks = np.empty(m, dtype=np.int32)
            if arrival_clock:
                for i in range(m):
                    clk.now = tlist[i]
                    picks[i] = worker_ids[pick(fq[i])]
            else:
                if m:
                    clk.now = tlist[0]   # single clock write per epoch
                for i in range(m):
                    picks[i] = worker_ids[pick(fq[i])]
            placements += m
            if fr is not None:
                _pick_done = perf_counter()
                pbytes = 0
            # Columnar per-shard encode + send (at most one message per
            # shard for any epoch that fits in ``chunk``).
            kcol = np.arange(a, b, dtype=np.int64)
            tcol = ts_arr[a:b]
            ccol = fqdn_codes[a:b]
            owners = shard_of[picks] if m else picks
            for s, conn in enumerate(conns):
                if m:
                    mask = owners == s
                    any_here = bool(mask.any())
                else:
                    any_here = False
                if not any_here and sync_req is None:
                    continue
                if any_here:
                    msg = ("E", kcol[mask], tcol[mask], ccol[mask],
                           local_of[picks[mask]], sync_req)
                else:
                    msg = ("E", kcol[:0], tcol[:0], ccol[:0],
                           picks[:0], sync_req)
                _send(conn, s, msg)
                sent[s] += 1
                if fr is not None:
                    pbytes += (msg[1].nbytes + msg[2].nbytes
                               + msg[3].nbytes + msg[4].nbytes)
            if fr is not None:
                _send_done = perf_counter()
            # Shards are now simulating this epoch (and computing the
            # next loads): overlap the coordinator-side work — slicing
            # the next chunk and accounting this one's spans/traces.
            nxt = _prep(next(descs, None))
            if spans_on:
                names = worker_names
                for i in range(m):
                    t = tlist[i]
                    f = fq[i]
                    emit("lb_pick", t, t, f)
                    emit("lb_rpc", t, t + rpc, names[picks[i]])
            if lb_trace is not None:
                # The seam's pick-side trace events: same times the serial
                # Cluster.async_invoke stamps (pick at t, rpc [t, t+rpc]),
                # trace id = sharded invocation id (arrival index + 1).
                names = worker_names
                for i in range(m):
                    t = tlist[i]
                    tid = a + i + 1
                    lb_trace.append(TraceEvent(
                        trace_id=tid, seq=0, name="lb_pick", kind="lb",
                        start=t, end=t,
                    ))
                    lb_trace.append(TraceEvent(
                        trace_id=tid, seq=1, name="lb_rpc", kind="lb",
                        start=t, end=t + rpc, parent="lb_pick",
                        worker=names[picks[i]],
                    ))
            if live_writer is not None and m and tlist[-1] >= next_live_t:
                live_writer.heartbeat({
                    "t": tlist[-1],
                    "engine": "sharded",
                    "placements": placements,
                    "epoch": sum(sent),
                })
                next_live_t = (
                    int(tlist[-1] // live_interval) + 1
                ) * live_interval
            if fr is not None:
                fr.epoch(
                    epoch=len(fr.epochs),
                    sync_k=recv_k,
                    arrivals=m,
                    stall_s=_recv_done - _t,
                    pick_s=_pick_done - _recv_done,
                    send_s=_send_done - _pick_done,
                    overlap_s=perf_counter() - _send_done,
                    payload_bytes=pbytes,
                )
            prepared = nxt

        for s, conn in enumerate(conns):
            _send(conn, s, ("F",))
        if fr is not None:
            _m0 = perf_counter()
        summaries_parts: list[list] = [[] for _ in specs]
        seam_parts: list[list] = [[] for _ in specs]
        per_worker: dict[str, int] = {}
        tele_parts = None
        if telemetry_config is not None:
            from .merge import ShardTelemetryParts

            tele_parts = [
                ShardTelemetryParts(shard_index=s, spool_dir=spool_dir)
                for s in range(num_shards)
            ]
        for s, conn in enumerate(conns):
            while True:
                msg = _recv(conn, s)
                if msg[0] == "part":
                    kind, chunk_items = msg[1], msg[2]
                    if kind == "summaries":
                        summaries_parts[s].extend(chunk_items)
                    elif kind == "seam":
                        seam_parts[s].extend(chunk_items)
                    elif tele_parts is not None:
                        tele_parts[s].append(kind, chunk_items)
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"shard {s} streamed unexpected part {kind!r}"
                        )
                    continue
                assert msg[0] == "result"
                payload = msg[1]
                break
            per_worker.update(payload["per_worker_records"])
            if tele_parts is not None:
                tele_parts[s].set_meta(payload["telemetry"])
        for p in procs:
            p.join()
        if fr is not None:
            fr.merge_s = perf_counter() - _m0
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join()
        for conn in conns:
            conn.close()

    summaries = sorted(
        (row for rows in summaries_parts for row in rows),
        key=lambda row: row[0],
    )

    seam_log = None
    if collect_seam:
        seam_log = _assemble_seam_log(ts_arr, seam_parts)

    seam_stats = {
        "epochs": len(segments),
        "sync_points": len(sync_set),
        "messages_per_shard": max(sent) if sent else 0,
        "chunk_size": chunk,
    }
    flight_log = fr.finish() if fr is not None else None

    telemetry = None
    if telemetry_config is not None:
        from .merge import MergedTelemetry

        telemetry = MergedTelemetry(
            config=telemetry_config,
            worker_names=worker_names,
            shard_parts=tele_parts,
            lb_spans=spans.spans(),
            lb_loads=lb_loads,
            lb_traces=lb_trace,
            flight=flight_log,
            seam_stats=seam_stats,
            shards=num_shards,
            dispatch_info={"policy": balancer.name, "kind": "push"},
        )

    if live_writer is not None:
        final = {
            "t": float(horizon),
            "engine": "sharded",
            "placements": placements,
            "epoch": sum(sent),
        }
        merged_health = getattr(telemetry, "health", None)
        if merged_health is not None:
            final.update(merged_health.totals())
        final["done"] = True
        live_writer.heartbeat(final)
        live_writer.close()

    return ShardedOutcome(
        summaries=summaries,
        forwards=getattr(balancer, "forwards", 0),
        placements=placements,
        per_worker_records=per_worker,
        telemetry=telemetry,
        seam_log=seam_log,
        seam_stats=seam_stats,
        flight_log=flight_log,
    )
