"""The shard coordinator: the load balancer, run against remote loads.

The coordinator owns everything a single-process :class:`Cluster` keeps
at the LB layer — the status board, the balancer, the pick/RPC spans, the
placement counters — but its workers live in shard processes.  It walks
the invocation plan arrival by arrival, advancing a virtual clock to each
arrival's timestamp, asking shards for their worker loads only at the
arrivals where a single-process balancer would have read them (the
precomputed :func:`~.protocol.sync_indices`), and streaming placement
decisions to the owning shards in batches.

Conservative-epoch synchronization: between two sync arrivals no load is
read, so every shard holds all the information it needs to simulate up to
the next sync point; the dispatch/forward latency at the seam is the
lookahead that makes the pick→delivery ordering safe (delivery at
``t + rpc_latency`` is strictly after every state the pick depended on).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence

from ..core.config import WorkerConfig
from ..loadbalancer.cluster import Cluster
from ..loadbalancer.policies import StatusBoard, make_balancer
from ..metrics.spans import SpanRecorder
from .protocol import ShardSpec, ShardingUnavailable, partition_workers, sync_indices

__all__ = ["ShardedOutcome", "run_sharded_replay"]

# Dispatch entries buffered per shard before an eager flush; keeps shards
# simulating while the coordinator is still walking the plan.
BATCH_ENTRIES = 512


class _Clock:
    """Mutable virtual clock the coordinator advances arrival by arrival."""

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0.0


@dataclass(frozen=True)
class ShardedOutcome:
    """Merged result of a sharded replay (single-process-equivalent)."""

    summaries: list        # (k, dropped, completed, cold, e2e, overhead), by k
    forwards: int
    placements: int
    per_worker_records: dict
    telemetry: Optional[object] = None   # MergedTelemetry when opted in
    seam_log: Optional[list] = None      # (k, pick_t, deliver_t) when collected


def _spawn_shards(ctx, specs):
    """Start one process per spec; on any failure, clean up and signal
    :class:`ShardingUnavailable` so callers can fall back to serial."""
    from .shard import shard_main

    conns, procs = [], []
    try:
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=shard_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"repro-shard-{spec.index}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
    except (OSError, ValueError, ImportError, AttributeError,
            pickle.PicklingError) as exc:
        for p in procs:
            p.terminate()
        for p in procs:
            p.join()
        raise ShardingUnavailable(str(exc)) from exc
    return conns, procs


def _recv(conn, shard_index):
    try:
        msg = conn.recv()
    except (EOFError, OSError) as exc:
        raise RuntimeError(f"shard {shard_index} died mid-run: {exc}") from exc
    if msg[0] == "error":
        raise RuntimeError(f"shard {shard_index} failed:\n{msg[1]}")
    return msg


def run_sharded_replay(
    plan,
    *,
    num_workers: int,
    shards: int,
    registrations: Sequence,
    config: Optional[WorkerConfig] = None,
    bound_factor: float = 1.2,
    rpc_latency: float = 0.0005,
    lb_policy: str = "ch_bl",
    status_interval: Optional[float] = None,
    grace: float = 120.0,
    horizon: Optional[float] = None,
    telemetry_config=None,
    collect_seam: bool = False,
    start_method: Optional[str] = None,
) -> ShardedOutcome:
    """Replay an :class:`~repro.loadgen.openloop.InvocationPlan` on a
    sharded cluster; parameters mirror :class:`Cluster` + ``replay_plan``.

    Raises :class:`ShardingUnavailable` when shard processes cannot start
    (callers fall back to the single-process path), and ``ValueError``
    when ``rpc_latency`` is not positive — the seam latency is the
    conservative lookahead, so sharding without it is unsound.
    """
    if rpc_latency <= 0:
        raise ValueError(
            "sharded runs need rpc_latency > 0: the LB->worker dispatch "
            "latency is the lookahead that makes the epoch barrier safe"
        )
    import multiprocessing as mp

    if mp.current_process().daemon:
        raise ShardingUnavailable(
            "daemonic parent (e.g. a run_parallel pool worker) cannot "
            "spawn shard processes"
        )

    base = config or WorkerConfig()
    cfgs = Cluster.worker_configs(base, num_workers)
    parts = partition_workers(num_workers, shards)
    shard_of = {}
    for s, rng in enumerate(parts):
        for i in rng:
            shard_of[cfgs[i].name] = s
    if horizon is None:
        horizon = plan.duration + grace
    sync_set = sync_indices(plan.timestamps, lb_policy, status_interval)

    specs = [
        ShardSpec(
            index=s,
            worker_configs=tuple(cfgs[i] for i in rng),
            registrations=tuple(registrations),
            rpc_latency=float(rpc_latency),
            horizon=float(horizon),
            telemetry=telemetry_config,
            collect_seam=collect_seam,
        )
        for s, rng in enumerate(parts)
    ]

    # -- LB state, exactly as Cluster wires it (loads come from shards) --
    clk = _Clock()
    loads: dict[str, float] = {}
    status_board = StatusBoard(
        clock=partial(getattr, clk, "now"),
        live_load_fn=loads.__getitem__,
        interval=status_interval,
    )
    balancer = make_balancer(lb_policy, status_board.load, bound_factor=bound_factor)
    for cfg in cfgs:
        balancer.add_worker(cfg.name)
    spans = SpanRecorder(
        clock=partial(getattr, clk, "now"), enabled=base.tracing_enabled
    )
    lb_loads = None
    if telemetry_config is not None:
        from ..telemetry.sampler import Timeseries

        if telemetry_config.keep_spans:
            spans.keep_spans = True
        lb_loads = Timeseries(("t", "worker", "load"))
        # publish(worker, t, value) -> row (t, worker, value), matching
        # TelemetrySampler.record_lb_load on the single-process path.
        status_board.publish = (
            lambda worker, t, value: lb_loads.append(t, worker, value)
        )

    method = start_method or os.environ.get("REPRO_MP_START") or None
    try:
        ctx = mp.get_context(method)
    except ValueError as exc:
        raise ShardingUnavailable(str(exc)) from exc
    conns, procs = _spawn_shards(ctx, specs)

    placements = 0
    try:
        batches: list[list] = [[] for _ in specs]

        def flush(s: int) -> None:
            if batches[s]:
                conns[s].send(batches[s])
                batches[s] = []

        for k in range(len(plan)):
            t = float(plan.timestamps[k])
            clk.now = t
            if k in sync_set:
                for s in range(len(specs)):
                    batches[s].append(("sync", k, t))
                    flush(s)
                for s, conn in enumerate(conns):
                    msg = _recv(conn, s)
                    assert msg[0] == "loads" and msg[1] == k
                    loads.update(msg[2])
            fqdn = plan.fqdns[k]
            handle = spans.begin("lb_pick", tag=fqdn)
            target = balancer.pick(fqdn)
            spans.end(handle)
            placements += 1
            # The RPC-hop span the single-process forward process records:
            # begin at the pick, end at delivery (pick time + seam latency).
            rpc = spans.begin("lb_rpc", tag=target)
            clk.now = t + rpc_latency
            spans.end(rpc)
            clk.now = t
            s = shard_of[target]
            batches[s].append(("dispatch", k, t, fqdn, target, k + 1))
            if len(batches[s]) >= BATCH_ENTRIES:
                flush(s)

        payloads = []
        for s in range(len(specs)):
            batches[s].append(("finish",))
            flush(s)
        for s, conn in enumerate(conns):
            msg = _recv(conn, s)
            assert msg[0] == "result"
            payloads.append(msg[1])
        for p in procs:
            p.join()
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join()
        for conn in conns:
            conn.close()

    summaries = sorted(
        (row for payload in payloads for row in payload["summaries"]),
        key=lambda row: row[0],
    )
    per_worker: dict[str, int] = {}
    for payload in payloads:
        per_worker.update(payload["per_worker_records"])

    seam_log = None
    if collect_seam:
        by_k = {k: deliver for payload in payloads
                for k, deliver in payload["seam"]}
        seam_log = [
            (k, float(plan.timestamps[k]), deliver)
            for k, deliver in sorted(by_k.items())
        ]

    telemetry = None
    if telemetry_config is not None:
        from .merge import MergedTelemetry

        telemetry = MergedTelemetry(
            config=telemetry_config,
            worker_names=[cfg.name for cfg in cfgs],
            shard_payloads=[payload["telemetry"] for payload in payloads],
            lb_spans=spans.spans(),
            lb_loads=lb_loads,
        )

    return ShardedOutcome(
        summaries=summaries,
        forwards=getattr(balancer, "forwards", 0),
        placements=placements,
        per_worker_records=per_worker,
        telemetry=telemetry,
        seam_log=seam_log,
    )
