"""Merging per-shard telemetry into one ``repro inspect``-readable run.

Each shard ships picklable telemetry parts (records, retained spans,
phase breakdowns, registry pieces, gauge timeseries); the coordinator
adds its own LB spans and the balancer-visible load signal.  The merge
reassembles exactly what a single-process :class:`~repro.telemetry.runs.
Telemetry` would hold — same sort orders, same worker-order float
accumulation — so the exported run directory is interchangeable with a
serial run's (invocation ids aside: sharded runs number arrivals 0..N-1
plus one, serial runs continue the process-global counter; all *relative*
ids match).
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Optional, Union

from ..metrics.registry import MetricsRegistry

__all__ = ["MergedTelemetry"]

# Matches telemetry.decomposition's canonical breakdown ordering.
_BREAKDOWN_KEY = lambda b: (b.invocation_id is None, b.invocation_id, b.tag)  # noqa: E731


class MergedTelemetry:
    """Telemetry views over merged shard payloads.

    Mirrors the :class:`~repro.telemetry.runs.Telemetry` surface the
    experiments and tests consume — ``records()``, ``spans()``,
    ``breakdowns()``, ``merged_metrics()``, ``summary()``, ``export()`` —
    without an environment or live workers behind it.
    """

    def __init__(self, config, worker_names, shard_payloads, lb_spans, lb_loads):
        self.config = config
        self.worker_names = list(worker_names)
        self._records = [r for p in shard_payloads for r in p["records"]]
        self._records.sort(key=lambda r: (r.arrival, r.invocation_id))
        self._spans = [s for p in shard_payloads for s in p["spans"]]
        self._spans.extend(lb_spans)
        self._spans.sort(key=lambda s: (s.start, s.end, s.name))
        self._breakdowns = [b for p in shard_payloads for b in p["breakdowns"]]
        self._breakdowns.sort(key=_BREAKDOWN_KEY)
        # (name, counters, gauges, histograms) per worker, cluster order —
        # shards hold contiguous worker ranges, so shard order is worker
        # order and counter/histogram accumulation order matches serial.
        self._metric_parts = [part for p in shard_payloads for part in p["metrics"]]
        self.series = {}
        for p in shard_payloads:
            self.series.update(p["series"])
        self.lb_loads = lb_loads
        # Shards tick the same simulated grid over the same horizon, so
        # every shard saw the same number of sampler rounds.
        self.samples = max((p["samples"] for p in shard_payloads), default=0)

    # -- views (same shapes as Telemetry's) --------------------------------
    def records(self) -> list:
        return list(self._records)

    def spans(self) -> list:
        return list(self._spans)

    def breakdowns(self) -> list:
        return list(self._breakdowns)

    def merged_metrics(self) -> MetricsRegistry:
        """Counters summed, histograms merged, gauges worker-prefixed —
        the same worker-order accumulation as Telemetry.merged_metrics."""
        merged = MetricsRegistry()
        for name, counters, gauges, histograms in self._metric_parts:
            for key, v in counters.items():
                merged.incr(key, v)
            for key, v in gauges.items():
                merged.set_gauge(f"{name}.{key}", v)
            for key, hist in histograms.items():
                target = merged.histograms.get(key)
                if target is None:
                    merged.histograms[key] = copy.deepcopy(hist)
                else:
                    target.merge(hist)
        return merged

    # -- export ------------------------------------------------------------
    def summary(self) -> dict:
        from ..telemetry.runs import build_summary

        return build_summary(
            self.config,
            self.worker_names,
            self.samples,
            self._records,
            self.merged_metrics(),
            self._breakdowns,
        )

    def export(self, run_dir: Union[str, Path]) -> dict[str, Path]:
        from ..telemetry.runs import write_run_dir

        series = dict(self.series)
        if self.lb_loads is not None and len(self.lb_loads):
            series["lb"] = self.lb_loads
        return write_run_dir(
            run_dir,
            series=series,
            spans=self._spans,
            records=self._records,
            registry=self.merged_metrics(),
            summary=self.summary(),
        )
