"""Merging per-shard telemetry into one ``repro inspect``-readable run.

Each shard streams its telemetry in bounded, pre-sorted chunks (records,
retained spans, phase breakdowns — see ``protocol.py``); the coordinator
adds its own LB spans and the balancer-visible load signal.  The merge
never concatenates-and-resorts: per-shard streams arrive sorted by the
canonical keys, so every view is a k-way ``heapq.merge`` — and because
``heapq.merge`` is stable (earlier stream wins ties) over stably-sorted
inputs, the result is element-for-element identical to the stable sort of
the concatenation a single-process :class:`~repro.telemetry.runs.
Telemetry` performs.  Same sort orders, same worker-order float
accumulation — the exported run directory is interchangeable with a
serial run's (invocation ids aside: sharded runs number arrivals 0..N-1
plus one, serial runs continue the process-global counter; all *relative*
ids match).

With a ``spool_dir``, :class:`ShardTelemetryParts` appends each incoming
chunk to an on-disk pickle spool instead of RAM, and the merge re-reads
the spools as lazy streams — a full-trace replay's records and spans
never live in coordinator memory all at once.  ``summary()`` is the one
documented exception: it materializes the merged record and breakdown
lists transiently (outcome tallies and record↔breakdown matching need
random access), then drops them.
"""

from __future__ import annotations

import copy
import heapq
import os
import pickle
from pathlib import Path
from typing import Iterator, Optional, Union

from ..metrics.registry import MetricsRegistry

__all__ = ["MergedTelemetry", "ShardTelemetryParts"]

# Matches telemetry.decomposition's canonical breakdown ordering.
_BREAKDOWN_KEY = lambda b: (b.invocation_id is None, b.invocation_id, b.tag)  # noqa: E731
_RECORD_KEY = lambda r: (r.arrival, r.invocation_id)  # noqa: E731
_SPAN_KEY = lambda s: (s.start, s.end, s.name)  # noqa: E731
_TRACE_KEY = lambda e: (e.trace_id, e.seq)  # noqa: E731

_STREAM_KINDS = ("records", "spans", "breakdowns", "traces")


class ShardTelemetryParts:
    """One shard's streamed telemetry: chunk sink while the run drains,
    re-iterable streams afterwards.

    The coordinator appends ``("part", kind, chunk)`` payloads as they
    arrive; with ``spool_dir`` set each chunk is pickled straight to a
    per-kind spool file (constant coordinator memory), otherwise chunks
    stay in RAM.  Either way :meth:`stream` yields the items back in
    arrival order — which the shard guarantees is merge-key order.
    """

    def __init__(self, shard_index: int, spool_dir: Optional[Union[str, Path]] = None):
        self.shard_index = int(shard_index)
        self.meta: Optional[dict] = None
        self._spool_dir = None if spool_dir is None else Path(spool_dir)
        self._chunks: dict[str, list] = {kind: [] for kind in _STREAM_KINDS}
        self._files: dict[str, object] = {}
        if self._spool_dir is not None:
            self._spool_dir.mkdir(parents=True, exist_ok=True)

    def _spool_path(self, kind: str) -> Path:
        return self._spool_dir / f"shard{self.shard_index}-{kind}.pkl"

    def append(self, kind: str, chunk: list) -> None:
        if kind not in self._chunks:
            raise ValueError(f"unknown telemetry stream {kind!r}")
        if self._spool_dir is None:
            self._chunks[kind].append(chunk)
            return
        fh = self._files.get(kind)
        if fh is None:
            fh = self._files[kind] = open(self._spool_path(kind), "wb")
        pickle.dump(chunk, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def set_meta(self, meta: Optional[dict]) -> None:
        """Terminal payload arrived: stop accepting chunks, keep the small
        leftovers (registry parts, gauge series, sample count)."""
        self.meta = meta
        for fh in self._files.values():
            fh.close()
        self._files = {}

    def stream(self, kind: str) -> Iterator:
        if kind not in self._chunks:
            raise ValueError(f"unknown telemetry stream {kind!r}")
        if self._spool_dir is None:
            for chunk in self._chunks[kind]:
                yield from chunk
            return
        path = self._spool_path(kind)
        if not path.exists():
            return
        with open(path, "rb") as fh:
            while True:
                try:
                    chunk = pickle.load(fh)
                except EOFError:
                    return
                yield from chunk

    def cleanup(self) -> None:
        """Drop spool files (no-op for in-RAM parts)."""
        for fh in self._files.values():
            fh.close()
        self._files = {}
        if self._spool_dir is None:
            return
        for kind in _STREAM_KINDS:
            try:
                os.unlink(self._spool_path(kind))
            except FileNotFoundError:
                pass


class MergedTelemetry:
    """Telemetry views over merged shard streams.

    Mirrors the :class:`~repro.telemetry.runs.Telemetry` surface the
    experiments and tests consume — ``records()``, ``spans()``,
    ``breakdowns()``, ``merged_metrics()``, ``summary()``, ``export()`` —
    without an environment or live workers behind it, plus lazy
    ``iter_*`` variants that never materialize the merged sequence.
    """

    def __init__(self, config, worker_names, shard_parts, lb_spans, lb_loads,
                 lb_traces=None, flight=None, seam_stats=None, shards=None,
                 dispatch_info=None):
        self.config = config
        # Same dict the serial Telemetry captures from the cluster, so
        # serial and sharded summary.json stay byte-identical.
        self.dispatch_info = dispatch_info
        self.worker_names = list(worker_names)
        self._parts: list[ShardTelemetryParts] = list(shard_parts or [])
        # The LB emits pick/rpc spans in arrival order, which is *not*
        # start-sorted when arrivals share a timestamp (a pick span (t, t)
        # sorts before the previous arrival's rpc span (t, t+latency)); a
        # stable sort here keeps the overall merge equal to the serial
        # path's stable sort of the full concatenation.
        self._lb_spans = sorted(lb_spans, key=_SPAN_KEY)
        self.lb_loads = lb_loads
        self._lb_traces = (
            None if lb_traces is None else sorted(lb_traces, key=_TRACE_KEY)
        )
        self.flight = flight
        self.seam_stats = seam_stats
        self.shards = len(self._parts) if shards is None else int(shards)
        metas = [p.meta or {} for p in self._parts]
        # (name, counters, gauges, histograms) per worker, cluster order —
        # shards hold contiguous worker ranges, so shard order is worker
        # order and counter/histogram accumulation order matches serial.
        self._metric_parts = [part for m in metas for part in m.get("metrics", ())]
        self.series = {}
        for m in metas:
            self.series.update(m.get("series", {}))
        # Shards tick the same simulated grid over the same horizon, so
        # every shard saw the same number of sampler rounds.
        self.samples = max((m.get("samples", 0) for m in metas), default=0)
        # Per-shard health collectors, merged in shard order.  Every
        # accumulator inside is an integer count or integer-merged sketch
        # bucket, so the merge is order-independent and the result is the
        # collector a serial run over the same arrivals builds.
        self.health = None
        health_parts = [
            m["health"] for m in metas if m.get("health") is not None
        ]
        for part in health_parts:
            if self.health is None:
                self.health = part
            else:
                self.health.merge(part)

    # -- streams (merge-key order, never materialized) ----------------------
    def iter_records(self) -> Iterator:
        return heapq.merge(
            *(p.stream("records") for p in self._parts), key=_RECORD_KEY
        )

    def iter_spans(self) -> Iterator:
        return heapq.merge(
            *(p.stream("spans") for p in self._parts),
            iter(self._lb_spans),
            key=_SPAN_KEY,
        )

    def iter_breakdowns(self) -> Iterator:
        return heapq.merge(
            *(p.stream("breakdowns") for p in self._parts), key=_BREAKDOWN_KEY
        )

    def iter_traces(self) -> Iterator:
        """Shard trace streams + the coordinator's LB events, merged in
        canonical ``(trace_id, seq)`` order (LB seqs 0/1 lead each tree)."""
        streams = [p.stream("traces") for p in self._parts]
        if self._lb_traces is not None:
            streams.append(iter(self._lb_traces))
        return heapq.merge(*streams, key=_TRACE_KEY)

    # -- views (same shapes as Telemetry's) --------------------------------
    def records(self) -> list:
        return list(self.iter_records())

    def spans(self) -> list:
        return list(self.iter_spans())

    def breakdowns(self) -> list:
        return list(self.iter_breakdowns())

    def traces(self) -> list:
        return list(self.iter_traces())

    def merged_metrics(self) -> MetricsRegistry:
        """Counters summed, histograms merged, gauges worker-prefixed —
        the same worker-order accumulation as Telemetry.merged_metrics."""
        merged = MetricsRegistry()
        for name, counters, gauges, histograms in self._metric_parts:
            for key, v in counters.items():
                merged.incr(key, v)
            for key, v in gauges.items():
                merged.set_gauge(f"{name}.{key}", v)
            for key, hist in histograms.items():
                target = merged.histograms.get(key)
                if target is None:
                    merged.histograms[key] = copy.deepcopy(hist)
                else:
                    target.merge(hist)
        return merged

    # -- export ------------------------------------------------------------
    def summary(self) -> dict:
        from ..telemetry.runs import build_summary

        return build_summary(
            self.config,
            self.worker_names,
            self.samples,
            list(self.iter_records()),
            self.merged_metrics(),
            list(self.iter_breakdowns()),
            dispatch=self.dispatch_info,
        )

    def export(self, run_dir: Union[str, Path]) -> dict[str, Path]:
        from ..telemetry.runs import build_manifest, write_run_dir

        series = dict(self.series)
        if self.lb_loads is not None and len(self.lb_loads):
            series["lb"] = self.lb_loads
        trace_on = getattr(self.config, "trace", False)
        flight_payload = None
        if self.flight is not None:
            flight_payload = dict(self.flight)
            if self.seam_stats is not None:
                flight_payload["seam_stats"] = dict(self.seam_stats)
        health = slo_rows = None
        if self.health is not None:
            from ..health.slo import evaluate_health

            report = evaluate_health(
                self.health, series=series,
                config=getattr(self.config, "health", None),
            )
            health, slo_rows = report.health, report.rows
        # summary() first (its own transient passes), then stream the
        # record/span files straight off the merged iterators.
        summary = self.summary()
        return write_run_dir(
            run_dir,
            series=series,
            spans=self.iter_spans(),
            records=self.iter_records(),
            registry=self.merged_metrics(),
            summary=summary,
            traces=self.iter_traces() if trace_on else None,
            flight=flight_payload,
            health=health,
            slo_rows=slo_rows,
            manifest=build_manifest(
                self.config, self.worker_names, shards=self.shards
            ),
        )

    def cleanup(self) -> None:
        """Release any on-disk spools backing the merged streams."""
        for p in self._parts:
            p.cleanup()
