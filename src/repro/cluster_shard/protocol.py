"""The LB-seam protocol between the shard coordinator and shard processes.

A sharded cluster run partitions the workers into N shard processes, each
simulating its own :class:`~repro.sim.core.Environment`.  Workers never
interact directly — every cross-worker effect crosses the load-balancer
seam, and the LB→worker dispatch RPC has latency ``rpc_latency`` — so the
seam latency is the conservative **lookahead**: a placement decided at
simulated time ``t`` cannot affect any worker before ``t + rpc_latency``,
and a shard may simulate up to the next seam event before hearing from
the coordinator again.

The seam is **epoch batched**: the coordinator precomputes the arrivals
at which the balancer reads worker loads (:func:`sync_indices`), walks
the plan one *epoch* (the arrivals between two consecutive sync points)
at a time, and sends each shard at most one compact columnar message per
epoch instead of one entry per invocation.  Full walkthrough in
``docs/SHARDING.md``.

Seam message schema (picklable tuples; times non-decreasing within and
across messages):

coordinator → shard:

``("E", ks, ts, codes, locs, sync)``
    One epoch chunk.  ``ks``/``ts``/``codes``/``locs`` are parallel numpy
    arrays over this shard's dispatches in the chunk: plan arrival index
    (``int64``), arrival timestamp (``float64``), fqdn id into the
    :class:`ShardSpec` vocabulary (``int32``), and shard-local worker
    index (``int32``).  The shard walks them in order, advancing to each
    ``t`` and starting the forward process that delivers to the worker at
    ``t + rpc_latency`` with ``invocation_id = k + 1``.  ``sync`` is
    ``None`` or ``(k, t)``: after the dispatches, advance to ``t``,
    report worker loads for sync arrival ``k``, and block until the next
    message.  Pipelining: the sync request for epoch ``e+1``'s boundary
    rides in epoch ``e``'s message, so shards compute the loads while the
    coordinator is still accounting for epoch ``e``.
``("F",)``
    No more arrivals; the shard runs out its horizon and streams results.

shard → coordinator:

``("loads", k, {worker: load})``
    Queue-plus-running load of every worker in this shard, observed at
    the sync arrival's timestamp — the exact value a single-process
    balancer would read live.
``("part", kind, chunk)``
    One bounded chunk of a terminal result stream (``kind`` in
    ``{"summaries", "seam", "records", "spans", "breakdowns",
    "traces"}`` — the last only when ``TelemetryConfig(trace=True)``
    opted the run into causal tracing); telemetry kinds arrive pre-sorted
    by the merge key so the coordinator can k-way merge without
    re-sorting.
``("result", payload)``
    Terminal message after all parts: per-worker record counts plus the
    small telemetry leftovers (metric registries, gauge series, sample
    count).
``("error", traceback_text)``
    The shard died; the coordinator re-raises with the shard index.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..dispatch.registry import PULL_POLICIES
from ..loadbalancer.policies import snap_to_grid

__all__ = [
    "SHARDS_ENV_VAR",
    "LOAD_POLICIES",
    "EPOCH_CHUNK",
    "RESULT_CHUNK",
    "ShardingUnavailable",
    "ShardSpec",
    "resolve_shards",
    "partition_workers",
    "sync_indices",
    "plan_epochs",
]

# Environment-variable fallback for the --shards CLI flag.
SHARDS_ENV_VAR = "REPRO_SHARDS"

# Balancer policies whose pick() reads worker loads (everything except
# round robin); only these ever need load synchronization at the seam.
LOAD_POLICIES = frozenset({"ch_bl", "chbl", "least_loaded"})

# Arrivals per seam message when an epoch (or a no-sync stream) is larger
# than this: bounds the coordinator's working set and each pickle's size
# while keeping the one-message-per-epoch property for every epoch that
# fits (status-interval epochs are orders of magnitude smaller).
EPOCH_CHUNK = 16384

# Items per ("part", kind, chunk) result message: shards stream their
# terminal payloads in bounded pieces instead of one giant pickle.
RESULT_CHUNK = 4096


class ShardingUnavailable(RuntimeError):
    """Raised when shard processes cannot be started (sandboxed fork,
    daemonic parent, ...); callers fall back to the single-process path."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard process needs, shipped once at spawn."""

    index: int
    worker_configs: tuple          # WorkerConfig per worker, cluster order
    registrations: tuple           # FunctionRegistration, broadcast order
    rpc_latency: float
    horizon: float                 # absolute sim time to run until
    fqdn_vocab: tuple = ()         # fqdn strings, indexed by dispatch codes
    telemetry: Optional[object] = None   # TelemetryConfig or None
    collect_seam: bool = False     # record (k, delivery time) per dispatch


def resolve_shards(shards: Optional[int] = None) -> int:
    """Resolve the shard count: explicit arg > ``REPRO_SHARDS`` env > 1.

    ``0`` or a negative value (either source) means "all cores".
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{SHARDS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    shards = int(shards)
    if shards <= 0:
        return max(os.cpu_count() or 1, 1)
    return shards


def partition_workers(num_workers: int, shards: int) -> list[range]:
    """Contiguous worker-index ranges, one per shard, sizes within one.

    Never more shards than workers; a worker's shard assignment is a pure
    function of ``(num_workers, shards)``, identical in the coordinator
    and in every equivalence test.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    shards = max(1, min(int(shards), num_workers))
    bounds = [(s * num_workers) // shards for s in range(shards + 1)]
    return [range(bounds[s], bounds[s + 1]) for s in range(shards)]


def sync_indices(
    timestamps: Sequence[float],
    lb_policy: str,
    status_interval: Optional[float],
) -> frozenset:
    """Arrival indices at which the balancer reads worker loads.

    Precomputable from the plan alone, so the coordinator and every shard
    agree without negotiation: a live status board (``interval=None``)
    reads loads at every pick; a snapshot board only when the arrival
    rolls the board into a new interval epoch (mirroring
    :meth:`repro.loadbalancer.policies.StatusBoard.load`, including its
    ``snap_to_grid`` epoch floor — the two share the helper, bit for
    bit); round robin never reads loads, so those runs stream dispatches
    with no synchronization at all.

    The walk is epoch-jumping rather than per-arrival: each refresh
    binary-searches for the next arrival past ``snapped + interval`` and
    then fixes the boundary up with the *exact* ``t - snapped >=
    interval`` predicate the status board evaluates, so the result is
    identical to a per-arrival scan at a cost of
    ``O(epochs · log(arrivals))``.  Empty plans and duplicate timestamps
    inside one epoch are handled (duplicates never re-sync: their delta
    to the epoch floor is unchanged).
    """
    key = lb_policy.lower()
    if key in PULL_POLICIES:
        # Pull dispatch claims from one shared logical queue: every claim
        # is a cross-shard interaction, so the conservative-epoch seam
        # (which only carries dispatch and load-read traffic) cannot
        # replay it.  Refuse loudly rather than stream unsynchronized —
        # callers catch this and fall back to the single-process engine.
        raise ShardingUnavailable(
            f"pull dispatch policy {lb_policy!r} claims from a shared "
            "logical queue; the epoch seam carries no claim traffic, so "
            "pull runs are serial-only"
        )
    if key not in LOAD_POLICIES:
        return frozenset()
    ts = np.asarray(timestamps, dtype=np.float64)
    n = int(ts.size)
    if n == 0:
        return frozenset()
    if status_interval is None:
        return frozenset(range(n))
    interval = float(status_interval)
    out = []
    i = 0
    while i < n:
        out.append(i)
        snapped = snap_to_grid(float(ts[i]), interval)
        # Candidate boundary via binary search, then an exact-predicate
        # fixup: ``t >= snapped + interval`` and ``t - snapped >=
        # interval`` can disagree by one ulp, and the board evaluates the
        # latter.
        j = int(np.searchsorted(ts, snapped + interval, side="left"))
        if j <= i:
            j = i + 1
        while j > i + 1 and float(ts[j - 1]) - snapped >= interval:
            j -= 1
        while j < n and float(ts[j]) - snapped < interval:
            j += 1
        i = j
    return frozenset(out)


def plan_epochs(
    num_arrivals: int, syncs: Sequence[int]
) -> list[tuple[Optional[int], int, int]]:
    """Split ``range(num_arrivals)`` into seam epochs.

    Returns ``(sync_k, start, end)`` segments covering the arrival range:
    ``sync_k`` is the sync arrival whose loads must be in hand before the
    segment's picks (always the segment's own ``start``), or ``None`` for
    a segment needing no loads (a no-load policy's whole plan, or the
    prefix before the first sync).  Segments are contiguous, half-open,
    and in order; an empty plan yields no segments.
    """
    if num_arrivals < 0:
        raise ValueError("num_arrivals must be >= 0")
    if num_arrivals == 0:
        return []
    ks = sorted(syncs)
    if ks and (ks[0] < 0 or ks[-1] >= num_arrivals):
        raise ValueError("sync index out of plan range")
    segments: list[tuple[Optional[int], int, int]] = []
    if not ks:
        return [(None, 0, num_arrivals)]
    if ks[0] > 0:
        segments.append((None, 0, ks[0]))
    bounds = ks + [num_arrivals]
    for e in range(len(ks)):
        segments.append((ks[e], bounds[e], bounds[e + 1]))
    return segments
