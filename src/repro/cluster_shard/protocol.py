"""The LB-seam protocol between the shard coordinator and shard processes.

A sharded cluster run partitions the workers into N shard processes, each
simulating its own :class:`~repro.sim.core.Environment`.  Workers never
interact directly — every cross-worker effect crosses the load-balancer
seam, and the LB→worker dispatch RPC has latency ``rpc_latency`` — so the
seam latency is the conservative **lookahead**: a placement decided at
simulated time ``t`` cannot affect any worker before ``t + rpc_latency``,
and a shard may simulate up to the next seam event before hearing from
the coordinator again.

Seam message schema (plain tuples, picklable; full walkthrough in
``docs/SHARDING.md``):

coordinator → shard, sent as batches (lists of entries, one ``recv`` per
batch, times non-decreasing within and across batches):

``("dispatch", k, t, fqdn, worker, invocation_id)``
    Arrival ``k`` of the plan, at time ``t``, was placed on ``worker``
    (one of this shard's).  The shard advances to ``t`` and starts the
    forward process that delivers to the worker at ``t + rpc_latency``.
``("sync", k, t)``
    Arrival ``k`` is one where the balancer reads worker loads (see
    :func:`sync_indices`).  The shard advances to ``t``, reports its
    workers' loads, and blocks until the next batch.
``("finish",)``
    No more arrivals; the shard runs out its horizon and reports results.

shard → coordinator:

``("loads", k, {worker: load})``
    Queue-plus-running load of every worker in this shard, observed at
    the sync arrival's timestamp — the exact value a single-process
    balancer would read live.
``("result", payload)``
    Terminal message: invocation summaries, per-worker record counts,
    the optional telemetry payload, and the optional seam log.
``("error", traceback_text)``
    The shard died; the coordinator re-raises.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "SHARDS_ENV_VAR",
    "LOAD_POLICIES",
    "ShardingUnavailable",
    "ShardSpec",
    "resolve_shards",
    "partition_workers",
    "sync_indices",
]

# Environment-variable fallback for the --shards CLI flag.
SHARDS_ENV_VAR = "REPRO_SHARDS"

# Balancer policies whose pick() reads worker loads (everything except
# round robin); only these ever need load synchronization at the seam.
LOAD_POLICIES = frozenset({"ch_bl", "chbl", "least_loaded"})


class ShardingUnavailable(RuntimeError):
    """Raised when shard processes cannot be started (sandboxed fork,
    daemonic parent, ...); callers fall back to the single-process path."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard process needs, shipped once at spawn."""

    index: int
    worker_configs: tuple          # WorkerConfig per worker, cluster order
    registrations: tuple           # FunctionRegistration, broadcast order
    rpc_latency: float
    horizon: float                 # absolute sim time to run until
    telemetry: Optional[object] = None   # TelemetryConfig or None
    collect_seam: bool = False     # record (k, delivery time) per dispatch


def resolve_shards(shards: Optional[int] = None) -> int:
    """Resolve the shard count: explicit arg > ``REPRO_SHARDS`` env > 1.

    ``0`` or a negative value (either source) means "all cores".
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{SHARDS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    shards = int(shards)
    if shards <= 0:
        return max(os.cpu_count() or 1, 1)
    return shards


def partition_workers(num_workers: int, shards: int) -> list[range]:
    """Contiguous worker-index ranges, one per shard, sizes within one.

    Never more shards than workers; a worker's shard assignment is a pure
    function of ``(num_workers, shards)``, identical in the coordinator
    and in every equivalence test.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    shards = max(1, min(int(shards), num_workers))
    bounds = [(s * num_workers) // shards for s in range(shards + 1)]
    return [range(bounds[s], bounds[s + 1]) for s in range(shards)]


def sync_indices(
    timestamps: Sequence[float],
    lb_policy: str,
    status_interval: Optional[float],
) -> frozenset:
    """Arrival indices at which the balancer reads worker loads.

    Precomputable from the plan alone, so the coordinator and every shard
    agree without negotiation: a live status board (``interval=None``)
    reads loads at every pick; a snapshot board only when the arrival
    rolls the board into a new interval epoch (mirroring
    :meth:`repro.loadbalancer.policies.StatusBoard.load`); round robin
    never reads loads, so those runs stream dispatches with no
    synchronization at all.
    """
    if lb_policy.lower() not in LOAD_POLICIES:
        return frozenset()
    if status_interval is None:
        return frozenset(range(len(timestamps)))
    out = []
    snapped: Optional[float] = None
    for i, t in enumerate(timestamps):
        t = float(t)
        if snapped is None or t - snapped >= status_interval:
            out.append(i)
            snapped = math.floor(t / status_interval) * status_interval
    return frozenset(out)
