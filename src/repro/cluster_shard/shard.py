"""One shard process: a private DES environment running a worker subset.

The shard's event pattern is a *mirror* of the single-process replay
restricted to its workers: one injector process walks the seam's epoch
messages in time order, yielding exactly the timeouts the single-process
open-loop injector would have yielded at this shard's relevant arrivals,
and starting the same ``lb-forward`` processes in the same
event-processing slots.  Because workers share nothing and the DES kernel
breaks ties by ``(time, priority, seq)``, preserving the *relative*
scheduling order of the shard's own events is sufficient for bit-identical
records — the determinism argument is spelled out in ``docs/SHARDING.md``.

Epoch messages arrive columnar (parallel arrays of arrival index,
timestamp, fqdn code, local worker index — schema in ``protocol.py``);
the injector decodes one message at a time, so the shard's working set is
one epoch chunk regardless of plan length.  A sync request rides at the
end of the message carrying the *previous* epoch's dispatches, so the
load report for epoch ``e+1``'s boundary is computed while the
coordinator is still accounting epoch ``e``.

Blocking ``conn.recv()`` happens *inside* the injector generator, so the
environment freezes at the current simulated time whenever the shard
waits on the coordinator — no wall-clock/sim-time interleaving hazards.

Results stream back in bounded ``("part", kind, chunk)`` messages
(telemetry kinds pre-sorted by their merge keys, so the coordinator can
k-way merge shard streams without re-sorting), closed by one light
``("result", ...)`` payload.
"""

from __future__ import annotations

import traceback
from typing import Generator

from ..core.worker import Worker
from ..sim.core import Environment
from .protocol import RESULT_CHUNK, ShardSpec

__all__ = ["shard_main"]


def _forward(env, latency, worker, fqdn, invocation_id, done, seam, k):
    """The LB→worker RPC hop, mirroring ``Cluster.async_invoke``'s
    forward process (the pick-side spans live in the coordinator)."""
    yield env.timeout(latency)
    if seam is not None:
        seam.append((k, env.now))
    inner = worker.async_invoke(fqdn, invocation_id=invocation_id)
    inv = yield inner
    done.succeed(inv)


def _stream_parts(conn, kind: str, items: list) -> None:
    """Ship ``items`` as bounded ``("part", kind, chunk)`` messages."""
    for i in range(0, len(items), RESULT_CHUNK):
        conn.send(("part", kind, items[i:i + RESULT_CHUNK]))


def _run_shard(conn, spec: ShardSpec) -> None:
    env = Environment()
    workers = {}
    for cfg in spec.worker_configs:
        workers[cfg.name] = Worker(env, cfg)
    # Dispatch columns address workers by shard-local index and functions
    # by vocabulary code; decode through these, never through dict walks.
    by_local = [workers[cfg.name] for cfg in spec.worker_configs]
    vocab = list(spec.fqdn_vocab)

    telemetry = None
    tracer = None
    if spec.telemetry is not None:
        # Deferred: the pipeline only loads when the run opted in.
        from ..telemetry import Telemetry

        telemetry = Telemetry(env, spec.telemetry)
        tracer = telemetry.tracer
        if tracer is not None:
            # The pick-side events come from the coordinator; this shard's
            # stage chains hang under the seam's forward hop, and every
            # event it collects carries the shard's index.
            tracer.root = "lb_rpc"
            tracer.shard = spec.index
        for w in workers.values():
            telemetry.attach_worker(w)
        telemetry.start()
    for w in workers.values():
        w.start()
    for reg in spec.registrations:
        for w in workers.values():
            w.register_sync(reg)

    pending: list = []                       # (k, done event)
    seam: list = [] if spec.collect_seam else None
    latency = spec.rpc_latency

    def loads() -> dict:
        # The balancer's load signal: queue length + running (chbl.py).
        return {name: len(w.queue) + w.load.running for name, w in workers.items()}

    def injector() -> Generator:
        timeout = env.timeout
        process = env.process
        event = env.event
        append = pending.append
        while True:
            msg = conn.recv()                # env frozen while we wait
            kind = msg[0]
            if kind == "F":
                return
            if kind != "E":  # pragma: no cover - defensive
                raise ValueError(f"unknown seam message {kind!r}")
            sync = msg[5]
            for k, t, code, loc in zip(
                msg[1].tolist(), msg[2].tolist(),
                msg[3].tolist(), msg[4].tolist(),
            ):
                delay = t - env.now
                if delay > 0:
                    yield timeout(delay)
                fqdn = vocab[code]
                done = event()
                process(
                    _forward(env, latency, by_local[loc], fqdn,
                             k + 1, done, seam, k),
                    name=f"lb-forward-{fqdn}",
                )
                append((k, done))
            if sync is not None:
                sync_k, sync_t = sync
                delay = sync_t - env.now
                if delay > 0:
                    yield timeout(delay)
                conn.send(("loads", sync_k, loads()))

    env.process(injector(), name="open-loop-injector")
    env.run(until=spec.horizon)
    for w in workers.values():
        w.stop()
    if telemetry is not None:
        telemetry.stop()

    summaries = []
    for k, done in pending:
        if done.triggered:
            inv = done.value
            summaries.append((
                k,
                bool(inv.dropped),
                inv.completed_at is not None,
                bool(inv.cold),
                inv.e2e_time,
                inv.overhead,
            ))
    _stream_parts(conn, "summaries", summaries)
    if seam is not None:
        _stream_parts(conn, "seam", seam)
    payload: dict = {
        "per_worker_records": {
            name: len(w.metrics.records) for name, w in workers.items()
        },
    }
    if telemetry is not None:
        from .merge import _BREAKDOWN_KEY

        # Streams go out pre-sorted by the coordinator's merge keys
        # (records and spans already are, by Telemetry's contract).
        _stream_parts(conn, "records", telemetry.records())
        spans_out = telemetry.spans()
        if tracer is not None:
            # Shard attribution rides the spans only when tracing asked
            # for it, so untraced sharded exports stay byte-identical to
            # serial ones.
            for s in spans_out:
                s.shard = spec.index
        _stream_parts(conn, "spans", spans_out)
        _stream_parts(
            conn, "breakdowns",
            sorted(telemetry.breakdowns(), key=_BREAKDOWN_KEY),
        )
        if tracer is not None:
            _stream_parts(conn, "traces", telemetry.trace_events())
        payload["telemetry"] = {
            # Per-worker registry parts, in cluster worker order (the
            # merged registry sums counters in this order, matching
            # Telemetry.merged_metrics on a single-process run).
            "metrics": [
                (w.name, dict(w.metrics.counters), dict(w.metrics.gauges),
                 dict(w.metrics.histograms))
                for w in workers.values()
            ],
            "series": dict(telemetry.series),
            "samples": telemetry.sampler.samples,
        }
        if telemetry.health is not None:
            # The whole collector ships: integer bucket counts, so the
            # coordinator's shard-order merge reproduces the serial
            # collector bit for bit.
            payload["telemetry"]["health"] = telemetry.health
    conn.send(("result", payload))


def shard_main(conn, spec: ShardSpec) -> None:
    """Process entry point: run the shard, stream the results (or the
    traceback — the coordinator re-raises it)."""
    try:
        _run_shard(conn, spec)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()
