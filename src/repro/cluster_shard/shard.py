"""One shard process: a private DES environment running a worker subset.

The shard's event pattern is a *mirror* of the single-process replay
restricted to its workers: one injector process walks the seam entries in
time order, yielding exactly the timeouts the single-process open-loop
injector would have yielded at this shard's relevant arrivals, and
starting the same ``lb-forward`` processes in the same event-processing
slots.  Because workers share nothing and the DES kernel breaks ties by
``(time, priority, seq)``, preserving the *relative* scheduling order of
the shard's own events is sufficient for bit-identical records — the
determinism argument is spelled out in ``docs/SHARDING.md``.

Blocking ``conn.recv()`` happens *inside* the injector generator, so the
environment freezes at the current simulated time whenever the shard
waits on the coordinator — no wall-clock/sim-time interleaving hazards.
"""

from __future__ import annotations

import traceback
from typing import Generator

from ..core.worker import Worker
from ..sim.core import Environment
from .protocol import ShardSpec

__all__ = ["shard_main"]


def _forward(env, latency, worker, fqdn, invocation_id, done, seam, k):
    """The LB→worker RPC hop, mirroring ``Cluster.async_invoke``'s
    forward process (the pick-side spans live in the coordinator)."""
    yield env.timeout(latency)
    if seam is not None:
        seam.append((k, env.now))
    inner = worker.async_invoke(fqdn, invocation_id=invocation_id)
    inv = yield inner
    done.succeed(inv)


def _run_shard(conn, spec: ShardSpec) -> dict:
    env = Environment()
    workers = {}
    for cfg in spec.worker_configs:
        workers[cfg.name] = Worker(env, cfg)

    telemetry = None
    if spec.telemetry is not None:
        # Deferred: the pipeline only loads when the run opted in.
        from ..telemetry import Telemetry

        telemetry = Telemetry(env, spec.telemetry)
        for w in workers.values():
            telemetry.attach_worker(w)
        telemetry.start()
    for w in workers.values():
        w.start()
    for reg in spec.registrations:
        for w in workers.values():
            w.register_sync(reg)

    pending: list = []                       # (k, done event)
    seam: list = [] if spec.collect_seam else None

    def loads() -> dict:
        # The balancer's load signal: queue length + running (chbl.py).
        return {name: len(w.queue) + w.load.running for name, w in workers.items()}

    def injector() -> Generator:
        batch: list = []
        while True:
            if not batch:
                batch = list(conn.recv())    # env frozen while we wait
            entry = batch.pop(0)
            kind = entry[0]
            if kind == "finish":
                return
            k, t = entry[1], entry[2]
            delay = t - env.now
            if delay > 0:
                yield env.timeout(delay)
            if kind == "sync":
                conn.send(("loads", k, loads()))
            elif kind == "dispatch":
                fqdn, target, invocation_id = entry[3], entry[4], entry[5]
                done = env.event()
                env.process(
                    _forward(env, spec.rpc_latency, workers[target], fqdn,
                             invocation_id, done, seam, k),
                    name=f"lb-forward-{fqdn}",
                )
                pending.append((k, done))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown seam entry {entry!r}")

    env.process(injector(), name="open-loop-injector")
    env.run(until=spec.horizon)
    for w in workers.values():
        w.stop()
    if telemetry is not None:
        telemetry.stop()

    summaries = []
    for k, done in pending:
        if done.triggered:
            inv = done.value
            summaries.append((
                k,
                bool(inv.dropped),
                inv.completed_at is not None,
                bool(inv.cold),
                inv.e2e_time,
                inv.overhead,
            ))
    payload: dict = {
        "summaries": summaries,
        "per_worker_records": {
            name: len(w.metrics.records) for name, w in workers.items()
        },
        "seam": seam,
    }
    if telemetry is not None:
        payload["telemetry"] = {
            "records": telemetry.records(),
            "spans": telemetry.spans(),
            "breakdowns": telemetry.breakdowns(),
            # Per-worker registry parts, in cluster worker order (the
            # merged registry sums counters in this order, matching
            # Telemetry.merged_metrics on a single-process run).
            "metrics": [
                (w.name, dict(w.metrics.counters), dict(w.metrics.gauges),
                 dict(w.metrics.histograms))
                for w in workers.values()
            ],
            "series": dict(telemetry.series),
            "samples": telemetry.sampler.samples,
        }
    return payload


def shard_main(conn, spec: ShardSpec) -> None:
    """Process entry point: run the shard, ship the result (or the
    traceback — the coordinator re-raises it)."""
    try:
        payload = _run_shard(conn, spec)
        conn.send(("result", payload))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()
