"""Container substrate: backends, agent, namespace pool, images."""

from .agent import Agent, HttpClientPool
from .backends import (
    ContainerdBackend,
    CrunBackend,
    DockerBackend,
    NullBackend,
    SimulatedBackend,
    make_backend,
)
from .base import BackendLatency, Container, ContainerBackend, ContainerState
from .image import ImageLayer, ImageManifest, ImageRegistry
from .latency import (
    AGENT_HTTP_LATENCY,
    CONTAINERD_LATENCY,
    CRUN_LATENCY,
    DOCKER_LATENCY,
    NAMESPACE_CREATE_LATENCY,
)
from .namespace_pool import NamespacePool

__all__ = [
    "Agent",
    "HttpClientPool",
    "ContainerdBackend",
    "CrunBackend",
    "DockerBackend",
    "NullBackend",
    "SimulatedBackend",
    "make_backend",
    "BackendLatency",
    "Container",
    "ContainerBackend",
    "ContainerState",
    "ImageLayer",
    "ImageManifest",
    "ImageRegistry",
    "AGENT_HTTP_LATENCY",
    "CONTAINERD_LATENCY",
    "CRUN_LATENCY",
    "DOCKER_LATENCY",
    "NAMESPACE_CREATE_LATENCY",
    "NamespacePool",
]
