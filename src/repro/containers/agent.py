"""In-container agent model (Section 3.2, "Function Lifecycle").

Each container runs a small Python HTTP server — the *agent* — with two
endpoints: ``GET /`` for status and ``POST /invoke`` to execute the
function.  The worker detects agent readiness with an inotify callback
(faster and more generic than Docker's API) and keeps one pooled HTTP
client per container.

Here the agent is a latency model: readiness takes ``agent_start`` after
the sandbox exists; an invoke round trip costs a request/response overhead
(the dominant share of warm-path control-plane latency, Table 2) plus the
function execution time.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..sim.core import Environment
from .latency import AGENT_HTTP_LATENCY

__all__ = ["Agent", "HttpClientPool"]


class Agent:
    """The agent inside one container."""

    __slots__ = ("env", "ready", "rng", "http_latency", "invocations")

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        http_latency: float = AGENT_HTTP_LATENCY,
    ):
        self.env = env
        self.ready = False
        self.rng = rng
        self.http_latency = float(http_latency)
        self.invocations = 0

    def start(self, agent_start_latency: float) -> Generator:
        """DES process: boot the HTTP server; readiness flips at the end."""
        yield self.env.timeout(agent_start_latency)
        self.ready = True

    def status(self) -> bool:
        """``GET /`` — instantaneous in the model (status is cached)."""
        return self.ready

    def invoke(self, exec_time: float, cold_handshake: bool = False) -> Generator:
        """``POST /invoke``: HTTP round trip around the function run.

        A cold container's first request pays connection establishment on
        top of the pooled-client cost.
        """
        if not self.ready:
            raise RuntimeError("agent not ready; call status() until ready")
        overhead = self.http_latency
        if cold_handshake:
            overhead += 3.0 * self.http_latency  # TCP+HTTP connection setup
        # Small exponential jitter keeps the tail realistic without
        # dominating: mean 10% of the base overhead.
        overhead += float(self.rng.exponential(0.1 * self.http_latency))
        yield self.env.timeout(overhead + exec_time)
        self.invocations += 1
        return {"status": "ok", "exec_time": exec_time}


class HttpClientPool:
    """Per-container cached HTTP clients (Section 3.2.1, "HTTP Clients").

    Creating a client for every invocation costs up to ~3 ms on the warm
    path; the pool makes repeat invocations pay only the pooled round
    trip.  The worker consults :meth:`connection_cost` when talking to a
    container's agent.
    """

    # Cost of building a fresh client + TCP/TLS setup (seconds).
    NEW_CLIENT_COST = 0.003

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._clients: set[str] = set()
        self.hits = 0
        self.misses = 0

    def connection_cost(self, container_id: str) -> float:
        """Extra latency for reaching this container's agent."""
        if self.enabled and container_id in self._clients:
            self.hits += 1
            return 0.0
        self.misses += 1
        if self.enabled:
            self._clients.add(container_id)
        return self.NEW_CLIENT_COST

    def forget(self, container_id: str) -> None:
        """Drop the cached client when its container is destroyed."""
        self._clients.discard(container_id)

    def __len__(self) -> int:
        return len(self._clients)
