"""Concrete container backends: containerd, Docker, and the null backend.

All three drive the same lifecycle (create → agent start → invoke* →
destroy); they differ only in their latency profiles — and the null
backend, used for in-situ simulation, replaces backend API calls with
internal no-ops, exactly as the paper describes ("API calls to containerd
are replaced with internal dummy function calls, and function invocations
are converted to sleep statements").
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..core.function import FunctionRegistration
from ..sim.core import Environment
from .agent import Agent
from .base import BackendLatency, Container, ContainerBackend, ContainerState
from .latency import (
    AGENT_HTTP_LATENCY,
    CONTAINERD_LATENCY,
    CRUN_LATENCY,
    DOCKER_LATENCY,
    NAMESPACE_CREATE_LATENCY,
)

__all__ = [
    "SimulatedBackend",
    "ContainerdBackend",
    "DockerBackend",
    "CrunBackend",
    "NullBackend",
    "make_backend",
]


class SimulatedBackend(ContainerBackend):
    """Shared implementation: a latency-modelled container runtime."""

    name = "simulated"

    def __init__(
        self,
        env: Environment,
        latency: BackendLatency,
        rng: Optional[np.random.Generator] = None,
        namespace_create_latency: float = NAMESPACE_CREATE_LATENCY,
        agent_http_latency: float = AGENT_HTTP_LATENCY,
    ):
        super().__init__(env)
        self.latency = latency
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.namespace_create_latency = float(namespace_create_latency)
        self.agent_http_latency = float(agent_http_latency)
        self._agents: dict[str, Agent] = {}

    # -- lifecycle ---------------------------------------------------------
    def create(
        self,
        registration: FunctionRegistration,
        namespace: Optional[str] = None,
    ) -> Generator:
        lat = self.latency
        container = Container(registration, self, self.env.now, namespace=namespace)
        # RPC to the (out-of-process) containerization daemon.
        yield self.env.timeout(lat.rpc_overhead)
        # Network namespace: free if pooled, ~100 ms if created inline.
        if namespace is None:
            yield self.env.timeout(self.namespace_create_latency)
        # Sandbox creation with an exponential contention tail.
        create_cost = lat.create_mean
        if lat.create_jitter > 0:
            create_cost += float(self.rng.exponential(lat.create_jitter))
        yield self.env.timeout(create_cost)
        container.state = ContainerState.UNHEALTHY
        # Agent boots inside the sandbox; readiness via inotify callback.
        agent = Agent(self.env, self.rng, http_latency=self.agent_http_latency)
        self._agents[container.id] = agent
        yield self.env.process(agent.start(lat.agent_start))
        container.state = ContainerState.AVAILABLE
        self.created += 1
        return container

    def agent_of(self, container: Container) -> Agent:
        agent = self._agents.get(container.id)
        if agent is None:
            raise KeyError(f"no agent for container {container.id}")
        return agent

    def invoke(self, container: Container, exec_time: float) -> Generator:
        if container.state not in (ContainerState.AVAILABLE, ContainerState.RUNNING):
            raise RuntimeError(
                f"cannot invoke container in state {container.state.value}"
            )
        agent = self.agent_of(container)
        container.state = ContainerState.RUNNING
        cold_handshake = container.invocations == 0
        try:
            result = yield self.env.process(
                agent.invoke(exec_time, cold_handshake=cold_handshake)
            )
        finally:
            container.state = ContainerState.AVAILABLE
        container.invocations += 1
        container.last_used = self.env.now
        return result

    def destroy(self, container: Container) -> Generator:
        if container.state == ContainerState.DESTROYED:
            return None
        yield self.env.timeout(self.latency.rpc_overhead + self.latency.destroy_mean)
        container.state = ContainerState.DESTROYED
        self._agents.pop(container.id, None)
        self.destroyed += 1
        return None

    def restore(
        self,
        registration: FunctionRegistration,
        restore_latency: float,
        namespace: Optional[str] = None,
    ) -> Generator:
        """Create a container from a snapshot: one restore cost replaces
        the create + agent-boot sequence (the agent comes back already
        running inside the restored sandbox)."""
        if restore_latency < 0:
            raise ValueError("restore_latency must be non-negative")
        container = Container(registration, self, self.env.now, namespace=namespace)
        yield self.env.timeout(self.latency.rpc_overhead + restore_latency)
        if namespace is None:
            yield self.env.timeout(self.namespace_create_latency)
        agent = Agent(self.env, self.rng, http_latency=self.agent_http_latency)
        agent.ready = True
        self._agents[container.id] = agent
        container.state = ContainerState.AVAILABLE
        self.created += 1
        return container


class ContainerdBackend(SimulatedBackend):
    """Default backend (the paper's choice): OCI via containerd RPC."""

    name = "containerd"

    def __init__(self, env: Environment, rng: Optional[np.random.Generator] = None, **kw):
        super().__init__(env, CONTAINERD_LATENCY, rng=rng, **kw)


class DockerBackend(SimulatedBackend):
    """Docker backend: feature-rich, slowest creates (~400 ms)."""

    name = "docker"

    def __init__(self, env: Environment, rng: Optional[np.random.Generator] = None, **kw):
        super().__init__(env, DOCKER_LATENCY, rng=rng, **kw)


class CrunBackend(SimulatedBackend):
    """crun backend: C library, fastest creates (~150 ms)."""

    name = "crun"

    def __init__(self, env: Environment, rng: Optional[np.random.Generator] = None, **kw):
        super().__init__(env, CRUN_LATENCY, rng=rng, **kw)


class NullBackend(ContainerBackend):
    """The in-situ simulation backend (Section 3.3, "Simulation Backend").

    No sandbox exists: creation and destruction are internal dummy calls
    (zero cost by default, configurable), and an invocation is a pure
    timeout for the function's anticipated execution time.  Every other
    control-plane path — queueing, keep-alive, eviction, metrics — runs
    unchanged, letting one worker "simulate" hundreds of cores.
    """

    name = "null"

    def __init__(
        self,
        env: Environment,
        create_latency: float = 0.0,
        destroy_latency: float = 0.0,
    ):
        super().__init__(env)
        if create_latency < 0 or destroy_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.create_latency = float(create_latency)
        self.destroy_latency = float(destroy_latency)

    def create(
        self,
        registration: FunctionRegistration,
        namespace: Optional[str] = None,
    ) -> Generator:
        container = Container(registration, self, self.env.now, namespace=namespace)
        if self.create_latency > 0:
            yield self.env.timeout(self.create_latency)
        container.state = ContainerState.AVAILABLE
        self.created += 1
        return container
        yield  # pragma: no cover - keeps this a generator when latency is 0

    def invoke(self, container: Container, exec_time: float) -> Generator:
        container.state = ContainerState.RUNNING
        yield self.env.timeout(exec_time)
        container.state = ContainerState.AVAILABLE
        container.invocations += 1
        container.last_used = self.env.now
        return {"status": "ok", "exec_time": exec_time}

    def destroy(self, container: Container) -> Generator:
        if self.destroy_latency > 0:
            yield self.env.timeout(self.destroy_latency)
        container.state = ContainerState.DESTROYED
        self.destroyed += 1
        return None
        yield  # pragma: no cover

    def restore(
        self,
        registration: FunctionRegistration,
        restore_latency: float,
        namespace: Optional[str] = None,
    ) -> Generator:
        """Snapshot restore in the null backend: a pure timeout."""
        if restore_latency < 0:
            raise ValueError("restore_latency must be non-negative")
        container = Container(registration, self, self.env.now, namespace=namespace)
        if restore_latency > 0:
            yield self.env.timeout(restore_latency)
        container.state = ContainerState.AVAILABLE
        self.created += 1
        return container
        yield  # pragma: no cover


def make_backend(name: str, env: Environment, **kwargs) -> ContainerBackend:
    """Factory by backend name."""
    table = {
        "containerd": ContainerdBackend,
        "docker": DockerBackend,
        "crun": CrunBackend,
        "null": NullBackend,
    }
    cls = table.get(name.lower())
    if cls is None:
        raise ValueError(f"unknown backend {name!r}; choose from {sorted(table)}")
    return cls(env, **kwargs)
