"""Container backend abstraction (Section 3.3, "Container Handling").

Ilúvatar keeps the backend API deliberately narrow so multiple runtimes
can sit below the control plane:

1. create a container/sandbox with resource limits and a disk image,
2. launch the agent task inside it,
3. destroy it.

This module defines that interface plus the container object the worker
manipulates.  Concrete backends (:mod:`containerd`, :mod:`docker`,
:mod:`null`) model their respective latency profiles; the *null* backend
is the paper's in-situ simulation device — function execution becomes a
DES timeout while every other code path stays identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Generator, Optional

from ..core.function import FunctionRegistration
from ..sim.core import Environment

__all__ = ["ContainerState", "Container", "ContainerBackend", "BackendLatency"]

_container_seq = itertools.count(1)


class ContainerState(str, Enum):
    CREATING = "creating"
    UNHEALTHY = "unhealthy"  # created, agent not ready yet
    AVAILABLE = "available"
    RUNNING = "running"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class BackendLatency:
    """Latency profile of a containerization library (seconds).

    Defaults follow the paper's measurements: crun ≈150 ms, containerd
    ≈300 ms, Docker ≈400 ms to launch a container; plus the RPC cost of
    talking to an out-of-process daemon, agent startup inside the
    container, and a destroy cost.
    """

    create_mean: float
    create_jitter: float       # exponential tail on create
    rpc_overhead: float        # per backend API call (daemon round trip)
    agent_start: float         # agent HTTP server boot inside the sandbox
    destroy_mean: float

    def __post_init__(self):
        for name in ("create_mean", "create_jitter", "rpc_overhead",
                     "agent_start", "destroy_mean"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class Container:
    """A sandbox instance managed by a backend."""

    __slots__ = (
        "id",
        "fqdn",
        "registration",
        "state",
        "created_at",
        "last_used",
        "invocations",
        "namespace",
        "backend",
    )

    def __init__(
        self,
        registration: FunctionRegistration,
        backend: "ContainerBackend",
        now: float,
        namespace: Optional[str] = None,
    ):
        self.id = f"ctr-{next(_container_seq):06d}"
        self.fqdn = registration.fqdn()
        self.registration = registration
        self.state = ContainerState.CREATING
        self.created_at = now
        self.last_used = now
        self.invocations = 0
        self.namespace = namespace
        self.backend = backend

    @property
    def memory_mb(self) -> float:
        return self.registration.memory_mb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.id} {self.fqdn} {self.state.value}>"


class ContainerBackend:
    """Abstract backend; operations are DES processes (`yield from` them)."""

    name = "abstract"

    def __init__(self, env: Environment):
        self.env = env
        self.created = 0
        self.destroyed = 0

    def create(
        self,
        registration: FunctionRegistration,
        namespace: Optional[str] = None,
    ) -> Generator:
        """DES process: create a sandbox + start the agent; returns Container.

        ``namespace`` is a pre-created network namespace (from the pool);
        when ``None`` the backend pays the namespace-creation latency
        itself (the ~100 ms global-lock cost the pool exists to avoid).
        """
        raise NotImplementedError

    def invoke(self, container: Container, exec_time: float) -> Generator:
        """DES process: run the function code inside the container.

        ``exec_time`` is the function-code duration the caller determined
        (warm or cold).  Returns the agent's response value.
        """
        raise NotImplementedError

    def destroy(self, container: Container) -> Generator:
        """DES process: tear the sandbox down."""
        raise NotImplementedError
