"""Container image registry and layer preparation (registration path).

Registering a function entails fetching its image from a repository and
preparing the copy-on-write layers relevant to the OS/architecture
(Section 3.2).  Registration is out-of-band — not on the invocation
critical path — but it is part of the lifecycle, so the model accounts
for layer download/unpack time and caches layers shared across images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

import numpy as np

from ..sim.core import Environment

__all__ = ["ImageLayer", "ImageManifest", "ImageRegistry"]


@dataclass(frozen=True)
class ImageLayer:
    """One copy-on-write layer."""

    digest: str
    size_mb: float
    os: str = "linux"
    arch: str = "amd64"

    def __post_init__(self):
        if self.size_mb < 0:
            raise ValueError("layer size must be non-negative")


@dataclass(frozen=True)
class ImageManifest:
    """A multi-layer image; layers may target different OS/arch combos."""

    reference: str
    layers: tuple[ImageLayer, ...]

    def relevant_layers(self, os: str = "linux", arch: str = "amd64") -> tuple[ImageLayer, ...]:
        """Select the layers for this platform (the paper's 'prepare' step)."""
        return tuple(l for l in self.layers if l.os == os and l.arch == arch)


@dataclass
class ImageRegistry:
    """Models DockerHub-like pulls with a local layer cache.

    Pull latency = per-layer fetch (bandwidth-bound) + unpack, skipping
    layers already cached locally.
    """

    env: Environment
    bandwidth_mb_per_s: float = 100.0
    unpack_s_per_mb: float = 0.002
    manifests: dict[str, ImageManifest] = field(default_factory=dict)
    _local_layers: set[str] = field(default_factory=set)
    pulls: int = 0
    cached_layer_hits: int = 0

    def push(self, manifest: ImageManifest) -> None:
        """Make an image available in the remote registry."""
        self.manifests[manifest.reference] = manifest

    def has_image(self, reference: str) -> bool:
        return reference in self.manifests

    def default_manifest(self, reference: str, size_mb: float = 120.0) -> ImageManifest:
        """Synthesize a plausible manifest: a shared base plus app layers."""
        base = ImageLayer(digest="sha256:base-python", size_mb=50.0)
        app = ImageLayer(digest=f"sha256:app-{reference}", size_mb=max(size_mb - 50.0, 1.0))
        manifest = ImageManifest(reference=reference, layers=(base, app))
        self.push(manifest)
        return manifest

    def pull(self, reference: str, os: str = "linux", arch: str = "amd64") -> Generator:
        """DES process: fetch + unpack the platform-relevant layers."""
        manifest = self.manifests.get(reference)
        if manifest is None:
            manifest = self.default_manifest(reference)
        self.pulls += 1
        total = 0.0
        for layer in manifest.relevant_layers(os, arch):
            if layer.digest in self._local_layers:
                self.cached_layer_hits += 1
                continue
            total += layer.size_mb / self.bandwidth_mb_per_s
            total += layer.size_mb * self.unpack_s_per_mb
            self._local_layers.add(layer.digest)
        if total > 0:
            yield self.env.timeout(total)
        return manifest
