"""Latency profiles for the supported container backends.

Constants follow the paper's reported numbers (Section 3.3): launching a
container costs ≈150 ms under crun, ≈300 ms under containerd and ≈400 ms
under Docker; containerd is driven over an RPC API that adds per-call
latency; and the network-namespace creation a cold start needs costs up to
≈100 ms due to a kernel-global lock (Section 3.2), which the namespace
pool hides.
"""

from __future__ import annotations

from .base import BackendLatency

__all__ = [
    "CONTAINERD_LATENCY",
    "DOCKER_LATENCY",
    "CRUN_LATENCY",
    "NAMESPACE_CREATE_LATENCY",
    "AGENT_HTTP_LATENCY",
]

# Network namespace creation when no pooled namespace is available (s).
NAMESPACE_CREATE_LATENCY = 0.100

# Warm-path HTTP round trip to the in-container agent (paper Table 2:
# call_container ≈ 1.364 ms beyond function execution, prepare ≈ 0.154 ms).
AGENT_HTTP_LATENCY = 0.00136

CONTAINERD_LATENCY = BackendLatency(
    create_mean=0.300,
    create_jitter=0.030,
    rpc_overhead=0.002,
    agent_start=0.080,
    destroy_mean=0.050,
)

DOCKER_LATENCY = BackendLatency(
    create_mean=0.400,
    create_jitter=0.040,
    rpc_overhead=0.004,
    agent_start=0.080,
    destroy_mean=0.080,
)

CRUN_LATENCY = BackendLatency(
    create_mean=0.150,
    create_jitter=0.015,
    rpc_overhead=0.0005,
    agent_start=0.080,
    destroy_mean=0.030,
)
