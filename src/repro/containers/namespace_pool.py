"""Pre-created network namespace pool (Section 3.2.1).

Creating a container's network namespace contends on a single kernel-global
lock and can add ~100 ms to a cold start.  Ilúvatar hides this by keeping a
pool of pre-created namespaces, assigned at container creation; isolation
is preserved because concurrently running containers never share one.

A background refiller process keeps the pool at its target size, creating
namespaces off the critical path.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from ..sim.core import Environment
from .latency import NAMESPACE_CREATE_LATENCY

__all__ = ["NamespacePool"]

_ns_seq = itertools.count(1)


class NamespacePool:
    """Pool of ready network namespaces.

    ``acquire()`` is synchronous and returns ``None`` when the pool is dry
    (the caller then pays the creation latency on the critical path —
    exactly the behaviour the pool exists to avoid, and the ablation
    benchmark measures).
    """

    def __init__(
        self,
        env: Environment,
        target_size: int = 32,
        create_latency: float = NAMESPACE_CREATE_LATENCY,
        enabled: bool = True,
        refill_interval: float = 0.010,
    ):
        if target_size < 0:
            raise ValueError(f"target_size must be non-negative, got {target_size}")
        if create_latency < 0:
            raise ValueError("create_latency must be non-negative")
        if refill_interval <= 0:
            raise ValueError("refill_interval must be positive")
        self.env = env
        self.target_size = int(target_size)
        self.create_latency = float(create_latency)
        self.enabled = enabled
        self.refill_interval = float(refill_interval)
        self._free: list[str] = []
        self.hits = 0
        self.misses = 0
        self._running = False
        # Pending idle wakeup: set while the refiller sleeps on a full
        # pool, succeeded by acquire() when the pool dips below target.
        self._wakeup = None
        if enabled and target_size > 0:
            # Pool starts full: worker startup pre-creates namespaces.
            self._free = [self._new_name() for _ in range(self.target_size)]

    @staticmethod
    def _new_name() -> str:
        return f"netns-{next(_ns_seq):06d}"

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> Optional[str]:
        """Take a ready namespace, or ``None`` if the pool is empty/disabled."""
        if not self.enabled or not self._free:
            self.misses += 1
            return None
        self.hits += 1
        namespace = self._free.pop()
        wakeup = self._wakeup
        if wakeup is not None and len(self._free) < self.target_size:
            self._wakeup = None
            wakeup.succeed()
        return namespace

    def release(self, namespace: str) -> None:
        """Return a namespace after its container is destroyed."""
        if self.enabled and len(self._free) < self.target_size:
            self._free.append(namespace)

    def miss_latency(self) -> float:
        """Critical-path cost when acquire() missed."""
        return self.create_latency

    def refiller(self) -> Generator:
        """Background process: top the pool back up off the critical path.

        Conceptually this polls the pool every ``refill_interval``.  To keep
        the event calendar free of idle churn (a full pool would otherwise
        cost 100 events/simulated-second), the idle phase is event-driven:
        the refiller sleeps until :meth:`acquire` dips the pool, then
        resumes on the exact polling-grid tick the literal polling loop
        would have used — the tick times are replayed with the same
        floating-point accumulation, so simulation results are bit-identical
        to the polling implementation.
        """
        self._running = True
        env = self.env
        while self._running:
            if self.enabled and len(self._free) < self.target_size:
                yield env.timeout(self.create_latency)
                if len(self._free) < self.target_size:
                    self._free.append(self._new_name())
            else:
                anchor = env.now
                self._wakeup = wakeup = env.event()
                yield wakeup
                self._wakeup = None
                if not self._running:
                    break
                # First polling tick strictly after the dip, accumulated
                # from the idle anchor exactly as the polling loop would.
                tick = anchor
                now = env.now
                while tick <= now:
                    tick += self.refill_interval
                yield env.timeout_at(tick)

    def stop(self) -> None:
        self._running = False
        wakeup = self._wakeup
        if wakeup is not None:
            self._wakeup = None
            wakeup.succeed()
