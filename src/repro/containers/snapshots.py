"""Container snapshot store (Section 3.2: cold starts may launch "from a
previous snapshot if available").

After a function's first full cold start, a snapshot of its initialized
sandbox can be captured; later cold starts restore from it, skipping most
of the container-creation and function-initialization work.  The model
follows the REAP/FaaSnap-style measurements the paper cites: restoring
costs a fixed base plus a memory-proportional load term, typically
several times cheaper than a full create + initialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.function import FunctionRegistration

__all__ = ["SnapshotPolicy", "Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class SnapshotPolicy:
    """Cost model for capture and restore."""

    restore_base: float = 0.050          # fixed restore latency (s)
    restore_s_per_gb: float = 0.150      # memory-proportional load
    capture_base: float = 0.100          # capture happens off critical path
    capture_s_per_gb: float = 0.300
    # Fraction of the function's code/data initialization that the
    # snapshot preserves (imports, model loads). 1.0 = fully initialized.
    init_coverage: float = 1.0

    def __post_init__(self):
        for name in ("restore_base", "restore_s_per_gb", "capture_base",
                     "capture_s_per_gb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.init_coverage <= 1.0:
            raise ValueError("init_coverage must be in [0, 1]")

    def restore_latency(self, memory_mb: float) -> float:
        return self.restore_base + self.restore_s_per_gb * memory_mb / 1024.0

    def capture_latency(self, memory_mb: float) -> float:
        return self.capture_base + self.capture_s_per_gb * memory_mb / 1024.0


@dataclass(frozen=True)
class Snapshot:
    """A captured, initialized sandbox image for one function version."""

    fqdn: str
    memory_mb: float
    captured_at: float


class SnapshotStore:
    """Per-worker snapshot registry.

    ``restore_plan(reg)`` answers the cold-start question: if a snapshot
    exists, return the (restore_latency, remaining_init) pair replacing
    the full create+init path; otherwise ``None``.
    """

    def __init__(self, policy: Optional[SnapshotPolicy] = None,
                 enabled: bool = True):
        self.policy = policy or SnapshotPolicy()
        self.enabled = enabled
        self._snapshots: dict[str, Snapshot] = {}
        self.captures = 0
        self.restores = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def has(self, fqdn: str) -> bool:
        return self.enabled and fqdn in self._snapshots

    def get(self, fqdn: str) -> Optional[Snapshot]:
        if not self.enabled:
            return None
        return self._snapshots.get(fqdn)

    def capture(self, registration: FunctionRegistration, now: float) -> float:
        """Record a snapshot; returns the (off-critical-path) capture cost."""
        if not self.enabled:
            return 0.0
        fqdn = registration.fqdn()
        if fqdn not in self._snapshots:
            self._snapshots[fqdn] = Snapshot(
                fqdn=fqdn, memory_mb=registration.memory_mb, captured_at=now
            )
            self.captures += 1
        return self.policy.capture_latency(registration.memory_mb)

    def restore_plan(
        self, registration: FunctionRegistration
    ) -> Optional[tuple[float, float]]:
        """(restore_latency, remaining_init_time) if a snapshot exists."""
        snapshot = self.get(registration.fqdn())
        if snapshot is None:
            return None
        self.restores += 1
        remaining_init = registration.init_time * (1.0 - self.policy.init_coverage)
        return (
            self.policy.restore_latency(registration.memory_mb),
            remaining_init,
        )

    def invalidate(self, fqdn: str) -> None:
        """Drop a snapshot (e.g. on function re-registration)."""
        self._snapshots.pop(fqdn, None)
