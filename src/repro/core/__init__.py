"""Worker-centric control plane core."""

from .characteristics import CharacteristicsMap, FunctionStats, MovingAverage
from .config import WorkerConfig, WorkerLatencyProfile, load_config
from .container_pool import ContainerPool, PoolEntry
from .function import FunctionRegistration, Invocation, InvocationResult
from .lifecycle import (
    STAGES,
    InvocationContext,
    InvocationLifecycle,
    StageHooks,
    StageTracker,
)
from .worker import Worker

__all__ = [
    "CharacteristicsMap",
    "FunctionStats",
    "MovingAverage",
    "WorkerConfig",
    "WorkerLatencyProfile",
    "load_config",
    "ContainerPool",
    "PoolEntry",
    "FunctionRegistration",
    "Invocation",
    "InvocationResult",
    "STAGES",
    "InvocationContext",
    "InvocationLifecycle",
    "StageHooks",
    "StageTracker",
    "Worker",
]
