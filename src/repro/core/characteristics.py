"""Per-function execution characteristics (Section 3.1 / 4.2).

The worker maintains, for every registered function, moving-window
estimates of its cold and warm execution times and its inter-arrival time.
These feed the queueing disciplines (SJF/EEDF use warm or cold estimates,
RARE uses IAT) and are exposed through the worker API for data-driven
policies.

New, never-observed functions report an execution-time estimate of 0 so
that queue policies prioritize them, exactly as the paper specifies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MovingAverage", "FunctionStats", "CharacteristicsMap"]


class MovingAverage:
    """Arithmetic mean over a sliding window of the last ``window`` samples."""

    __slots__ = ("_window", "_values", "_sum")

    def __init__(self, window: int = 20):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._values: deque[float] = deque()
        self._sum = 0.0

    def push(self, value: float) -> None:
        self._values.append(value)
        self._sum += value
        if len(self._values) > self._window:
            self._sum -= self._values.popleft()

    @property
    def value(self) -> float:
        """Current mean; 0.0 when no samples (prioritizes unseen functions)."""
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)


@dataclass
class FunctionStats:
    """Timing history for one function."""

    fqdn: str
    warm: MovingAverage = field(default_factory=MovingAverage)
    cold: MovingAverage = field(default_factory=MovingAverage)
    exec_all: MovingAverage = field(default_factory=MovingAverage)
    iat: MovingAverage = field(default_factory=MovingAverage)
    last_arrival: Optional[float] = None
    invocations: int = 0
    cold_invocations: int = 0
    memory_mb: float = 0.0

    def record_arrival(self, now: float) -> None:
        if self.last_arrival is not None:
            delta = now - self.last_arrival
            if delta < 0:
                raise ValueError("arrivals must be recorded in time order")
            self.iat.push(delta)
        self.last_arrival = now
        self.invocations += 1

    def record_execution(self, duration: float, cold: bool) -> None:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        self.exec_all.push(duration)
        if cold:
            self.cold.push(duration)
            self.cold_invocations += 1
        else:
            self.warm.push(duration)

    @property
    def warm_time(self) -> float:
        return self.warm.value

    @property
    def cold_time(self) -> float:
        # Fall back to warm history if this function never ran cold in
        # the window (e.g. fully prewarmed), never report less than warm.
        if not self.cold:
            return self.warm.value
        return max(self.cold.value, self.warm.value)

    @property
    def avg_iat(self) -> float:
        return self.iat.value


class CharacteristicsMap:
    """All per-function stats for one worker; keyed by fqdn."""

    def __init__(self, window: int = 20):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = window
        self._stats: dict[str, FunctionStats] = {}

    def get(self, fqdn: str) -> FunctionStats:
        stats = self._stats.get(fqdn)
        if stats is None:
            stats = FunctionStats(
                fqdn=fqdn,
                warm=MovingAverage(self._window),
                cold=MovingAverage(self._window),
                exec_all=MovingAverage(self._window),
                iat=MovingAverage(self._window),
            )
            self._stats[fqdn] = stats
        return stats

    def __contains__(self, fqdn: str) -> bool:
        return fqdn in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def record_arrival(self, fqdn: str, now: float) -> None:
        self.get(fqdn).record_arrival(now)

    def record_execution(self, fqdn: str, duration: float, cold: bool) -> None:
        self.get(fqdn).record_execution(duration, cold)

    def expected_exec_time(self, fqdn: str, warm_available: bool) -> float:
        """The queue's execution-time estimate for an invocation.

        Uses warm history when a warm container is expected, cold history
        otherwise — this is what separates bursts of the same function in
        the queue and reduces concurrent cold starts (Section 4.2).
        """
        stats = self.get(fqdn)
        return stats.warm_time if warm_available else stats.cold_time

    def snapshot(self) -> dict[str, dict]:
        """Read-only view for status APIs and experiments."""
        return {
            fqdn: {
                "warm_time": s.warm_time,
                "cold_time": s.cold_time,
                "avg_iat": s.avg_iat,
                "invocations": s.invocations,
                "cold_invocations": s.cold_invocations,
            }
            for fqdn, s in self._stats.items()
        }
