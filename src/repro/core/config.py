"""Worker configuration (JSON-configurable, like the paper's workers).

Ilúvatar workers take a JSON config with policy options (queueing,
keep-alive, timeouts, networking, logging); experiments inject values on
top of a base file.  :func:`load_config` mirrors that: a dict/JSON file
plus keyword overrides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ConfigurationError

__all__ = ["WorkerLatencyProfile", "WorkerConfig", "load_config"]


@dataclass(frozen=True)
class WorkerLatencyProfile:
    """Control-plane component latencies (seconds), calibrated to paper
    Table 2 (mean per-component times of a warm invocation).

    These are *spent* as DES timeouts on the invocation path, so the
    measured span breakdown reproduces the table by construction and the
    end-to-end overhead (~2 ms warm) matches Figure 1's Ilúvatar line.
    """

    invoke: float = 0.000026
    sync_invoke: float = 0.000013
    enqueue_invocation: float = 0.000017
    add_item_to_q: float = 0.000020
    spawn_worker: float = 0.000029
    dequeue: float = 0.000020
    acquire_container: float = 0.000096
    try_lock_container: float = 0.000014
    prepare_invoke: float = 0.000154
    download_result: float = 0.000032
    return_container: float = 0.000017
    return_results: float = 0.000266
    jitter_fraction: float = 0.10  # exponential tail, mean = fraction*base

    def __post_init__(self):
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigurationError(f"{f.name} must be non-negative")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to run."""

    name: str = "worker-0"
    cores: int = 48
    memory_mb: float = 32768.0
    backend: str = "null"
    # Queueing.
    queue_policy: str = "eedf"
    queue_max_len: Optional[int] = None  # None = unbounded (burst tolerant)
    concurrency_limit: Optional[int] = None  # None -> cores (no overcommit)
    dynamic_concurrency: bool = False  # AIMD mode
    bypass_enabled: bool = True
    bypass_duration: float = 0.100
    bypass_load_limit: float = 0.9
    # Memory admission: how long a cold start may wait for memory before
    # the invocation is shed.
    memory_wait_timeout: float = 30.0
    # Keep-alive.
    keepalive_policy: str = "GD"
    eviction_interval: float = 2.0   # background eviction period
    free_memory_buffer_mb: float = 1024.0
    # Snapshot-accelerated cold starts (Section 3.2: "from a previous
    # snapshot if available").  Off by default: the paper's headline
    # numbers are snapshot-free.
    snapshots_enabled: bool = False
    # Namespace pool / HTTP client cache (ablation knobs).
    namespace_pool_size: int = 32
    namespace_pool_enabled: bool = True
    http_client_cache_enabled: bool = True
    # Monitoring.  tracing_enabled=False turns the worker's SpanRecorder
    # into a true no-op (the paper keeps tracing off the warm path); the
    # Table-2 breakdown obviously requires it on.
    tracing_enabled: bool = True
    load_sample_interval: float = 1.0
    latency: WorkerLatencyProfile = field(default_factory=WorkerLatencyProfile)
    seed: int = 1

    def __post_init__(self):
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        if self.memory_mb <= 0:
            raise ConfigurationError("memory_mb must be positive")
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ConfigurationError("concurrency_limit must be >= 1")
        if self.queue_max_len is not None and self.queue_max_len < 1:
            raise ConfigurationError("queue_max_len must be >= 1")
        if self.bypass_duration < 0:
            raise ConfigurationError("bypass_duration must be non-negative")
        if self.memory_wait_timeout < 0:
            raise ConfigurationError("memory_wait_timeout must be non-negative")
        if self.eviction_interval <= 0:
            raise ConfigurationError("eviction_interval must be positive")
        if self.free_memory_buffer_mb < 0:
            raise ConfigurationError("free_memory_buffer_mb must be non-negative")
        if self.free_memory_buffer_mb >= self.memory_mb:
            raise ConfigurationError("free buffer must be smaller than total memory")
        if self.namespace_pool_size < 0:
            raise ConfigurationError("namespace_pool_size must be non-negative")
        if self.load_sample_interval <= 0:
            raise ConfigurationError("load_sample_interval must be positive")

    @property
    def effective_concurrency(self) -> int:
        return self.concurrency_limit if self.concurrency_limit else self.cores

    def with_overrides(self, **overrides: Any) -> "WorkerConfig":
        return replace(self, **overrides)


def load_config(
    source: Union[None, str, Path, dict] = None, **overrides: Any
) -> WorkerConfig:
    """Build a WorkerConfig from a JSON file / dict plus overrides."""
    data: dict[str, Any] = {}
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            data = json.load(fh)
    elif isinstance(source, dict):
        data = dict(source)
    elif source is not None:
        raise ConfigurationError(f"unsupported config source: {type(source)!r}")
    data.update(overrides)
    if "latency" in data and isinstance(data["latency"], dict):
        data["latency"] = WorkerLatencyProfile(**data["latency"])
    known = {f.name for f in fields(WorkerConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"unknown config keys: {sorted(unknown)}")
    return WorkerConfig(**data)
