"""The worker's warm-container pool (Sections 3.2.1, 3.2.2).

The pool is the keep-alive cache in its live form: available containers
are kept warm per function, claimed on invocation, returned afterwards,
and evicted by the configured caching policy.  Two properties from the
paper's design are reproduced here:

* **Background eviction** — victims are picked and destroyed by a periodic
  process off the critical path (like the kernel page cache), maintaining
  a free-memory buffer so bursts do not stall on eviction;
* **Lazy expiry** — non-work-conserving policies (TTL/HIST) expire entries
  which are reaped on access or by the background sweep.

The same :class:`~repro.keepalive.policies.KeepAlivePolicy` objects used
by the trace simulator order eviction here; :class:`PoolEntry` duck-types
the attributes the policies read.
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from ..containers.base import Container, ContainerBackend, ContainerState
from ..keepalive.policies import KeepAlivePolicy
from ..sim.core import Environment
from ..sim.resources import Gauge

__all__ = ["PoolEntry", "ContainerPool"]


class PoolEntry:
    """Cache metadata for one pooled container (policy-compatible)."""

    __slots__ = (
        "container",
        "fqdn",
        "memory_mb",
        "init_cost",
        "warm_time",
        "freq",
        "last_used",
        "priority",
        "expires_at",
        "stamp",
        "evicted",
        "in_use",
        "inserted_at",
        "prewarmed",
    )

    def __init__(self, container: Container, init_cost: float, now: float,
                 prewarmed: bool = False):
        self.container = container
        self.fqdn = container.fqdn
        self.memory_mb = container.memory_mb
        self.init_cost = float(init_cost)
        self.warm_time = container.registration.warm_time
        self.freq = 1
        self.last_used = now
        self.priority = 0.0
        self.expires_at = float("inf")
        self.stamp = 0
        self.evicted = False
        self.in_use = True  # entries are created by the invocation using them
        self.inserted_at = now
        self.prewarmed = prewarmed

    def touch(self, now: float) -> None:
        self.freq += 1
        self.last_used = now

    def is_idle(self, now: float) -> bool:  # policy-compat; pool tracks in_use
        return not self.in_use


class ContainerPool:
    """All in-use and available containers of a worker."""

    def __init__(
        self,
        env: Environment,
        backend: ContainerBackend,
        policy: KeepAlivePolicy,
        memory: Gauge,
        free_buffer_mb: float = 0.0,
        eviction_interval: float = 2.0,
    ):
        if free_buffer_mb < 0:
            raise ValueError("free_buffer_mb must be non-negative")
        if eviction_interval <= 0:
            raise ValueError("eviction_interval must be positive")
        self.env = env
        self.backend = backend
        self.policy = policy
        self.memory = memory
        self.free_buffer_mb = float(free_buffer_mb)
        self.eviction_interval = float(eviction_interval)
        self._available: dict[str, list[PoolEntry]] = {}
        # Lower bound on the earliest expiry among a function's available
        # entries: lets try_acquire skip the expiry scan entirely when
        # nothing can be expired (the common case — work-conserving
        # policies never expire, so the bound is +inf).
        self._min_expiry: dict[str, float] = {}
        self._in_use: set[PoolEntry] = set()
        self._evict_heap: list[tuple[float, int, int, PoolEntry]] = []
        self._seq = 0
        self.evictions = 0
        self.expirations = 0
        self._running = False

    # -- introspection -----------------------------------------------------
    def available_count(self, fqdn: Optional[str] = None) -> int:
        if fqdn is not None:
            return len(self._available.get(fqdn, ()))
        return sum(len(v) for v in self._available.values())

    def in_use_count(self) -> int:
        return len(self._in_use)

    def pooled_memory_mb(self) -> float:
        """Memory held by idle warm containers (the keep-alive footprint)."""
        return sum(
            e.memory_mb for entries in self._available.values() for e in entries
        )

    def stats(self) -> dict:
        """Point-in-time pool gauges, as the telemetry sampler reads them."""
        return {
            "available": self.available_count(),
            "in_use": len(self._in_use),
            "pooled_memory_mb": self.pooled_memory_mb(),
            "evictions": self.evictions,
            "expirations": self.expirations,
        }

    def has_available(self, fqdn: str) -> bool:
        entries = self._available.get(fqdn)
        if not entries:
            return False
        now = self.env.now
        if self._min_expiry.get(fqdn, 0.0) > now:
            return True
        return any(e.expires_at > now for e in entries)

    # -- acquire / return ------------------------------------------------
    def try_acquire(self, fqdn: str) -> Optional[PoolEntry]:
        """Claim a warm container; expired entries are reaped on the way."""
        now = self.env.now
        entries = self._available.get(fqdn)
        if not entries:
            return None
        if self._min_expiry.get(fqdn, 0.0) > now:
            # Nothing can be expired: first entry is the scan's pick.
            chosen = entries.pop(0)
            if not entries:
                self._available.pop(fqdn, None)
                self._min_expiry.pop(fqdn, None)
        else:
            chosen = None
            expired: list[PoolEntry] = []
            for e in entries:
                if e.expires_at <= now:
                    expired.append(e)
                elif chosen is None:
                    chosen = e
            for e in expired:
                self._evict_entry(e, expired_eviction=True)
            remaining = self._available.get(fqdn)
            if chosen is None:
                if remaining:
                    self._min_expiry[fqdn] = min(e.expires_at for e in remaining)
                return None
            remaining.remove(chosen)
            if remaining:
                self._min_expiry[fqdn] = min(e.expires_at for e in remaining)
            else:
                self._available.pop(fqdn, None)
                self._min_expiry.pop(fqdn, None)
        chosen.in_use = True
        self._in_use.add(chosen)
        self.policy.on_access(chosen, now)
        return chosen

    def add_in_use(self, container: Container, init_cost: float,
                   prewarmed: bool = False) -> PoolEntry:
        """Register a freshly cold-started container, claimed by its creator.

        The caller must have taken the container's memory from the gauge
        already (before the backend create, so admission happens first).
        """
        entry = PoolEntry(container, init_cost, self.env.now, prewarmed=prewarmed)
        self.policy.on_insert(entry, self.env.now)
        self._in_use.add(entry)
        return entry

    def return_entry(self, entry: PoolEntry) -> None:
        """Invocation done: container back to the warm pool."""
        if entry not in self._in_use:
            raise ValueError(f"entry {entry.fqdn} is not in use")
        self._in_use.discard(entry)
        entry.in_use = False
        entry.last_used = self.env.now
        # Refresh expiry now that the idle clock starts.
        entry.expires_at = self.policy.expiry_time(entry)
        entry.priority = self.policy.priority(entry, self.env.now)
        self._available.setdefault(entry.fqdn, []).append(entry)
        bound = self._min_expiry.get(entry.fqdn)
        if bound is None or entry.expires_at < bound:
            self._min_expiry[entry.fqdn] = entry.expires_at
        self._push_heap(entry)

    def discard_in_use(self, entry: PoolEntry) -> Generator:
        """Destroy a claimed container without pooling it (failure path)."""
        self._in_use.discard(entry)
        entry.evicted = True
        yield self.env.process(self.backend.destroy(entry.container))
        self.memory.give(entry.memory_mb)

    # -- eviction ----------------------------------------------------------
    def _push_heap(self, entry: PoolEntry) -> None:
        self._seq += 1
        heapq.heappush(
            self._evict_heap, (entry.priority, entry.stamp, self._seq, entry)
        )

    def _pop_victim(self) -> Optional[PoolEntry]:
        while self._evict_heap:
            _pri, stamp, _seq, entry = heapq.heappop(self._evict_heap)
            if entry.evicted or entry.in_use or stamp != entry.stamp:
                continue
            return entry
        return None

    def _evict_entry(self, entry: PoolEntry, expired_eviction: bool) -> None:
        """Remove from the pool and destroy asynchronously."""
        entries = self._available.get(entry.fqdn)
        if entries and entry in entries:
            entries.remove(entry)
            if not entries:
                self._available.pop(entry.fqdn, None)
                self._min_expiry.pop(entry.fqdn, None)
        entry.evicted = True
        entry.stamp += 1
        self.evictions += 1
        if expired_eviction:
            self.expirations += 1
        self.policy.on_evict(entry)

        def _destroy() -> Generator:
            yield self.env.process(self.backend.destroy(entry.container))
            self.memory.give(entry.memory_mb)

        self.env.process(_destroy())

    def evict_for(self, needed_mb: float) -> float:
        """Synchronously pick victims to free ``needed_mb``; returns the
        amount of memory that will be freed (destruction is async but the
        gauge is credited on completion)."""
        freed = 0.0
        while freed < needed_mb:
            victim = self._pop_victim()
            if victim is None:
                break
            self._evict_entry(victim, expired_eviction=False)
            freed += victim.memory_mb
        return freed

    def sweep(self) -> None:
        """One background-eviction pass: expire, then restore free buffer."""
        now = self.env.now
        expired = [
            e
            for entries in self._available.values()
            for e in entries
            if e.expires_at <= now
        ]
        for e in expired:
            self._evict_entry(e, expired_eviction=True)
        deficit = self.free_buffer_mb - self.memory.level
        if deficit > 0:
            self.evict_for(deficit)

    def evictor(self) -> Generator:
        """Background DES process: periodic off-critical-path eviction."""
        self._running = True
        while self._running:
            yield self.env.timeout(self.eviction_interval)
            self.sweep()

    def stop(self) -> None:
        self._running = False
