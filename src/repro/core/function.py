"""Function registrations, invocations, and results.

A *registration* is the platform's durable description of a function: its
container image, resource limits, and timing profile.  An *invocation* is
one request flowing through the control plane; it accumulates timestamps as
it passes ingestion, queueing, dispatch and execution, from which the
end-to-end latency, queue time and control-plane overhead (the paper's
Figure 2 components) are derived.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["FunctionRegistration", "Invocation", "InvocationResult"]

_invocation_ids = itertools.count(1)


@dataclass(frozen=True)
class FunctionRegistration:
    """A registered function.

    ``warm_time``/``cold_time`` describe what the *function code* costs: the
    warm time is pure execution, the cold time adds the code/data
    initialization (imports, model downloads).  Container-creation latency
    is *not* included here — it belongs to the container backend, mirroring
    the paper's split between function init and sandbox creation.
    """

    name: str
    image: str = "repro/agent:latest"
    memory_mb: float = 128.0
    cpus: float = 1.0
    warm_time: float = 0.1
    cold_time: float = 0.2
    version: int = 1
    # Execution time limit; None = unlimited.  FaaS platforms kill
    # invocations that exceed their configured timeout.
    timeout: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("function name must be non-empty")
        # fqdn() sits on the per-invocation path several times over; the
        # registration is frozen, so compute it once.
        object.__setattr__(self, "_fqdn", f"{self.name}.{self.version}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.cpus <= 0:
            raise ValueError(f"cpus must be positive, got {self.cpus}")
        if self.warm_time < 0 or self.cold_time < 0:
            raise ValueError("execution times must be non-negative")
        if self.cold_time < self.warm_time:
            raise ValueError(
                f"cold_time ({self.cold_time}) must be >= warm_time "
                f"({self.warm_time}); cold includes initialization"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    @property
    def init_time(self) -> float:
        """Code/data initialization overhead (cold minus warm)."""
        return self.cold_time - self.warm_time

    def fqdn(self) -> str:
        """Fully qualified name (name + version), the pool/cache key."""
        return self._fqdn


@dataclass(slots=True)
class Invocation:
    """One request travelling through the control plane."""

    function: FunctionRegistration
    arrival: float
    args: Any = None
    id: int = field(default_factory=lambda: next(_invocation_ids))
    # Timestamps stamped as the invocation progresses (simulated seconds).
    enqueued_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    exec_started_at: Optional[float] = None
    exec_finished_at: Optional[float] = None
    completed_at: Optional[float] = None
    cold: bool = False
    bypassed: bool = False
    dropped: bool = False
    drop_reason: Optional[str] = None
    timed_out: bool = False
    worker: Optional[str] = None
    # Pull dispatch: when a worker claimed this invocation from the shared
    # logical queue, ``offered_at`` is the submit time (and equals
    # ``arrival``, so e2e/overhead include the claim wait) and
    # ``claimed_at`` is when the worker received it.  Push leaves both None.
    offered_at: Optional[float] = None
    claimed_at: Optional[float] = None

    @property
    def queue_time(self) -> float:
        """Time spent waiting in the invocation queue."""
        if self.enqueued_at is None or self.dispatched_at is None:
            return 0.0
        return self.dispatched_at - self.enqueued_at

    @property
    def exec_time(self) -> float:
        if self.exec_started_at is None or self.exec_finished_at is None:
            return 0.0
        return self.exec_finished_at - self.exec_started_at

    @property
    def e2e_time(self) -> float:
        """Flow time: arrival to completion."""
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.arrival

    @property
    def overhead(self) -> float:
        """Control-plane overhead: everything that is not function code."""
        return max(self.e2e_time - self.exec_time, 0.0)

    @property
    def stretch(self) -> float:
        """Normalized end-to-end latency (e2e / execution)."""
        if self.exec_time <= 0:
            return float("nan")
        return self.e2e_time / self.exec_time


@dataclass(frozen=True)
class InvocationResult:
    """What the platform returns to the caller."""

    invocation_id: int
    function: str
    success: bool
    value: Any = None
    cold: bool = False
    e2e_time: float = 0.0
    exec_time: float = 0.0
    overhead: float = 0.0
    error: Optional[str] = None
