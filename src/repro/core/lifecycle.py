"""The explicit invocation-lifecycle pipeline (the control plane's spine).

The paper's Table 2 describes an invocation as a fixed sequence of
control-plane steps; this module makes that sequence a first-class
pipeline instead of control flow buried inside one worker method:

    admit -> enqueue -> dispatch -> acquire -> (warm | cold_create)
          -> execute -> complete / drop / timeout

Three pieces make up the seam:

* :class:`InvocationContext` — one invocation's full control-plane state:
  the invocation (and through it the registration), the completion event,
  the container entry, per-stage enter/exit timestamps, the component
  intervals telemetry decomposes, and the final outcome or drop reason.
* :class:`StageHooks` — a registered callable per stage boundary, no-op
  (and unchecked beyond one attribute load) by default.  This is the
  extension seam future policies plug into: fault injection, per-stage
  admission, backend selection.
* :class:`InvocationLifecycle` — the worker's stages as named units with
  a uniform enter/exit contract.  Each stage spends its component
  latencies as DES timeouts with paired spans, exactly as the worker's
  previous inlined control flow did: the pipeline is behaviour-preserving
  by construction, pinned bit-for-bit by the determinism suites and the
  golden A/B fixture under ``tests/data/``.

:class:`StageTracker` is the substrate the OpenWhisk baseline shares: it
owns the context store, the hooks, and the enter/exit contract, while the
baseline keeps its own latency components and queueing semantics.

Hot-path discipline: component latencies are spent inline (a
contextmanager or per-component sub-generator costs an allocation per
component per invocation), stage stamps and hook dispatch cost one
attribute load when nobody observes, and per-invocation interval
collection is off unless telemetry attached.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..keepalive.policies import HistogramPolicy
from ..metrics.registry import InvocationRecord, Outcome
from ..sim.core import Event
from .function import FunctionRegistration, Invocation

__all__ = [
    "ADMIT",
    "ENQUEUE",
    "DISPATCH",
    "ACQUIRE",
    "WARM",
    "COLD_CREATE",
    "EXECUTE",
    "COMPLETE",
    "DROP",
    "TIMEOUT",
    "STAGES",
    "InvocationContext",
    "StageHooks",
    "StageTracker",
    "InvocationLifecycle",
]

# Stage names, in pipeline order.  ``warm`` and ``cold_create`` are the
# two branches of container acquisition; ``complete``/``drop``/``timeout``
# are the three terminal stages.
ADMIT = "admit"
ENQUEUE = "enqueue"
DISPATCH = "dispatch"
ACQUIRE = "acquire"
WARM = "warm"
COLD_CREATE = "cold_create"
EXECUTE = "execute"
COMPLETE = "complete"
DROP = "drop"
TIMEOUT = "timeout"

STAGES = (
    ADMIT,
    ENQUEUE,
    DISPATCH,
    ACQUIRE,
    WARM,
    COLD_CREATE,
    EXECUTE,
    COMPLETE,
    DROP,
    TIMEOUT,
)

TERMINAL_STAGES = (COMPLETE, DROP, TIMEOUT)


class InvocationContext:
    """One invocation's state as it travels the stage pipeline.

    Carries the :class:`~repro.core.function.Invocation` (and through it
    the registration and its accumulating timestamps), the completion
    event, the regulator token and container entry currently held, the
    per-stage ``stage_times`` (stamped when hooks or telemetry observe),
    the retained component ``intervals`` telemetry decomposes (collected
    only when a :class:`~repro.telemetry.Telemetry` pipeline attached),
    and the terminal ``outcome``.
    """

    __slots__ = (
        "inv",
        "done",
        "tag",
        "collect",
        "token",
        "entry",
        "stage",
        "stage_times",
        "intervals",
        "warm_available",
        "exec_time",
        "outcome",
    )

    def __init__(
        self,
        inv: Invocation,
        done: Event,
        tag: Optional[str] = None,
        collect: bool = False,
    ):
        self.inv = inv
        self.done = done
        self.tag = tag
        self.collect = collect
        self.token = None
        self.entry = None
        self.stage: Optional[str] = None
        self.stage_times: Optional[dict] = None
        self.intervals: Optional[list] = [] if collect else None
        self.warm_available = False
        self.exec_time: Optional[float] = None
        self.outcome: Optional[Outcome] = None

    # Convenience views over the carried invocation.
    @property
    def registration(self) -> FunctionRegistration:
        return self.inv.function

    @property
    def invocation_id(self) -> int:
        return self.inv.id

    @property
    def cold(self) -> bool:
        return self.inv.cold

    @property
    def drop_reason(self) -> Optional[str]:
        return self.inv.drop_reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvocationContext(id={self.inv.id}, "
            f"function={self.inv.function.fqdn()!r}, stage={self.stage!r}, "
            f"outcome={self.outcome})"
        )


class StageHooks:
    """Callables fired at stage boundaries; no-op by default.

    ``on_enter(stage, fn)`` / ``on_exit(stage, fn)`` register
    ``fn(stage, context)`` to run when the pipeline enters / exits the
    stage.  Multiple callables per boundary run in registration order.
    Hooks observe and may annotate the context; they must not yield (the
    pipeline's timing is not theirs to spend) — policies that need to
    spend time belong in a stage of their own in a future PR.
    """

    __slots__ = ("_enter", "_exit", "active")

    def __init__(self):
        self._enter: dict[str, list[Callable]] = {}
        self._exit: dict[str, list[Callable]] = {}
        self.active = False

    @staticmethod
    def _check(stage: str) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; stages are {STAGES}")

    def on_enter(self, stage: str, fn: Callable[[str, InvocationContext], None]):
        self._check(stage)
        self._enter.setdefault(stage, []).append(fn)
        self.active = True
        return fn

    def on_exit(self, stage: str, fn: Callable[[str, InvocationContext], None]):
        self._check(stage)
        self._exit.setdefault(stage, []).append(fn)
        self.active = True
        return fn

    def clear(self) -> None:
        self._enter.clear()
        self._exit.clear()
        self.active = False

    def fire_enter(self, stage: str, ctx: InvocationContext) -> None:
        for fn in self._enter.get(stage, ()):
            fn(stage, ctx)

    def fire_exit(self, stage: str, ctx: InvocationContext) -> None:
        for fn in self._exit.get(stage, ()):
            fn(stage, ctx)


class StageTracker:
    """The uniform stage enter/exit contract plus the context store.

    Shared by the worker's :class:`InvocationLifecycle` and the OpenWhisk
    baseline: both stamp stage boundaries through :meth:`stage_enter` /
    :meth:`stage_exit` and retain completed contexts for telemetry when
    ``keep_contexts`` is set (flipped by ``Telemetry.attach_worker``).
    """

    def __init__(self, env):
        self.env = env
        self.hooks = StageHooks()
        self.keep_contexts = False
        self.contexts: list[InvocationContext] = []
        # Dispatch-layer completion seam (StageHooks-adjacent): when a
        # pull engine drives this tracker it registers itself here and
        # close() notifies it for *every* terminal outcome — complete,
        # drop, and timeout — so claim slots can never leak.
        self.dispatch_seam = None

    def open(
        self, inv: Invocation, done: Event, tag: Optional[str] = None
    ) -> InvocationContext:
        return InvocationContext(inv, done, tag=tag, collect=self.keep_contexts)

    def stage_enter(self, ctx: InvocationContext, stage: str) -> None:
        ctx.stage = stage
        hooks = self.hooks
        if hooks.active or ctx.collect:
            times = ctx.stage_times
            if times is None:
                times = ctx.stage_times = {}
            times[stage] = [self.env.now, None]
            if hooks.active:
                hooks.fire_enter(stage, ctx)

    def stage_exit(self, ctx: InvocationContext, stage: str) -> None:
        hooks = self.hooks
        if hooks.active or ctx.collect:
            times = ctx.stage_times
            if times is not None:
                entry = times.get(stage)
                if entry is not None:
                    entry[1] = self.env.now
            if hooks.active:
                hooks.fire_exit(stage, ctx)

    def close(self, ctx: InvocationContext, outcome: Outcome) -> None:
        """Record the terminal outcome and retain the context if asked."""
        ctx.outcome = outcome
        seam = self.dispatch_seam
        if seam is not None:
            seam.on_complete(ctx)
        if ctx.collect:
            self.contexts.append(ctx)


class InvocationLifecycle(StageTracker):
    """The Ilúvatar worker's invocation path as explicit stages.

    Owns everything between ``async_invoke`` handing over an
    :class:`~repro.core.function.Invocation` and the completion event
    succeeding: component latencies (means from paper Table 2 with a
    batched exponential tail), span emission, metrics/characteristics
    recording at stage boundaries, memory admission, container creation,
    and the terminal drop/timeout paths.  The worker keeps only the
    background processes (dispatcher, evictor, samplers) and the public
    API.
    """

    def __init__(self, worker):
        super().__init__(worker.env)
        self.worker = worker
        # Stable aliases for the per-invocation path (all of these live as
        # long as the worker; telemetry flips switches on the aliased
        # objects, never replaces them).
        cfg = worker.config
        self.config = cfg
        self.latency = cfg.latency
        self.spans = worker.spans
        self.metrics = worker.metrics
        self.characteristics = worker.characteristics
        self.pool = worker.pool
        self.queue = worker.queue
        self.queue_policy = worker.queue_policy
        self.bypass = worker.bypass
        self.load = worker.load
        self.energy = worker.energy
        self.http_clients = worker.http_clients
        self.backend = worker.backend
        self.name = cfg.name
        self._histogram_keepalive = isinstance(
            worker.keepalive_policy, HistogramPolicy
        )
        self.dropped = 0
        self.timeouts = 0
        # Jitter draws are batched: standard exponentials are drawn 256 at
        # a time and scaled per use, which is bit-identical to per-call
        # rng.exponential(scale) (numpy computes standard_exp * scale from
        # the same stream) at a fraction of the per-draw cost.  Safe only
        # because the worker's rng has no other consumer.
        self.rng = worker.rng
        self._jitter_fraction = cfg.latency.jitter_fraction
        self._jitter_buf: list[float] = []
        self._jitter_i = 0

    # ------------------------------------------------------------------ util
    def _lat(self, base: float) -> float:
        """One control-plane component latency: base + exponential tail."""
        if base <= 0:
            return 0.0
        frac = self._jitter_fraction
        if frac <= 0:
            return base
        i = self._jitter_i
        buf = self._jitter_buf
        if i >= len(buf):
            buf = self._jitter_buf = self.rng.standard_exponential(256).tolist()
            i = 0
        self._jitter_i = i + 1
        return base + frac * base * buf[i]

    def open(self, inv: Invocation, done: Event) -> InvocationContext:
        # Tag spans with the invocation id only when spans are retained —
        # the telemetry decomposition joins on it; the aggregate-only mode
        # (and the disabled recorder) skips the str() allocation entirely.
        tag = str(inv.id) if self.spans.keep_spans else None
        return InvocationContext(inv, done, tag=tag, collect=self.keep_contexts)

    # -------------------------------------------------------------- drivers
    def ingest(self, inv: Invocation, done: Event) -> Generator:
        """DES process: admit, then bypass-execute or enqueue."""
        ctx = self.open(inv, done)
        if (yield from self.admit(ctx)):
            ctx.inv.bypassed = True
            self.metrics.incr("queue.bypassed")
            yield from self.run(ctx)
            return
        yield from self.enqueue(ctx)

    def handle(self, ctx: InvocationContext) -> Generator:
        """DES process: the dispatched half — dispatch, then run."""
        yield from self.dispatch(ctx)
        yield from self.run(ctx)

    def run(self, ctx: InvocationContext) -> Generator:
        """Acquire a container, run the function, return everything.

        The composite over ``acquire -> (warm | cold_create) -> execute ->
        complete``; drop and timeout short-circuit out of it.  The
        ``finally`` block guarantees the regulator token and any claimed
        container are returned on every path.
        """
        w = self.worker
        self.load.on_start()
        self.energy.update(self.load.busy_cores)
        try:
            ok = yield from self.acquire(ctx)
            if not ok:
                return
            timed_out = yield from self.execute(ctx)
            if timed_out:
                return
            yield from self.complete(ctx)
        finally:
            self.load.on_finish()
            self.energy.update(self.load.busy_cores)
            if ctx.token is not None:
                w.regulator.tokens.release(ctx.token)
            if ctx.entry is not None:
                # Failure path: never leak a claimed container.
                self.env.process(self.pool.discard_in_use(ctx.entry))

    # --------------------------------------------------------------- stages
    def admit(self, ctx: InvocationContext) -> Generator:
        """API handling and the bypass decision; True to bypass the queue.

        Component latencies are spent inline with paired span begin/end —
        a contextmanager (or a ``_spend`` sub-generator) here costs an
        allocation per component per invocation.
        """
        env = self.env
        spans = self.spans
        lat = self.latency
        inv = ctx.inv
        tag = ctx.tag
        collect = ctx.collect
        self.stage_enter(ctx, ADMIT)

        offered = inv.offered_at
        if offered is not None:
            # Pull dispatch: the wait between the offer landing on the
            # shared queue and a worker claiming it is control-plane
            # time — surface it as its own span/interval so the overhead
            # decomposition can attribute it (a "claim_wait" phase).
            claimed = inv.claimed_at
            spans.record_span("claim_wait", offered, claimed, tag)
            if collect:
                ctx.intervals.append(("claim_wait", offered, claimed))
            metrics = self.metrics
            if metrics.latency_histograms_enabled:
                metrics.observe("claim_wait_seconds", claimed - offered)

        if collect:
            start = env.now
        handle = spans.begin("invoke", tag)
        cost = self._lat(lat.invoke)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("invoke", start, env.now))

        if collect:
            start = env.now
        handle = spans.begin("sync_invoke", tag)
        cost = self._lat(lat.sync_invoke)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("sync_invoke", start, env.now))

        fqdn = inv.function.fqdn()
        self.characteristics.record_arrival(fqdn, env.now)
        if self._histogram_keepalive:
            self.worker.keepalive_policy.record_arrival(fqdn, env.now)

        ctx.warm_available = warm_available = self.pool.has_available(fqdn)
        decision = self.bypass.should_bypass(inv, warm_available)
        self.stage_exit(ctx, ADMIT)
        return decision

    def enqueue(self, ctx: InvocationContext) -> Generator:
        """Queue insertion: priority assignment and the admission check."""
        env = self.env
        spans = self.spans
        lat = self.latency
        inv = ctx.inv
        tag = ctx.tag
        collect = ctx.collect
        self.stage_enter(ctx, ENQUEUE)

        if collect:
            start = env.now
        handle = spans.begin("enqueue_invocation", tag)
        cost = self._lat(lat.enqueue_invocation)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("enqueue_invocation", start, env.now))

        priority = self.queue_policy.priority(inv, ctx.warm_available)
        inv.enqueued_at = env.now

        if collect:
            start = env.now
        handle = spans.begin("add_item_to_q", tag)
        cost = self._lat(lat.add_item_to_q)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("add_item_to_q", start, env.now))
        # Admission check at the moment of insertion, so concurrent
        # ingests observe the queue they are actually joining.
        max_len = self.config.queue_max_len
        if max_len is not None and len(self.queue) >= max_len:
            self.stage_exit(ctx, ENQUEUE)
            self.drop(ctx, "queue overflow")
            return
        yield self.queue.put(ctx, priority=priority)
        self.stage_exit(ctx, ENQUEUE)

    def dispatch(self, ctx: InvocationContext) -> Generator:
        """The dispatched invocation's handoff to a handler process."""
        env = self.env
        spans = self.spans
        lat = self.latency
        tag = ctx.tag
        collect = ctx.collect
        self.stage_enter(ctx, DISPATCH)

        if collect:
            start = env.now
        handle = spans.begin("dequeue", tag)
        cost = self._lat(lat.dequeue)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("dequeue", start, env.now))

        if collect:
            start = env.now
        handle = spans.begin("spawn_worker", tag)
        cost = self._lat(lat.spawn_worker)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("spawn_worker", start, env.now))
        self.stage_exit(ctx, DISPATCH)

    def acquire(self, ctx: InvocationContext) -> Generator:
        """Container acquisition; False when the cold path shed the
        invocation (the only way acquisition fails)."""
        env = self.env
        spans = self.spans
        tag = ctx.tag
        collect = ctx.collect
        fqdn = ctx.inv.function.fqdn()
        self.stage_enter(ctx, ACQUIRE)

        if collect:
            start = env.now
        handle = spans.begin("acquire_container", tag)
        cost = self._lat(self.latency.acquire_container)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("acquire_container", start, env.now))

        ctx.entry = self.pool.try_acquire(fqdn)
        self.stage_exit(ctx, ACQUIRE)
        if ctx.entry is not None:
            yield from self.warm(ctx)
            return True
        return (yield from self.cold_create(ctx))

    def warm(self, ctx: InvocationContext) -> Generator:
        """Warm branch: lock the already-running container."""
        env = self.env
        spans = self.spans
        collect = ctx.collect
        self.stage_enter(ctx, WARM)

        if collect:
            start = env.now
        handle = spans.begin("try_lock_container", ctx.tag)
        cost = self._lat(self.latency.try_lock_container)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("try_lock_container", start, env.now))
        ctx.inv.cold = False
        self.stage_exit(ctx, WARM)

    def cold_create(self, ctx: InvocationContext) -> Generator:
        """Cold branch: memory admission + sandbox creation — the whole
        cold-path detour the warm path skips.  False when the invocation
        was shed waiting for memory."""
        env = self.env
        spans = self.spans
        inv = ctx.inv
        collect = ctx.collect
        inv.cold = True
        self.stage_enter(ctx, COLD_CREATE)

        if collect:
            start = env.now
        handle = spans.begin("cold_create", ctx.tag)
        took = yield from self.take_memory(inv.function.memory_mb)
        if not took:
            spans.end(handle)
            if collect:
                ctx.intervals.append(("cold_create", start, env.now))
            self.stage_exit(ctx, COLD_CREATE)
            self.drop(ctx, "insufficient memory")
            return False
        ctx.entry = yield from self.create_container(inv.function)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("cold_create", start, env.now))
        self.stage_exit(ctx, COLD_CREATE)
        return True

    def execute(self, ctx: InvocationContext) -> Generator:
        """Agent communication around the execution window; True when the
        invocation exceeded its execution limit (timeout stage taken)."""
        env = self.env
        spans = self.spans
        lat = self.latency
        inv = ctx.inv
        tag = ctx.tag
        collect = ctx.collect
        self.stage_enter(ctx, EXECUTE)

        if collect:
            start = env.now
        handle = spans.begin("prepare_invoke", tag)
        cost = self._lat(lat.prepare_invoke)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("prepare_invoke", start, env.now))

        conn_cost = self.http_clients.connection_cost(ctx.entry.container.id)
        if conn_cost > 0:
            yield env.timeout(conn_cost)
            spans.record("http_client_create", conn_cost, tag)
            if collect:
                ctx.intervals.append(
                    ("http_client_create", env.now - conn_cost, env.now)
                )

        exec_time = (
            self.cold_exec_time(inv.function)
            if inv.cold
            else inv.function.warm_time
        )
        ctx.exec_time = exec_time
        inv.exec_started_at = env.now
        call_start = env.now
        invoke_proc = env.process(
            self.backend.invoke(ctx.entry.container, exec_time)
        )
        limit = inv.function.timeout
        if limit is not None:
            timed_out = yield from self._await_with_timeout(invoke_proc, limit)
            if timed_out:
                # Kill the over-running invocation: the container is
                # destroyed (its state is unknown) and the caller gets
                # a timeout outcome.
                yield from self.timeout_kill(ctx)
                return True
        else:
            yield invoke_proc
        inv.exec_finished_at = inv.exec_started_at + exec_time
        # The execution window itself, retained (not aggregated) so the
        # telemetry decomposition can subtract function time exactly.
        spans.record_span("exec", call_start, call_start + exec_time, tag)
        if collect:
            ctx.intervals.append(("exec", call_start, call_start + exec_time))
        # call_container span is the HTTP overhead around execution.
        comm = max(env.now - call_start - exec_time, 0.0)
        spans.record("call_container", comm, tag)
        if collect:
            ctx.intervals.append(("call_container", env.now - comm, env.now))

        if collect:
            start = env.now
        handle = spans.begin("download_result", tag)
        cost = self._lat(lat.download_result)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("download_result", start, env.now))
        self.stage_exit(ctx, EXECUTE)
        return False

    def complete(self, ctx: InvocationContext) -> Generator:
        """Terminal stage: return the container to the pool and the
        results to the caller, record the invocation."""
        env = self.env
        spans = self.spans
        lat = self.latency
        inv = ctx.inv
        tag = ctx.tag
        collect = ctx.collect
        self.stage_enter(ctx, COMPLETE)

        if collect:
            start = env.now
        handle = spans.begin("return_container", tag)
        cost = self._lat(lat.return_container)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("return_container", start, env.now))

        self.pool.return_entry(ctx.entry)
        ctx.entry = None

        if collect:
            start = env.now
        handle = spans.begin("return_results", tag)
        cost = self._lat(lat.return_results)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        if collect:
            ctx.intervals.append(("return_results", start, env.now))

        inv.completed_at = env.now
        fqdn = inv.function.fqdn()
        self.characteristics.record_execution(fqdn, ctx.exec_time, inv.cold)
        outcome = Outcome.BYPASSED if inv.bypassed else (
            Outcome.COLD if inv.cold else Outcome.WARM
        )
        self.metrics.record_invocation(
            InvocationRecord(
                function=fqdn,
                arrival=inv.arrival,
                outcome=outcome,
                exec_time=inv.exec_time,
                e2e_time=inv.e2e_time,
                queue_time=inv.queue_time,
                overhead=inv.overhead,
                cold=inv.cold,
                worker=self.name,
                invocation_id=inv.id,
            )
        )
        self.stage_exit(ctx, COMPLETE)
        self.close(ctx, outcome)
        ctx.done.succeed(inv)

    def timeout_kill(self, ctx: InvocationContext) -> Generator:
        """Terminal stage: terminate a timed-out invocation and report it."""
        env = self.env
        inv = ctx.inv
        self.stage_enter(ctx, TIMEOUT)
        inv.timed_out = True
        inv.exec_finished_at = env.now
        inv.completed_at = env.now
        self.timeouts += 1
        self.http_clients.forget(ctx.entry.container.id)
        entry, ctx.entry = ctx.entry, None
        yield env.process(self.pool.discard_in_use(entry))
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.TIMEOUT,
                exec_time=inv.exec_time,
                e2e_time=inv.e2e_time,
                queue_time=inv.queue_time,
                overhead=inv.overhead,
                cold=inv.cold,
                worker=self.name,
                invocation_id=inv.id,
            )
        )
        self.stage_exit(ctx, TIMEOUT)
        self.close(ctx, Outcome.TIMEOUT)
        ctx.done.succeed(inv)

    def drop(self, ctx: InvocationContext, reason: str) -> None:
        """Terminal stage: shed the invocation (admission / overflow)."""
        inv = ctx.inv
        self.stage_enter(ctx, DROP)
        inv.dropped = True
        inv.drop_reason = reason
        inv.completed_at = self.env.now
        self.dropped += 1
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.DROPPED,
                worker=self.name,
                invocation_id=inv.id,
            )
        )
        self.stage_exit(ctx, DROP)
        self.close(ctx, Outcome.DROPPED)
        ctx.done.succeed(inv)

    # --------------------------------------------------- shared sub-steps
    def _await_with_timeout(self, invoke_proc, limit: float) -> Generator:
        """Wait for the invocation or its execution limit; True on timeout."""
        timeout_ev = self.env.timeout(limit)
        result = yield self.env.any_of([invoke_proc, timeout_ev])
        if invoke_proc in result or not invoke_proc.is_alive:
            # Finished (possibly in the same instant the limit expired).
            return False
        invoke_proc.interrupt("function timeout")
        return True

    def take_memory(self, memory_mb: float) -> Generator:
        """Admission: obtain memory for a cold start, evicting if needed.

        Returns True on success; False when the wait timed out (the
        invocation is then shed)."""
        w = self.worker
        if w.memory.try_take(memory_mb):
            return True
        # Ask the pool to synchronously pick victims (destruction is async).
        self.pool.evict_for(memory_mb - max(w.memory.level, 0.0))
        take = w.memory.take(memory_mb)
        timeout = self.env.timeout(self.config.memory_wait_timeout)
        result = yield self.env.any_of([take, timeout])
        if take in result:
            return True
        # Timed out: the gauge will eventually grant the take; return the
        # memory as soon as it does so accounting stays balanced.
        take.callbacks.append(lambda _e: w.memory.give(memory_mb))
        return False

    def create_container(
        self, registration: FunctionRegistration, prewarmed: bool = False
    ) -> Generator:
        """Create a container through the backend (memory already taken).

        With snapshots enabled and one available, the sandbox is restored
        instead of built from scratch; the function's initialization work
        covered by the snapshot is skipped at execution time (the caller
        consults :meth:`cold_exec_time`).
        """
        w = self.worker
        namespace = w.namespaces.acquire()
        plan = w.snapshots.restore_plan(registration)
        if plan is not None:
            restore_latency, _remaining = plan
            container = yield self.env.process(
                self.backend.restore(
                    registration, restore_latency, namespace=namespace
                )
            )
            self.metrics.incr("containers.restored")
        else:
            container = yield self.env.process(
                self.backend.create(registration, namespace=namespace)
            )
            self.metrics.incr("containers.created")
            if w.snapshots.enabled:
                self._schedule_capture(registration)
        return self.pool.add_in_use(
            container, init_cost=registration.init_time, prewarmed=prewarmed
        )

    def cold_exec_time(self, registration: FunctionRegistration) -> float:
        """Function-code time for a cold start, given snapshot coverage."""
        snapshots = self.worker.snapshots
        if snapshots.has(registration.fqdn()):
            remaining_init = registration.init_time * (
                1.0 - snapshots.policy.init_coverage
            )
            return registration.warm_time + remaining_init
        return registration.cold_time

    def _schedule_capture(self, registration: FunctionRegistration) -> None:
        """Capture a snapshot in the background, off the critical path."""
        def capture() -> Generator:
            snapshots = self.worker.snapshots
            cost = snapshots.policy.capture_latency(registration.memory_mb)
            yield self.env.timeout(cost)
            snapshots.capture(registration, self.env.now)

        self.env.process(capture(), name=f"capture-{registration.fqdn()}")
