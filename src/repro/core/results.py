"""Async-invocation result store.

Ilúvatar's ``async_invoke`` returns immediately with a cookie; the client
polls ``check_async_invocation`` until the result is ready.  This store
holds completed results for collection, with a retention window so
abandoned cookies do not leak memory (results expire like any other
cached resource).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional

__all__ = ["AsyncStatus", "AsyncResult", "ResultStore"]

_cookie_seq = itertools.count(1)


class AsyncStatus(str, Enum):
    PENDING = "pending"
    DONE = "done"
    GONE = "gone"          # unknown cookie, collected, or expired


@dataclass
class AsyncResult:
    """The poll response for one cookie."""

    cookie: str
    status: AsyncStatus
    invocation: Any = None  # the completed Invocation when DONE


class ResultStore:
    """Cookie → completed-invocation mapping with retention."""

    def __init__(self, clock: Callable[[], float], retention: float = 3600.0):
        if retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self._clock = clock
        self.retention = float(retention)
        self._pending: set[str] = set()
        self._done: dict[str, tuple[float, Any]] = {}
        self.expired = 0

    @staticmethod
    def new_cookie() -> str:
        return f"async-{next(_cookie_seq):08d}"

    def register(self) -> str:
        """Open a new pending cookie."""
        cookie = self.new_cookie()
        self._pending.add(cookie)
        return cookie

    def complete(self, cookie: str, invocation: Any) -> None:
        if cookie not in self._pending:
            raise KeyError(f"unknown or already-completed cookie {cookie!r}")
        self._pending.discard(cookie)
        self._done[cookie] = (self._clock(), invocation)

    def check(self, cookie: str, collect: bool = True) -> AsyncResult:
        """Poll a cookie; ``collect`` removes a DONE result (the default,
        matching one-shot result retrieval)."""
        self._reap()
        if cookie in self._pending:
            return AsyncResult(cookie=cookie, status=AsyncStatus.PENDING)
        entry = self._done.get(cookie)
        if entry is None:
            return AsyncResult(cookie=cookie, status=AsyncStatus.GONE)
        if collect:
            del self._done[cookie]
        return AsyncResult(cookie=cookie, status=AsyncStatus.DONE,
                           invocation=entry[1])

    def _reap(self) -> None:
        now = self._clock()
        stale = [c for c, (t, _inv) in self._done.items()
                 if now - t > self.retention]
        for cookie in stale:
            del self._done[cookie]
            self.expired += 1

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def done_count(self) -> int:
        return len(self._done)
