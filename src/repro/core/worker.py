"""The Ilúvatar worker (Sections 3 and 4).

Worker-centric control plane for one server: it owns registration, the
per-worker invocation queue with its concurrency regulator and bypass, the
warm-container pool with background keep-alive eviction, the namespace and
HTTP-client caches, and all metrics.  The API mirrors the paper's —
``register``, ``invoke``, ``async_invoke``, ``prewarm`` — and is identical
whether the worker runs under a load balancer or standalone.

Every control-plane component *spends* its latency as a DES timeout (means
from paper Table 2 with a small exponential tail), so measured spans and
end-to-end overheads are consistent with the paper's warm-path numbers by
construction, while queueing and cold-start behaviour emerge from the
actual control flow.
"""

from __future__ import annotations

from functools import partial
from typing import Generator, Optional

import numpy as np

from ..containers.agent import HttpClientPool
from ..containers.backends import make_backend
from ..containers.base import ContainerBackend
from ..containers.image import ImageRegistry
from ..containers.namespace_pool import NamespacePool
from ..containers.snapshots import SnapshotStore
from ..errors import DuplicateRegistration, FunctionNotRegistered
from ..keepalive.policies import HistogramPolicy, make_policy
from ..metrics.energy import EnergyMonitor
from ..metrics.registry import InvocationRecord, MetricsRegistry, Outcome
from ..metrics.spans import SpanRecorder
from ..queueing.bypass import NoBypass, ShortFunctionBypass
from ..queueing.policies import make_queue_policy
from ..queueing.regulator import AIMDConfig, ConcurrencyRegulator, LoadTracker
from ..sim.core import Environment, Event
from ..sim.resources import Gauge, PriorityStore
from .characteristics import CharacteristicsMap
from .config import WorkerConfig
from .container_pool import ContainerPool
from .function import FunctionRegistration, Invocation
from .results import AsyncResult, ResultStore

__all__ = ["Worker"]


class Worker:
    """A single Ilúvatar worker on a DES environment."""

    def __init__(
        self,
        env: Environment,
        config: Optional[WorkerConfig] = None,
        backend: Optional[ContainerBackend] = None,
        registry: Optional[ImageRegistry] = None,
    ):
        self.env = env
        self.config = config or WorkerConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        self.name = cfg.name

        self.backend = backend or make_backend(cfg.backend, env)
        self.image_registry = registry or ImageRegistry(env)

        self.characteristics = CharacteristicsMap()
        # partial(getattr, env, "now") is a C-level clock callable — no
        # Python frame per sample, and these clocks fire many times per
        # invocation (spans tick twice per component).
        clock = partial(getattr, env, "now")
        self.metrics = MetricsRegistry(clock=clock)
        self.spans = SpanRecorder(clock=clock, enabled=cfg.tracing_enabled)
        # Simulated RAPL: integrates a linear power model over busy cores
        # (Section 5.1's self-contained system monitoring).
        self.energy = EnergyMonitor(clock=clock)

        self.memory = Gauge(env, capacity=cfg.memory_mb)
        self.keepalive_policy = make_policy(cfg.keepalive_policy)
        self._histogram_keepalive = isinstance(
            self.keepalive_policy, HistogramPolicy
        )
        self.pool = ContainerPool(
            env,
            self.backend,
            self.keepalive_policy,
            self.memory,
            free_buffer_mb=cfg.free_memory_buffer_mb,
            eviction_interval=cfg.eviction_interval,
        )

        self.load = LoadTracker(cores=cfg.cores, interval=cfg.load_sample_interval)
        aimd = AIMDConfig(max_limit=4 * cfg.cores) if cfg.dynamic_concurrency else None
        self.regulator = ConcurrencyRegulator(
            env, cfg.effective_concurrency, load=self.load, aimd=aimd
        )

        self.queue = PriorityStore(env)
        self.queue_policy = make_queue_policy(cfg.queue_policy, self.characteristics)
        if cfg.bypass_enabled:
            self.bypass = ShortFunctionBypass(
                self.characteristics,
                self.load,
                duration_threshold=cfg.bypass_duration,
                load_limit=cfg.bypass_load_limit,
            )
        else:
            self.bypass = NoBypass()

        self.namespaces = NamespacePool(
            env,
            target_size=cfg.namespace_pool_size,
            enabled=cfg.namespace_pool_enabled,
        )
        self.http_clients = HttpClientPool(enabled=cfg.http_client_cache_enabled)
        self.snapshots = SnapshotStore(enabled=cfg.snapshots_enabled)

        self.registrations: dict[str, FunctionRegistration] = {}
        self.results = ResultStore(clock=partial(getattr, env, "now"))
        self._started = False
        self.dropped = 0
        self.timeouts = 0
        # Jitter draws are batched: standard exponentials are drawn 256 at
        # a time and scaled per use, which is bit-identical to per-call
        # rng.exponential(scale) (numpy computes standard_exp * scale from
        # the same stream) at a fraction of the per-draw cost.  Safe only
        # because self.rng has no other consumer.
        self._jitter_fraction = self.config.latency.jitter_fraction
        self._jitter_buf: list[float] = []
        self._jitter_i = 0

    # ------------------------------------------------------------------ util
    def _lat(self, base: float) -> float:
        """One control-plane component latency: base + exponential tail."""
        if base <= 0:
            return 0.0
        frac = self._jitter_fraction
        if frac <= 0:
            return base
        i = self._jitter_i
        buf = self._jitter_buf
        if i >= len(buf):
            buf = self._jitter_buf = self.rng.standard_exponential(256).tolist()
            i = 0
        self._jitter_i = i + 1
        return base + frac * base * buf[i]

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        """Launch the worker's background processes."""
        if self._started:
            raise RuntimeError("worker already started")
        self._started = True
        self.env.process(self.pool.evictor(), name=f"{self.name}-evictor")
        self.env.process(self.load.sampler(self.env), name=f"{self.name}-loadavg")
        self.env.process(self._dispatcher(), name=f"{self.name}-dispatcher")
        if self.config.namespace_pool_enabled:
            self.env.process(self.namespaces.refiller(), name=f"{self.name}-netns")
        if self.config.dynamic_concurrency:
            self.env.process(self.regulator.controller(), name=f"{self.name}-aimd")

    def stop(self) -> None:
        self.pool.stop()
        self.namespaces.stop()
        self.regulator.stop()

    # ------------------------------------------------------------------ API
    def register(self, registration: FunctionRegistration) -> Generator:
        """DES process: register a function (image pull is out-of-band)."""
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        yield self.env.process(
            self.image_registry.pull(registration.image)
        )
        self.registrations[fqdn] = registration
        return fqdn

    def register_sync(self, registration: FunctionRegistration) -> str:
        """Register without modelling the image pull (tests/experiments)."""
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        self.registrations[fqdn] = registration
        return fqdn

    def prewarm(self, fqdn: str) -> Generator:
        """DES process: start a container + agent and add it to the pool."""
        registration = self._lookup(fqdn)
        took = yield from self._take_memory(registration.memory_mb)
        if not took:
            return False
        entry = yield from self._cold_create(registration, prewarmed=True)
        self.pool.return_entry(entry)
        return True

    def invoke(self, fqdn: str, args=None) -> Generator:
        """DES process: synchronous invocation; returns the Invocation."""
        done = self.async_invoke(fqdn, args)
        inv = yield done
        return inv

    def async_invoke(self, fqdn: str, args=None) -> Event:
        """Fire an invocation; returns an event that succeeds with the
        completed :class:`Invocation` (dropped invocations also complete,
        with ``dropped=True``)."""
        registration = self._lookup(fqdn)
        done = self.env.event()
        inv = Invocation(function=registration, arrival=self.env.now, args=args)
        self.env.process(self._ingest(inv, done), name=f"ingest-{inv.id}")
        return done

    def async_invoke_cookie(self, fqdn: str, args=None) -> str:
        """The paper's async API: fire and return a cookie immediately;
        poll :meth:`check_async_invocation` for the result."""
        cookie = self.results.register()
        done = self.async_invoke(fqdn, args)
        done.callbacks.append(
            lambda event: self.results.complete(cookie, event.value)
        )
        return cookie

    def check_async_invocation(self, cookie: str, collect: bool = True) -> AsyncResult:
        """Poll an async cookie; DONE results are collected (one-shot)."""
        return self.results.check(cookie, collect=collect)

    def _lookup(self, fqdn: str) -> FunctionRegistration:
        registration = self.registrations.get(fqdn)
        if registration is None:
            raise FunctionNotRegistered(fqdn)
        return registration

    # ------------------------------------------------------------- pipeline
    def _ingest(self, inv: Invocation, done: Event) -> Generator:
        """Ingestion: API handling, bypass decision, enqueue.

        Component latencies are spent inline with paired span begin/end —
        a contextmanager (or a ``_spend`` sub-generator) here costs an
        allocation per component per invocation.
        """
        env = self.env
        spans = self.spans
        lat = self.config.latency
        # Tag spans with the invocation id only when spans are retained —
        # the telemetry decomposition joins on it; the aggregate-only mode
        # (and the disabled recorder) skips the str() allocation entirely.
        tag = str(inv.id) if spans.keep_spans else None

        handle = spans.begin("invoke", tag)
        cost = self._lat(lat.invoke)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)

        handle = spans.begin("sync_invoke", tag)
        cost = self._lat(lat.sync_invoke)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)

        fqdn = inv.function.fqdn()
        self.characteristics.record_arrival(fqdn, env.now)
        if self._histogram_keepalive:
            self.keepalive_policy.record_arrival(fqdn, env.now)

        warm_available = self.pool.has_available(fqdn)
        if self.bypass.should_bypass(inv, warm_available):
            inv.bypassed = True
            self.metrics.incr("queue.bypassed")
            yield from self._execute(inv, done, token=None)
            return

        handle = spans.begin("enqueue_invocation", tag)
        cost = self._lat(lat.enqueue_invocation)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)

        priority = self.queue_policy.priority(inv, warm_available)
        inv.enqueued_at = env.now

        handle = spans.begin("add_item_to_q", tag)
        cost = self._lat(lat.add_item_to_q)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)
        # Admission check at the moment of insertion, so concurrent
        # ingests observe the queue they are actually joining.
        if (
            self.config.queue_max_len is not None
            and len(self.queue) >= self.config.queue_max_len
        ):
            self._drop(inv, done, "queue overflow")
            return
        yield self.queue.put((inv, done), priority=priority)

    def _dispatcher(self) -> Generator:
        """The queue-monitor thread: regulator-gated dispatch loop."""
        while True:
            token = self.regulator.tokens.request()
            yield token
            item = yield self.queue.get()
            inv, done = item
            inv.dispatched_at = self.env.now
            self.queue_policy.on_dispatch(inv)
            self.env.process(
                self._handle(inv, done, token), name=f"handler-{inv.id}"
            )

    def _handle(self, inv: Invocation, done: Event, token) -> Generator:
        env = self.env
        spans = self.spans
        lat = self.config.latency
        tag = str(inv.id) if spans.keep_spans else None

        handle = spans.begin("dequeue", tag)
        cost = self._lat(lat.dequeue)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)

        handle = spans.begin("spawn_worker", tag)
        cost = self._lat(lat.spawn_worker)
        if cost > 0:
            yield env.timeout(cost)
        spans.end(handle)

        yield from self._execute(inv, done, token)

    def _execute(self, inv: Invocation, done: Event, token) -> Generator:
        """Acquire a container, run the function, return everything."""
        cfg = self.config
        env = self.env
        spans = self.spans
        lat = cfg.latency
        fqdn = inv.function.fqdn()
        tag = str(inv.id) if spans.keep_spans else None
        self.load.on_start()
        self.energy.update(self.load.busy_cores)
        entry = None
        try:
            handle = spans.begin("acquire_container", tag)
            cost = self._lat(lat.acquire_container)
            if cost > 0:
                yield env.timeout(cost)
            spans.end(handle)

            entry = self.pool.try_acquire(fqdn)
            if entry is not None:
                handle = spans.begin("try_lock_container", tag)
                cost = self._lat(lat.try_lock_container)
                if cost > 0:
                    yield env.timeout(cost)
                spans.end(handle)
                inv.cold = False
            else:
                inv.cold = True
                # The cold_create span covers memory admission + sandbox
                # creation: the whole cold-path detour the warm path skips.
                handle = spans.begin("cold_create", tag)
                took = yield from self._take_memory(inv.function.memory_mb)
                if not took:
                    spans.end(handle)
                    self._drop(inv, done, "insufficient memory")
                    return
                entry = yield from self._cold_create(inv.function)
                spans.end(handle)

            # Talk to the agent.
            handle = spans.begin("prepare_invoke", tag)
            cost = self._lat(lat.prepare_invoke)
            if cost > 0:
                yield env.timeout(cost)
            spans.end(handle)

            conn_cost = self.http_clients.connection_cost(entry.container.id)
            if conn_cost > 0:
                yield env.timeout(conn_cost)
                spans.record("http_client_create", conn_cost, tag)

            exec_time = (
                self._cold_exec_time(inv.function)
                if inv.cold
                else inv.function.warm_time
            )
            inv.exec_started_at = self.env.now
            call_start = self.env.now
            invoke_proc = self.env.process(
                self.backend.invoke(entry.container, exec_time)
            )
            limit = inv.function.timeout
            if limit is not None:
                timed_out = yield from self._await_with_timeout(
                    invoke_proc, limit
                )
                if timed_out:
                    # Kill the over-running invocation: the container is
                    # destroyed (its state is unknown) and the caller gets
                    # a timeout outcome.
                    yield from self._timeout_kill(inv, entry, done)
                    entry = None
                    return
            else:
                yield invoke_proc
            inv.exec_finished_at = inv.exec_started_at + exec_time
            # The execution window itself, retained (not aggregated) so the
            # telemetry decomposition can subtract function time exactly.
            spans.record_span("exec", call_start, call_start + exec_time, tag)
            # call_container span is the HTTP overhead around execution.
            spans.record(
                "call_container", max(env.now - call_start - exec_time, 0.0), tag
            )

            handle = spans.begin("download_result", tag)
            cost = self._lat(lat.download_result)
            if cost > 0:
                yield env.timeout(cost)
            spans.end(handle)

            # Return the container to the pool and the results to the caller.
            handle = spans.begin("return_container", tag)
            cost = self._lat(lat.return_container)
            if cost > 0:
                yield env.timeout(cost)
            spans.end(handle)

            self.pool.return_entry(entry)
            entry = None

            handle = spans.begin("return_results", tag)
            cost = self._lat(lat.return_results)
            if cost > 0:
                yield env.timeout(cost)
            spans.end(handle)

            inv.completed_at = env.now
            self.characteristics.record_execution(fqdn, exec_time, inv.cold)
            self.metrics.record_invocation(
                InvocationRecord(
                    function=fqdn,
                    arrival=inv.arrival,
                    outcome=Outcome.BYPASSED if inv.bypassed else (
                        Outcome.COLD if inv.cold else Outcome.WARM
                    ),
                    exec_time=inv.exec_time,
                    e2e_time=inv.e2e_time,
                    queue_time=inv.queue_time,
                    overhead=inv.overhead,
                    cold=inv.cold,
                    worker=self.name,
                    invocation_id=inv.id,
                )
            )
            done.succeed(inv)
        finally:
            self.load.on_finish()
            self.energy.update(self.load.busy_cores)
            if token is not None:
                self.regulator.tokens.release(token)
            if entry is not None:
                # Failure path: never leak a claimed container.
                self.env.process(self.pool.discard_in_use(entry))

    def _await_with_timeout(self, invoke_proc, limit: float) -> Generator:
        """Wait for the invocation or its execution limit; True on timeout."""
        timeout_ev = self.env.timeout(limit)
        result = yield self.env.any_of([invoke_proc, timeout_ev])
        if invoke_proc in result or not invoke_proc.is_alive:
            # Finished (possibly in the same instant the limit expired).
            return False
        invoke_proc.interrupt("function timeout")
        return True

    def _timeout_kill(self, inv: Invocation, entry, done: Event) -> Generator:
        """Terminate a timed-out invocation and report it."""
        inv.timed_out = True
        inv.exec_finished_at = self.env.now
        inv.completed_at = self.env.now
        self.timeouts += 1
        self.http_clients.forget(entry.container.id)
        yield self.env.process(self.pool.discard_in_use(entry))
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.TIMEOUT,
                exec_time=inv.exec_time,
                e2e_time=inv.e2e_time,
                queue_time=inv.queue_time,
                overhead=inv.overhead,
                cold=inv.cold,
                worker=self.name,
                invocation_id=inv.id,
            )
        )
        done.succeed(inv)

    def _take_memory(self, memory_mb: float) -> Generator:
        """Admission: obtain memory for a cold start, evicting if needed.

        Returns True on success; False when the wait timed out (the
        invocation is then shed)."""
        if self.memory.try_take(memory_mb):
            return True
        # Ask the pool to synchronously pick victims (destruction is async).
        self.pool.evict_for(memory_mb - max(self.memory.level, 0.0))
        take = self.memory.take(memory_mb)
        timeout = self.env.timeout(self.config.memory_wait_timeout)
        result = yield self.env.any_of([take, timeout])
        if take in result:
            return True
        # Timed out: the gauge will eventually grant the take; return the
        # memory as soon as it does so accounting stays balanced.
        take.callbacks.append(lambda _e: self.memory.give(memory_mb))
        return False

    def _cold_create(
        self, registration: FunctionRegistration, prewarmed: bool = False
    ) -> Generator:
        """Create a container through the backend (memory already taken).

        With snapshots enabled and one available, the sandbox is restored
        instead of built from scratch; the function's initialization work
        covered by the snapshot is skipped at execution time (the caller
        consults :meth:`_cold_exec_time`).
        """
        namespace = self.namespaces.acquire()
        plan = self.snapshots.restore_plan(registration)
        if plan is not None:
            restore_latency, _remaining = plan
            container = yield self.env.process(
                self.backend.restore(
                    registration, restore_latency, namespace=namespace
                )
            )
            self.metrics.incr("containers.restored")
        else:
            container = yield self.env.process(
                self.backend.create(registration, namespace=namespace)
            )
            self.metrics.incr("containers.created")
            if self.snapshots.enabled:
                self._schedule_capture(registration)
        return self.pool.add_in_use(
            container, init_cost=registration.init_time, prewarmed=prewarmed
        )

    def _cold_exec_time(self, registration: FunctionRegistration) -> float:
        """Function-code time for a cold start, given snapshot coverage."""
        if self.snapshots.has(registration.fqdn()):
            remaining_init = registration.init_time * (
                1.0 - self.snapshots.policy.init_coverage
            )
            return registration.warm_time + remaining_init
        return registration.cold_time

    def _schedule_capture(self, registration: FunctionRegistration) -> None:
        """Capture a snapshot in the background, off the critical path."""
        def capture() -> Generator:
            cost = self.snapshots.policy.capture_latency(registration.memory_mb)
            yield self.env.timeout(cost)
            self.snapshots.capture(registration, self.env.now)

        self.env.process(capture(), name=f"capture-{registration.fqdn()}")

    def _drop(self, inv: Invocation, done: Event, reason: str) -> None:
        inv.dropped = True
        inv.drop_reason = reason
        inv.completed_at = self.env.now
        self.dropped += 1
        self.metrics.record_invocation(
            InvocationRecord(
                function=inv.function.fqdn(),
                arrival=inv.arrival,
                outcome=Outcome.DROPPED,
                worker=self.name,
                invocation_id=inv.id,
            )
        )
        done.succeed(inv)

    # ---------------------------------------------------------- telemetry
    def attach_telemetry(self, telemetry) -> None:
        """Register this worker with a :class:`repro.telemetry.Telemetry`
        pipeline (gauge sampling, latency histograms, span retention).
        Equivalent to ``telemetry.attach_worker(self)``."""
        telemetry.attach_worker(self)

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        """Load/status snapshot, as served to the load balancer."""
        return {
            "name": self.name,
            "queue_length": len(self.queue),
            "running": self.load.running,
            "loadavg": self.load.loadavg,
            "normalized_load": self.load.normalized,
            "concurrency_limit": self.regulator.limit,
            "free_memory_mb": self.memory.level,
            "warm_containers": self.pool.available_count(),
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "async_pending": self.results.pending_count,
            "energy_joules": self.energy.joules,
        }
