"""The Ilúvatar worker (Sections 3 and 4).

Worker-centric control plane for one server: it owns registration, the
per-worker invocation queue with its concurrency regulator and bypass, the
warm-container pool with background keep-alive eviction, the namespace and
HTTP-client caches, and all metrics.  The API mirrors the paper's —
``register``, ``invoke``, ``async_invoke``, ``prewarm`` — and is identical
whether the worker runs under a load balancer or standalone.

The per-invocation control flow lives in
:class:`repro.core.lifecycle.InvocationLifecycle` as an explicit stage
pipeline (``admit → enqueue → dispatch → acquire → (warm | cold_create) →
execute → complete/drop/timeout``); this module keeps the public API, the
background processes, and the wiring that assembles the subsystems the
pipeline drives.  Every control-plane component *spends* its latency as a
DES timeout (means from paper Table 2 with a small exponential tail), so
measured spans and end-to-end overheads are consistent with the paper's
warm-path numbers by construction, while queueing and cold-start
behaviour emerge from the actual control flow.
"""

from __future__ import annotations

from functools import partial
from typing import Generator, Optional

import numpy as np

from ..containers.agent import HttpClientPool
from ..containers.backends import make_backend
from ..containers.base import ContainerBackend
from ..containers.image import ImageRegistry
from ..containers.namespace_pool import NamespacePool
from ..containers.snapshots import SnapshotStore
from ..errors import DuplicateRegistration, FunctionNotRegistered
from ..keepalive.policies import make_policy
from ..metrics.energy import EnergyMonitor
from ..metrics.registry import MetricsRegistry
from ..metrics.spans import SpanRecorder
from ..queueing.bypass import NoBypass, ShortFunctionBypass
from ..queueing.policies import make_queue_policy
from ..queueing.regulator import AIMDConfig, ConcurrencyRegulator, LoadTracker
from ..sim.core import Environment, Event
from ..sim.resources import Gauge, PriorityStore
from .characteristics import CharacteristicsMap
from .config import WorkerConfig
from .container_pool import ContainerPool
from .function import FunctionRegistration, Invocation
from .lifecycle import InvocationLifecycle
from .results import AsyncResult, ResultStore

__all__ = ["Worker"]


class Worker:
    """A single Ilúvatar worker on a DES environment."""

    def __init__(
        self,
        env: Environment,
        config: Optional[WorkerConfig] = None,
        backend: Optional[ContainerBackend] = None,
        registry: Optional[ImageRegistry] = None,
    ):
        self.env = env
        self.config = config or WorkerConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        self.name = cfg.name

        self.backend = backend or make_backend(cfg.backend, env)
        self.image_registry = registry or ImageRegistry(env)

        self.characteristics = CharacteristicsMap()
        # partial(getattr, env, "now") is a C-level clock callable — no
        # Python frame per sample, and these clocks fire many times per
        # invocation (spans tick twice per component).  One callable is
        # shared by every clocked subsystem.
        clock = partial(getattr, env, "now")
        self.metrics = MetricsRegistry(clock=clock)
        self.spans = SpanRecorder(clock=clock, enabled=cfg.tracing_enabled)
        # Simulated RAPL: integrates a linear power model over busy cores
        # (Section 5.1's self-contained system monitoring).
        self.energy = EnergyMonitor(clock=clock)

        self.memory = Gauge(env, capacity=cfg.memory_mb)
        self.keepalive_policy = make_policy(cfg.keepalive_policy)
        self.pool = ContainerPool(
            env,
            self.backend,
            self.keepalive_policy,
            self.memory,
            free_buffer_mb=cfg.free_memory_buffer_mb,
            eviction_interval=cfg.eviction_interval,
        )

        self.load = LoadTracker(cores=cfg.cores, interval=cfg.load_sample_interval)
        aimd = AIMDConfig(max_limit=4 * cfg.cores) if cfg.dynamic_concurrency else None
        self.regulator = ConcurrencyRegulator(
            env, cfg.effective_concurrency, load=self.load, aimd=aimd
        )

        self.queue = PriorityStore(env)
        self.queue_policy = make_queue_policy(cfg.queue_policy, self.characteristics)
        if cfg.bypass_enabled:
            self.bypass = ShortFunctionBypass(
                self.characteristics,
                self.load,
                duration_threshold=cfg.bypass_duration,
                load_limit=cfg.bypass_load_limit,
            )
        else:
            self.bypass = NoBypass()

        self.namespaces = NamespacePool(
            env,
            target_size=cfg.namespace_pool_size,
            enabled=cfg.namespace_pool_enabled,
        )
        self.http_clients = HttpClientPool(enabled=cfg.http_client_cache_enabled)
        self.snapshots = SnapshotStore(enabled=cfg.snapshots_enabled)

        self.registrations: dict[str, FunctionRegistration] = {}
        self.results = ResultStore(clock=clock)
        self._started = False
        # The invocation path itself: built last, over the assembled
        # subsystems.
        self.lifecycle = InvocationLifecycle(self)

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        """Launch the worker's background processes."""
        if self._started:
            raise RuntimeError("worker already started")
        self._started = True
        self.env.process(self.pool.evictor(), name=f"{self.name}-evictor")
        self.env.process(self.load.sampler(self.env), name=f"{self.name}-loadavg")
        self.env.process(self._dispatcher(), name=f"{self.name}-dispatcher")
        if self.config.namespace_pool_enabled:
            self.env.process(self.namespaces.refiller(), name=f"{self.name}-netns")
        if self.config.dynamic_concurrency:
            self.env.process(self.regulator.controller(), name=f"{self.name}-aimd")

    def stop(self) -> None:
        self.pool.stop()
        self.namespaces.stop()
        self.regulator.stop()

    # ------------------------------------------------------------------ API
    def register(self, registration: FunctionRegistration) -> Generator:
        """DES process: register a function (image pull is out-of-band)."""
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        yield self.env.process(
            self.image_registry.pull(registration.image)
        )
        self.registrations[fqdn] = registration
        return fqdn

    def register_sync(self, registration: FunctionRegistration) -> str:
        """Register without modelling the image pull (tests/experiments)."""
        fqdn = registration.fqdn()
        if fqdn in self.registrations:
            raise DuplicateRegistration(fqdn)
        self.registrations[fqdn] = registration
        return fqdn

    def prewarm(self, fqdn: str) -> Generator:
        """DES process: start a container + agent and add it to the pool."""
        registration = self._lookup(fqdn)
        took = yield from self.lifecycle.take_memory(registration.memory_mb)
        if not took:
            return False
        entry = yield from self.lifecycle.create_container(
            registration, prewarmed=True
        )
        self.pool.return_entry(entry)
        return True

    def invoke(self, fqdn: str, args=None) -> Generator:
        """DES process: synchronous invocation; returns the Invocation."""
        done = self.async_invoke(fqdn, args)
        inv = yield done
        return inv

    def async_invoke(
        self, fqdn: str, args=None, *, invocation_id: Optional[int] = None,
        offered_at: Optional[float] = None,
    ) -> Event:
        """Fire an invocation; returns an event that succeeds with the
        completed :class:`Invocation` (dropped invocations also complete,
        with ``dropped=True``).

        ``invocation_id`` presets the id instead of drawing from the
        process-global counter — the cluster-shard coordinator assigns
        arrival-ordered ids so sharded runs reproduce single-process
        records; normal callers leave it unset.

        ``offered_at`` marks a pull-dispatch claim: the invocation was
        offered to the cluster queue at that (earlier) time, so it becomes
        the arrival — end-to-end latency then charges the claim wait to
        the control plane, and the lifecycle attributes it as an explicit
        ``claim_wait`` interval.
        """
        registration = self._lookup(fqdn)
        done = self.env.event()
        arrival = self.env.now if offered_at is None else offered_at
        if invocation_id is None:
            inv = Invocation(function=registration, arrival=arrival, args=args)
        else:
            inv = Invocation(
                function=registration,
                arrival=arrival,
                args=args,
                id=invocation_id,
            )
        if offered_at is not None:
            inv.offered_at = offered_at
            inv.claimed_at = self.env.now
        self.env.process(
            self.lifecycle.ingest(inv, done), name=f"ingest-{inv.id}"
        )
        return done

    def async_invoke_cookie(self, fqdn: str, args=None) -> str:
        """The paper's async API: fire and return a cookie immediately;
        poll :meth:`check_async_invocation` for the result."""
        cookie = self.results.register()
        done = self.async_invoke(fqdn, args)
        done.callbacks.append(
            lambda event: self.results.complete(cookie, event.value)
        )
        return cookie

    def check_async_invocation(self, cookie: str, collect: bool = True) -> AsyncResult:
        """Poll an async cookie; DONE results are collected (one-shot)."""
        return self.results.check(cookie, collect=collect)

    def _lookup(self, fqdn: str) -> FunctionRegistration:
        registration = self.registrations.get(fqdn)
        if registration is None:
            raise FunctionNotRegistered(fqdn)
        return registration

    # ------------------------------------------------------------- pipeline
    def _dispatcher(self) -> Generator:
        """The queue-monitor thread: regulator-gated dispatch loop.

        Pops the next :class:`~repro.core.lifecycle.InvocationContext`
        once the regulator grants a token, then hands it to the
        lifecycle's dispatched half in a fresh handler process.
        """
        while True:
            token = self.regulator.tokens.request()
            yield token
            ctx = yield self.queue.get()
            ctx.token = token
            ctx.inv.dispatched_at = self.env.now
            self.queue_policy.on_dispatch(ctx.inv)
            self.env.process(
                self.lifecycle.handle(ctx), name=f"handler-{ctx.inv.id}"
            )

    # ---------------------------------------------------------- telemetry
    def attach_telemetry(self, telemetry) -> None:
        """Register this worker with a :class:`repro.telemetry.Telemetry`
        pipeline (gauge sampling, latency histograms, span retention).
        Equivalent to ``telemetry.attach_worker(self)``."""
        telemetry.attach_worker(self)

    # ------------------------------------------------------------- status
    @property
    def dropped(self) -> int:
        """Invocations shed (admission / overflow); counted by the pipeline."""
        return self.lifecycle.dropped

    @property
    def timeouts(self) -> int:
        """Invocations killed at their execution limit."""
        return self.lifecycle.timeouts

    def status(self) -> dict:
        """Load/status snapshot, as served to the load balancer."""
        return {
            "name": self.name,
            "queue_length": len(self.queue),
            "running": self.load.running,
            "loadavg": self.load.loadavg,
            "normalized_load": self.load.normalized,
            "concurrency_limit": self.regulator.limit,
            "free_memory_mb": self.memory.level,
            "warm_containers": self.pool.available_count(),
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "async_pending": self.results.pending_count,
            "energy_joules": self.energy.joules,
        }
