"""Pluggable dispatch layer: how invocations find workers (push or pull).

See :mod:`repro.dispatch.base` for the contract,
:mod:`repro.dispatch.pull` for the shared-queue policies, and
:mod:`repro.dispatch.engine` for the claim loops that drive them.
"""

from .base import PULL, PUSH, DispatchPolicy, Offer
from .engine import PullEngine
from .pull import LocalityPullDispatch, PullDispatch
from .push import PushDispatch
from .registry import (
    PULL_POLICIES,
    PUSH_POLICIES,
    dispatch_policy_names,
    is_pull_policy,
    make_dispatch,
)

__all__ = [
    "PULL",
    "PUSH",
    "DispatchPolicy",
    "Offer",
    "PullEngine",
    "PullDispatch",
    "LocalityPullDispatch",
    "PushDispatch",
    "PULL_POLICIES",
    "PUSH_POLICIES",
    "dispatch_policy_names",
    "is_pull_policy",
    "make_dispatch",
]
