"""The dispatch-policy contract: how an invocation finds a worker.

Historically the placement decision lived inside the load balancer:
``LoadBalancingPolicy.pick()`` was called synchronously at the LB and the
chosen worker was *pushed* the invocation.  Pull-based schedulers (Hiku
and friends) invert that flow — idle workers *claim* work from a shared
logical queue — and the two shapes cannot share the pick() interface.

This package is the seam both shapes plug into.  A
:class:`DispatchPolicy` answers three questions:

* ``offer(offer)``    — the front door: an invocation has arrived, make it
  available for placement.  Push policies place it immediately and return
  the chosen worker name; pull policies enqueue it and return ``None``.
* ``claim(worker)``   — a worker with free capacity asks for work.  Pull
  policies hand back the next :class:`Offer` (or ``None`` when the queue
  has nothing for that worker); push policies always return ``None`` —
  their workers are assigned work, they never ask.
* ``on_complete(worker, offer)`` — the invocation finished (completed,
  dropped, or timed out); policies use it to update load accounting.

Workers are identified by name throughout; the cluster owns the actual
:class:`~repro.core.worker.Worker` objects.  Policies are pure control
logic over those names — they never import the worker/cluster layers,
which is what lets the layering guard keep this package at the
load-balancer tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["DispatchPolicy", "Offer", "PUSH", "PULL"]

PUSH = "push"
PULL = "pull"


@dataclass(slots=True)
class Offer:
    """One invocation offered to the dispatch layer.

    ``done`` is the cluster-level completion event handed back to the
    submitter; the engine driving the policy succeeds it with the final
    :class:`~repro.core.function.Invocation`.  ``claimed_at``/``claimed_by``
    are stamped by the engine when a worker receives the offer (after any
    claim latency), so claim-wait is always ``claimed_at - offered_at``.
    """

    fqdn: str
    args: Any
    offered_at: float
    done: Any
    claimed_at: Optional[float] = None
    claimed_by: Optional[str] = None
    meta: dict = field(default_factory=dict)


class DispatchPolicy:
    """Uniform contract for push and pull dispatch policies.

    ``kind`` is ``"push"`` or ``"pull"``; engines branch on it once at
    construction, never per invocation.
    """

    name = "dispatch"
    kind = PUSH

    def add_worker(self, name: str) -> None:
        raise NotImplementedError

    def remove_worker(self, name: str) -> None:
        raise NotImplementedError

    def offer(self, offer: Offer) -> Optional[str]:
        """Make an invocation available; return a worker name (push) or
        ``None`` (pull: a claim loop will collect it)."""
        raise NotImplementedError

    def claim(self, worker: str) -> Optional[Offer]:
        """Hand the next offer to an idle worker, or ``None`` if there is
        nothing (for that worker) to claim."""
        raise NotImplementedError

    def on_complete(self, worker: str, offer: Optional[Offer]) -> None:
        """Invocation finished (any outcome) — release policy accounting."""
