"""The pull engine: per-worker claim loops over a shared dispatch queue.

One claim loop runs per worker.  It gates itself on the worker's own
concurrency (a FIFO :class:`~repro.sim.resources.Resource` with one slot
per effective-concurrency unit), so a worker only asks for work it can
start immediately — the defining property of pull scheduling.  The loop:

1. acquires a free slot,
2. claims the next offer from the policy (parking on ``policy.wait``
   when the queue is empty, re-claiming on wakeup),
3. pays the claim latency (one queue round-trip, modeled like
   ``rpc_latency``),
4. hands the invocation to the worker with its original offer timestamp
   so the worker-side lifecycle can attribute the claim wait.

Slots are released through the lifecycle's ``dispatch_seam`` — the
engine registers itself on each worker's stage tracker and is called
from the terminal ``close()`` for *every* outcome (complete, drop,
timeout), so capacity can never leak on error paths and the policy's
``on_complete`` always fires exactly once per claimed offer.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.core import Environment, Event
from ..sim.resources import Resource
from .base import Offer
from .pull import PullDispatch

__all__ = ["PullEngine"]


class PullEngine:
    """Drives a pull policy against a set of workers.

    ``workers`` maps worker name -> worker object (duck-typed: needs
    ``config.effective_concurrency``, ``lifecycle`` and
    ``async_invoke``); ``on_claim`` is an optional hook the cluster uses
    for placement accounting.
    """

    def __init__(self, env: Environment, workers: dict, policy: PullDispatch,
                 claim_latency: float,
                 on_claim: Optional[Callable[[Offer], None]] = None):
        if claim_latency < 0:
            raise ValueError(f"claim latency must be >= 0, got {claim_latency}")
        self.env = env
        self.workers = workers
        self.policy = policy
        self.claim_latency = float(claim_latency)
        self.on_claim = on_claim
        self.placements = 0
        self._slots: dict[str, Resource] = {}
        # in-flight claims keyed by the worker-level done event, which is
        # the same object the lifecycle carries as ``ctx.done``.
        self._claims: dict = {}
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for name, worker in self.workers.items():
            worker.lifecycle.dispatch_seam = self
            self._slots[name] = Resource(
                self.env, capacity=worker.config.effective_concurrency
            )
            self.env.process(self._claim_loop(name), name=f"claim-{name}")

    # -- front door ------------------------------------------------------
    def submit(self, fqdn: str, args=None) -> Event:
        """Offer an invocation to the queue; returns the completion event."""
        done = Event(self.env)
        offer = Offer(fqdn=fqdn, args=args, offered_at=self.env.now, done=done)
        self.policy.offer(offer)
        return done

    # -- claim side ------------------------------------------------------
    def _claim_loop(self, name: str):
        env = self.env
        policy = self.policy
        worker = self.workers[name]
        slots = self._slots[name]
        latency = self.claim_latency
        while True:
            request = slots.request()
            yield request
            offer = policy.claim(name)
            while offer is None:
                # Empty queue (or a faster worker won the race for the
                # offer that woke us): park until the next offer lands.
                yield policy.wait(name)
                offer = policy.claim(name)
            if latency > 0:
                yield env.timeout(latency)
            offer.claimed_at = env.now
            offer.claimed_by = name
            self.placements += 1
            if self.on_claim is not None:
                self.on_claim(offer)
            inner = worker.async_invoke(
                offer.fqdn, offer.args, offered_at=offer.offered_at
            )
            self._claims[inner] = (name, request, offer)
            inner.callbacks.append(self._finish)

    # -- completion (the lifecycle's dispatch seam) ----------------------
    def on_complete(self, ctx) -> None:
        """Called from ``StageTracker.close`` for every terminal outcome."""
        entry = self._claims.get(ctx.done)
        if entry is None:
            return
        name, request, offer = entry
        self._slots[name].release(request)
        self.policy.on_complete(name, offer)

    def _finish(self, event: Event) -> None:
        entry = self._claims.pop(event, None)
        if entry is None:  # pragma: no cover - close() always precedes
            return
        _name, _request, offer = entry
        offer.done.succeed(event.value)
