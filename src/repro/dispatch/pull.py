"""Pull dispatch: idle workers claim from a shared logical queue.

The queue is *logical* — it lives at the dispatch layer, not on any
worker.  Workers run claim loops (see :mod:`repro.dispatch.engine`):
whenever a worker has free capacity it asks ``claim(name)``; if the
queue is empty it parks on ``wait(name)`` and is woken by the next
``offer``.  Wakeups are FIFO over parked workers and the DES kernel is
single-threaded, so claim resolution is deterministic: ties at equal
simulated time resolve in event-insertion order.

A woken worker re-checks ``claim`` in a loop — another worker that was
mid-claim can legitimately take the offer that triggered the wakeup, in
which case the loser simply parks again.  That retry discipline (rather
than handing the offer to the waiter directly) is what keeps the queue
work-conserving under simultaneous idle workers.

:class:`LocalityPullDispatch` adds one refinement: a claiming worker
scans the queue for the first offer whose function it already has warm
(via a ``warm_fn`` predicate supplied by the cluster) and only falls
back to the head when nothing matches — strict FIFO is traded for fewer
cold starts, but never for idleness.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim.core import Environment, Event
from .base import PULL, DispatchPolicy, Offer

__all__ = ["PullDispatch", "LocalityPullDispatch"]


class PullDispatch(DispatchPolicy):
    """Shared FIFO queue that idle workers claim from."""

    kind = PULL

    def __init__(self, env: Environment, name: str = "pull"):
        self.env = env
        self.name = name
        self._workers: list[str] = []
        self._queue: deque[Offer] = deque()
        # worker name -> parked Event; dict preserves insertion order, so
        # wakeups are FIFO over parking order.
        self._waiters: dict[str, Event] = {}
        self.offered = 0
        self.claimed = 0

    # -- membership ------------------------------------------------------
    def add_worker(self, name: str) -> None:
        if name not in self._workers:
            self._workers.append(name)

    def remove_worker(self, name: str) -> None:
        if name not in self._workers:
            raise ValueError(f"worker {name!r} not registered")
        self._workers.remove(name)
        # A parked claim loop for a removed worker must never wake again.
        self._waiters.pop(name, None)

    # -- queue -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, offer: Offer) -> Optional[str]:
        self._queue.append(offer)
        self.offered += 1
        if self._waiters:
            name = next(iter(self._waiters))
            self._waiters.pop(name).succeed()
        return None

    def claim(self, worker: str) -> Optional[Offer]:
        if worker not in self._workers or not self._queue:
            return None
        offer = self._select(worker)
        if offer is not None:
            self.claimed += 1
        return offer

    def _select(self, worker: str) -> Optional[Offer]:
        return self._queue.popleft()

    def wait(self, worker: str) -> Event:
        """Park ``worker`` until the next offer; returns the wake event."""
        if worker in self._waiters:
            raise RuntimeError(f"worker {worker!r} is already parked")
        event = Event(self.env)
        self._waiters[worker] = event
        return event

    def on_complete(self, worker: str, offer: Optional[Offer]) -> None:
        return None


class LocalityPullDispatch(PullDispatch):
    """Pull queue that prefers offers the claiming worker has warm.

    ``warm_fn(worker_name, fqdn)`` is supplied by the cluster (it closes
    over the container pools); the policy itself stays ignorant of the
    worker layer.
    """

    def __init__(self, env: Environment,
                 warm_fn: Callable[[str, str], bool],
                 name: str = "pull_local"):
        super().__init__(env, name=name)
        self.warm_fn = warm_fn
        self.locality_hits = 0

    def _select(self, worker: str) -> Optional[Offer]:
        queue = self._queue
        warm = self.warm_fn
        for index, offer in enumerate(queue):
            if warm(worker, offer.fqdn):
                if index:
                    del queue[index]
                    self.locality_hits += 1
                    return offer
                self.locality_hits += 1
                return queue.popleft()
        # Nothing warm: stay work-conserving and take the head.
        return queue.popleft()
