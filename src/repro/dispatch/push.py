"""Push dispatch: the classic pick-then-forward shape as a thin adapter.

The existing balancers (round-robin, least-loaded, CH-BL) already *are*
push policies; this adapter re-expresses them behind the
:class:`~repro.dispatch.base.DispatchPolicy` contract without changing a
single decision.  The wrapped balancer stays reachable as ``.balancer``
on purpose: the serial cluster keeps calling ``balancer.pick()`` through
the historical statement sequence, which is what keeps pre-refactor runs
bit-for-bit identical (the golden A/B fixture pins this).
"""

from __future__ import annotations

from typing import Optional

from .base import PUSH, DispatchPolicy, Offer

__all__ = ["PushDispatch"]


class PushDispatch(DispatchPolicy):
    """Adapter wrapping a ``LoadBalancingPolicy``-shaped balancer.

    The balancer is duck-typed: anything with ``add_worker`` /
    ``remove_worker`` / ``pick`` and a ``name`` works, so this module
    never imports the loadbalancer package (no import cycle, and the
    dispatch layer stays self-contained).
    """

    kind = PUSH

    def __init__(self, balancer):
        self.balancer = balancer
        self.name = balancer.name

    def add_worker(self, name: str) -> None:
        self.balancer.add_worker(name)

    def remove_worker(self, name: str) -> None:
        self.balancer.remove_worker(name)

    def pick(self, fqdn: str) -> str:
        return self.balancer.pick(fqdn)

    def offer(self, offer: Offer) -> Optional[str]:
        # Push places at offer time: the decision *is* the pick.
        target = self.balancer.pick(offer.fqdn)
        offer.claimed_at = offer.offered_at
        offer.claimed_by = target
        return target

    def claim(self, worker: str) -> Optional[Offer]:
        # Push workers are assigned work; they never ask for it.
        return None

    def on_complete(self, worker: str, offer: Optional[Offer]) -> None:
        return None

    @property
    def forwards(self) -> int:
        return getattr(self.balancer, "forwards", 0)
