"""Name -> dispatch policy factory: the single registry for the zoo.

``make_dispatch`` accepts every balancer name ``make_balancer`` knows
(wrapping it in a :class:`PushDispatch`) plus the pull policies.  The
load-balancer import is deferred into the factory body: the dispatch
package sits at the same layer as ``loadbalancer`` and the cluster
imports us at module level, so a module-level import here would create
a cycle.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.core import Environment
from .base import DispatchPolicy
from .pull import LocalityPullDispatch, PullDispatch
from .push import PushDispatch

__all__ = [
    "PULL_POLICIES",
    "PUSH_POLICIES",
    "dispatch_policy_names",
    "is_pull_policy",
    "make_dispatch",
]

# Canonical names; make_dispatch lowercases its input before lookup.
PUSH_POLICIES = frozenset({"ch_bl", "chbl", "round_robin", "least_loaded"})
PULL_POLICIES = frozenset({"pull", "pull_local"})


def is_pull_policy(name: str) -> bool:
    return str(name).lower() in PULL_POLICIES


def dispatch_policy_names() -> tuple[str, ...]:
    """Every name ``make_dispatch`` accepts, sorted (for tables/tests)."""
    return tuple(sorted(PUSH_POLICIES | PULL_POLICIES))


def make_dispatch(name: str, *,
                  env: Optional[Environment] = None,
                  load_fn: Optional[Callable[[str], float]] = None,
                  bound_factor: float = 1.2,
                  warm_fn: Optional[Callable[[str, str], bool]] = None,
                  ) -> DispatchPolicy:
    """Build a dispatch policy by name.

    Push names take ``load_fn``/``bound_factor`` (forwarded to
    ``make_balancer``); pull names need ``env`` (the queue parks workers
    on kernel events) and ``pull_local`` additionally needs ``warm_fn``.
    """
    key = str(name).lower()
    if key in PUSH_POLICIES:
        from ..loadbalancer.policies import make_balancer  # deferred: cycle

        return PushDispatch(make_balancer(key, load_fn, bound_factor=bound_factor))
    if key in PULL_POLICIES:
        if env is None:
            raise ValueError(f"pull policy {name!r} requires env=")
        if key == "pull":
            return PullDispatch(env)
        if warm_fn is None:
            raise ValueError("pull_local requires warm_fn=(worker, fqdn) -> bool")
        return LocalityPullDispatch(env, warm_fn)
    raise ValueError(
        f"unknown dispatch policy {name!r}; choose from {sorted(dispatch_policy_names())}"
    )
