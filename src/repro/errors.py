"""Exception hierarchy for the repro control plane."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FunctionNotRegistered",
    "DuplicateRegistration",
    "InvocationDropped",
    "ContainerError",
    "InsufficientResources",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all control-plane errors."""


class FunctionNotRegistered(ReproError):
    """An invocation referenced a function name that was never registered."""

    def __init__(self, name: str):
        super().__init__(f"function {name!r} is not registered")
        self.name = name


class DuplicateRegistration(ReproError):
    """A function name was registered twice."""

    def __init__(self, name: str):
        super().__init__(f"function {name!r} is already registered")
        self.name = name


class InvocationDropped(ReproError):
    """The platform shed this invocation (queue overflow / admission)."""

    def __init__(self, function: str, reason: str = "queue overflow"):
        super().__init__(f"invocation of {function!r} dropped: {reason}")
        self.function = function
        self.reason = reason


class ContainerError(ReproError):
    """A container backend operation failed."""


class InsufficientResources(ReproError):
    """A request exceeds what the worker can ever satisfy."""


class ConfigurationError(ReproError):
    """Invalid configuration values."""
