"""Experiment harnesses: one module per paper table/figure plus ablations."""

from .azure_scale import AzureScaleReport, AzureScaleRow, run_azure_scale
from .cluster_study import ClusterStudyResult, run_cluster_lb_sweep, run_cluster_study
from .defaults import FULL, MEDIUM, SMALL, Scale
from .fig1_overhead_scaling import Fig1Row, fig1_rows, run_fig1
from .fig6_litmus import LITMUS_WORKLOADS, fig6_rows, litmus_plan, run_litmus
from .fig7_faasbench import fig7_rows, run_faasbench, warm_hit_ratios
from .fig8_dynamic import DynamicSizingOutcome, run_fig8
from .keepalive_sweep import fig4_rows, fig5_rows, make_traces, run_keepalive_sweep
from .lb_ablation import (
    DISPATCH_RACE_SCENARIOS,
    run_dispatch_race,
    run_lb_ablation,
    run_lb_policy_comparison,
)
from .queue_ablation import (
    run_bypass_ablation,
    run_coldpath_ablation,
    run_queue_policy_ablation,
    run_regulator_ablation,
)
from .report import format_table, print_table
from .table2_breakdown import PAPER_TABLE2_MS, run_table2
from .tables import PAPER_TABLE3, appendix_timeseries, table3_rows, table4_rows

__all__ = [
    "AzureScaleReport",
    "AzureScaleRow",
    "run_azure_scale",
    "ClusterStudyResult",
    "run_cluster_study",
    "run_cluster_lb_sweep",
    "FULL",
    "MEDIUM",
    "SMALL",
    "Scale",
    "Fig1Row",
    "fig1_rows",
    "run_fig1",
    "LITMUS_WORKLOADS",
    "fig6_rows",
    "litmus_plan",
    "run_litmus",
    "fig7_rows",
    "run_faasbench",
    "warm_hit_ratios",
    "DynamicSizingOutcome",
    "run_fig8",
    "fig4_rows",
    "fig5_rows",
    "make_traces",
    "run_keepalive_sweep",
    "DISPATCH_RACE_SCENARIOS",
    "run_dispatch_race",
    "run_lb_ablation",
    "run_lb_policy_comparison",
    "run_bypass_ablation",
    "run_coldpath_ablation",
    "run_queue_policy_ablation",
    "run_regulator_ablation",
    "format_table",
    "print_table",
    "PAPER_TABLE2_MS",
    "run_table2",
    "PAPER_TABLE3",
    "appendix_timeseries",
    "table3_rows",
    "table4_rows",
]
