"""Azure-scale replay throughput: the sharded seam under a day-scale trace.

The cluster study answers "does the sharded engine reproduce the serial
run bit for bit"; this runner answers "how fast, and in how much memory,
does it chew through an Azure-shaped trace".  It expands a dataset in the
Azure CSV schema (a directory from ``repro export-azure`` / the real
download, or a synthetic one generated in-process), streams the resulting
invocation plan through the cluster once per requested shard count — the
serial engine for one shard, the epoch-batched seam for more — and
records a ``BENCH_azure_scale.json`` scaling curve at the repo root:
wall-clock invocations/second, peak RSS, the seam's message accounting,
and — on sharded rows — the coordinator flight recorder's totals (stall
vs overlapped wall-clock at the seam, payload bytes, merge time) per row,
with the reduced result summary asserted equal across every row (the
determinism contract, restated as data).

Machine provenance follows the repo's benchmark convention: the record
carries ``cpu_count``, and on machines with fewer cores than the largest
shard count a ``WARNING`` is written into the JSON itself — a scaling
curve measured on one core is seam overhead wearing a speedup label.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ..cluster_shard import ShardingUnavailable, run_sharded_replay
from ..core.config import WorkerConfig
from ..core.function import FunctionRegistration
from ..loadbalancer.cluster import Cluster
from ..loadgen.openloop import plan_from_trace, replay_plan
from ..metrics.stats import percentile
from ..sim.core import Environment
from ..trace.azure import AzureTraceConfig, generate_dataset
from ..trace.azure_io import load_azure_csvs
from ..trace.replay import expand_dataset

__all__ = ["AzureScaleRow", "AzureScaleReport", "run_azure_scale"]

BENCH_NAME = "BENCH_azure_scale.json"


@dataclass(frozen=True)
class AzureScaleRow:
    """One shard count's replay measurement."""

    shards: int
    engine: str                    # "serial" or "sharded"
    wall_s: float
    invocations: int
    inv_per_sec: float
    peak_rss_mb: float             # process+children high-water mark (see note)
    summary: dict                  # reduced outcome, equal across rows
    seam_stats: Optional[dict] = None
    flight: Optional[dict] = None  # FlightRecorder totals (sharded rows)
    health: Optional[dict] = None  # SLO violation/alert tallies (opt-in)
    fallback_reason: Optional[str] = None

    def as_dict(self) -> dict:
        out = {
            "shards": self.shards,
            "engine": self.engine,
            "wall_s": round(self.wall_s, 3),
            "invocations": self.invocations,
            "inv_per_sec": round(self.inv_per_sec, 1),
            "peak_rss_mb": round(self.peak_rss_mb, 1),
        }
        if self.seam_stats is not None:
            out["seam_stats"] = dict(self.seam_stats)
        if self.health is not None:
            out["health"] = dict(self.health)
        if self.flight is not None:
            out["flight"] = {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in self.flight.items()
            }
        if self.fallback_reason is not None:
            out["fallback_reason"] = self.fallback_reason
        return out


@dataclass(frozen=True)
class AzureScaleReport:
    """The full scaling curve plus the shared reduced summary."""

    rows: list = field(default_factory=list)       # AzureScaleRow per shard count
    summary: dict = field(default_factory=dict)    # the (shared) reduced outcome
    summaries_match: bool = True
    dataset: dict = field(default_factory=dict)
    record: dict = field(default_factory=dict)     # what was written to disk


def _peak_rss_mb() -> float:
    """High-water-mark RSS of this process and exited children, in MB.

    ``ru_maxrss`` never decreases over a process lifetime, so in a
    multi-row run later rows inherit earlier peaks; rows are ordered by
    shard count precisely so the column stays interpretable (each row is
    an upper bound for its own run).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    # Linux reports KB; macOS reports bytes.
    scale = 1024.0 if os.uname().sysname != "Darwin" else 1024.0 * 1024.0
    return peak / scale


def _reduce(rows: list) -> dict:
    """The shared reduced outcome from (k, dropped, completed, cold, e2e,
    overhead) tuples — the equality surface across engines."""
    done = [r for r in rows if not r[1] and r[2]]
    e2e = [r[4] for r in done]
    overheads = [r[5] for r in done]
    return {
        "invocations": len(rows),
        "completed": len(done),
        "dropped": sum(1 for r in rows if r[1]),
        "cold": sum(1 for r in done if r[3]),
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
        "overhead_p50_ms": percentile(overheads, 50) * 1000.0,
    }


def _run_serial(plan, registrations, num_workers, config, lb_policy,
                status_interval, grace):
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=config,
        lb_policy=lb_policy,
        status_interval=status_interval,
    )
    cluster.start()
    for reg in registrations:
        cluster.register_sync(reg)
    invocations = replay_plan(env, cluster, plan, grace=grace)
    cluster.stop()
    # replay_plan returns triggered invocations in plan order, so the
    # enumeration index is the plan index k whenever nothing was left
    # untriggered (an untriggered event would fail summaries_match too).
    return [
        (k, bool(i.dropped), i.completed_at is not None, bool(i.cold),
         i.e2e_time, i.overhead)
        for k, i in enumerate(invocations)
    ], None, None


def _run_sharded(plan, registrations, num_workers, config, lb_policy,
                 status_interval, grace, shards, chunk_size):
    outcome = run_sharded_replay(
        plan,
        num_workers=num_workers,
        shards=shards,
        registrations=registrations,
        config=config,
        lb_policy=lb_policy,
        status_interval=status_interval,
        grace=grace,
        chunk_size=chunk_size,
        flight_recorder=True,
    )
    flight = (
        outcome.flight_log["totals"] if outcome.flight_log is not None else None
    )
    return list(outcome.summaries), outcome.seam_stats, flight


def run_azure_scale(
    dataset_dir: Optional[Union[str, Path]] = None,
    *,
    num_functions: int = 120,
    minutes: int = 60,
    seed: int = 0xFAA5,
    num_workers: int = 8,
    cores_per_worker: int = 2,
    memory_per_worker_mb: float = 8192.0,
    shard_counts: Sequence[int] = (1, 2),
    lb_policy: str = "ch_bl",
    status_interval: Optional[float] = 2.0,
    grace: float = 300.0,
    chunk_size: Optional[int] = None,
    out_path: Optional[Union[str, Path]] = None,
    health=False,
) -> AzureScaleReport:
    """Replay an Azure-schema dataset at each shard count; record the curve.

    ``dataset_dir`` points at invocations/durations/memory CSVs (the
    ``repro export-azure`` output or the real Azure Functions release);
    ``None`` generates a synthetic dataset of ``num_functions`` over
    ``minutes`` in-process.  The expanded trace and invocation plan are
    built **once** and reused for every row — only the replay is timed.
    Shard counts of 1 use the single-process engine; larger counts go
    through the epoch-batched seam, falling back (and saying so in the
    row) when shard processes cannot start.  Writes the record to
    ``out_path`` (default ``BENCH_azure_scale.json`` next to the repo's
    other BENCH files) and returns it as an :class:`AzureScaleReport`.
    ``health`` (``True`` or a :class:`~repro.health.HealthConfig`) grades
    every row's raw outcomes against the SLO engine *outside* the timed
    region, adding violation/alert tallies to each row.
    """
    health_cfg = None
    if health:
        from ..health import HealthConfig, normalize_health

        health_cfg = normalize_health(health) or HealthConfig()
    if dataset_dir is not None:
        dataset = load_azure_csvs(dataset_dir)
        source = str(dataset_dir)
    else:
        dataset = generate_dataset(AzureTraceConfig(
            num_functions=num_functions,
            duration_minutes=minutes,
            seed=seed,
        ))
        source = "synthetic"
    trace = expand_dataset(dataset, name="azure-scale")
    plan = plan_from_trace(trace)
    registrations = [
        FunctionRegistration(
            name=f.name,
            memory_mb=f.memory_mb,
            warm_time=f.warm_time,
            cold_time=f.cold_time,
        )
        for f in trace.functions
    ]
    config = WorkerConfig(
        cores=cores_per_worker,
        memory_mb=memory_per_worker_mb,
        backend="null",
        keepalive_policy="GD",
        seed=seed,
    )

    rows: list[AzureScaleRow] = []
    for shards in sorted(set(int(s) for s in shard_counts)):
        if shards < 1:
            raise ValueError("shard counts must be >= 1")
        engine = "serial" if shards == 1 else "sharded"
        fallback = None
        seam_stats = None
        flight = None
        t0 = time.perf_counter()
        if shards == 1:
            raw, seam_stats, flight = _run_serial(
                plan, registrations, num_workers, config, lb_policy,
                status_interval, grace,
            )
        else:
            try:
                raw, seam_stats, flight = _run_sharded(
                    plan, registrations, num_workers, config, lb_policy,
                    status_interval, grace, shards, chunk_size,
                )
            except ShardingUnavailable as exc:
                fallback = str(exc)
                engine = "serial"
                raw, seam_stats, flight = _run_serial(
                    plan, registrations, num_workers, config, lb_policy,
                    status_interval, grace,
                )
        wall = time.perf_counter() - t0
        summary = _reduce(raw)
        row_health = None
        if health_cfg is not None:
            # Graded after the clock stops: SLO accounting is reporting,
            # not replay work, and must not skew the throughput curve.
            from ..health import summaries_health

            row_health = summaries_health(
                plan.fqdns, plan.timestamps, raw, config=health_cfg,
            )
        rows.append(AzureScaleRow(
            shards=shards,
            engine=engine,
            wall_s=wall,
            invocations=summary["invocations"],
            inv_per_sec=(summary["invocations"] / wall) if wall > 0 else 0.0,
            peak_rss_mb=_peak_rss_mb(),
            summary=summary,
            seam_stats=seam_stats,
            flight=flight,
            health=row_health,
            fallback_reason=fallback,
        ))

    summaries_match = all(r.summary == rows[0].summary for r in rows)
    cores = os.cpu_count() or 1
    max_shards = max((r.shards for r in rows), default=1)
    record = {
        "benchmark": "azure-scale sharded replay",
        "dataset": {
            "source": source,
            "functions": dataset.num_functions,
            "invocations": len(plan),
            "duration_s": plan.duration,
        },
        "cpu_count": cores,
        "num_workers": num_workers,
        "cores_per_worker": cores_per_worker,
        "lb_policy": lb_policy,
        "status_interval": status_interval,
        "rows": [r.as_dict() for r in rows],
        "summaries_match": summaries_match,
        "summary": dict(rows[0].summary) if rows else {},
        "scaling_meaningful": cores >= max_shards,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rss_note": (
            "peak_rss_mb is the ru_maxrss high-water mark of the runner and "
            "its exited shard children; it never decreases, so later rows "
            "inherit earlier rows' peaks"
        ),
    }
    if cores < max_shards:
        record["WARNING"] = (
            f"MEASURED ON A {cores}-CORE MACHINE: {max_shards} shard "
            "processes cannot run concurrently, so the throughput curve "
            "measures seam IPC overhead, NOT parallel scaling. Re-record "
            "on a machine with >= {0} cores before comparing.".format(max_shards)
        )
    if out_path is None:
        # src/repro/experiments/azure_scale.py -> repo root.
        out_path = Path(__file__).resolve().parents[3] / BENCH_NAME
    Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return AzureScaleReport(
        rows=rows,
        summary=dict(rows[0].summary) if rows else {},
        summaries_match=summaries_match,
        dataset=record["dataset"],
        record=record,
    )
