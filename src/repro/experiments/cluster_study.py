"""Full-stack cluster study: an Azure-like day on a CH-BL cluster.

Not a single paper figure, but the composition the paper's platform
exists for: a sampled Azure-like trace, re-profiled onto FunctionBench
timings, load-fitted with Little's law, replayed against a cluster of
Ilúvatar workers behind consistent hashing with bounded loads — reporting
the end-to-end health metrics a provider watches (cold ratio, drops,
latency percentiles, locality, per-worker balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cache import CacheLike
from ..core.config import WorkerConfig
from ..core.function import FunctionRegistration
from ..loadbalancer.cluster import Cluster
from ..loadgen.openloop import plan_from_trace, replay_plan
from ..metrics.stats import percentile
from ..parallel.pool import run_parallel
from ..parallel.tasks import cluster_study_cell
from ..sim.core import Environment
from ..trace.model import Trace
from ..trace.scaling import little_load, scale_to_load
from ..workloads.mapping import map_trace_to_catalog
from .defaults import MEDIUM, Scale
from .keepalive_sweep import make_traces

__all__ = ["ClusterStudyResult", "run_cluster_study", "run_cluster_lb_sweep"]


@dataclass(frozen=True)
class ClusterStudyResult:
    """Cluster-wide outcome of the study."""

    invocations: int
    completed: int
    dropped: int
    cold: int
    e2e_p50_ms: float
    e2e_p99_ms: float
    overhead_p50_ms: float
    forwards: int
    placements: int
    per_worker_invocations: dict
    total_load: float

    @property
    def cold_ratio(self) -> float:
        return self.cold / self.completed if self.completed else float("nan")

    @property
    def drop_ratio(self) -> float:
        return self.dropped / self.invocations if self.invocations else float("nan")

    def as_dict(self) -> dict:
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "dropped": self.dropped,
            "cold_ratio": self.cold_ratio,
            "e2e_p50_ms": self.e2e_p50_ms,
            "e2e_p99_ms": self.e2e_p99_ms,
            "overhead_p50_ms": self.overhead_p50_ms,
            "forwards": self.forwards,
            "placements": self.placements,
            "littles_load": self.total_load,
        }


def run_cluster_study(
    scale: Scale = MEDIUM,
    trace: Optional[Trace] = None,
    num_workers: int = 4,
    cores_per_worker: int = 8,
    memory_per_worker_mb: float = 8192.0,
    target_load_fraction: float = 0.6,
    duration_cap: float = 1800.0,
    lb_policy: str = "ch_bl",
    cache: CacheLike = None,
    telemetry_dir: Optional[str] = None,
) -> ClusterStudyResult:
    """Replay (a clip of) the representative trace on a cluster.

    ``target_load_fraction`` positions the Little's-law load relative to
    total cluster cores (0.6 = comfortably loaded, not saturated).
    ``telemetry_dir``, when set, attaches the opt-in telemetry pipeline
    and exports the run directory (timeseries, spans, records, metrics,
    summary) there after the replay.
    """
    if not 0 < target_load_fraction:
        raise ValueError("target_load_fraction must be positive")
    if trace is None:
        trace = make_traces(scale, cache=cache)["representative"]
    if trace.duration > duration_cap:
        trace = trace.clipped(duration_cap, name=f"{trace.name}-study")
    trace = map_trace_to_catalog(trace)
    target = target_load_fraction * num_workers * cores_per_worker
    trace = scale_to_load(trace, target_load=target)

    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=WorkerConfig(
            cores=cores_per_worker,
            memory_mb=memory_per_worker_mb,
            backend="null",
            keepalive_policy="GD",
            seed=scale.seed,
        ),
        lb_policy=lb_policy,
    )
    telemetry = None
    if telemetry_dir is not None:
        # Deferred import: the pipeline only loads when somebody opts in.
        from ..telemetry import Telemetry

        telemetry = Telemetry(env)
        cluster.attach_telemetry(telemetry)
        telemetry.start()
    cluster.start()
    for f in trace.functions:
        cluster.register_sync(
            FunctionRegistration(
                name=f.name,
                memory_mb=f.memory_mb,
                warm_time=f.warm_time,
                cold_time=f.cold_time,
            )
        )
    plan = plan_from_trace(trace)
    invocations = replay_plan(env, cluster, plan, grace=300.0)
    cluster.stop()
    if telemetry is not None:
        telemetry.stop()
        telemetry.export(telemetry_dir)

    done = [i for i in invocations if not i.dropped and i.completed_at]
    e2e = [i.e2e_time for i in done]
    overheads = [i.overhead for i in done]
    per_worker = {
        name: len(w.metrics.records) for name, w in cluster.workers.items()
    }
    return ClusterStudyResult(
        invocations=len(invocations),
        completed=len(done),
        dropped=sum(1 for i in invocations if i.dropped),
        cold=sum(1 for i in done if i.cold),
        e2e_p50_ms=percentile(e2e, 50) * 1000.0,
        e2e_p99_ms=percentile(e2e, 99) * 1000.0,
        overhead_p50_ms=percentile(overheads, 50) * 1000.0,
        forwards=cluster.status()["forwards"],
        placements=cluster.placements,
        per_worker_invocations=per_worker,
        total_load=little_load(trace),
    )


def run_cluster_lb_sweep(
    scale: Scale = MEDIUM,
    lb_policies: Sequence[str] = ("ch_bl", "round_robin", "least_loaded"),
    trace: Optional[Trace] = None,
    num_workers: int = 4,
    cores_per_worker: int = 8,
    memory_per_worker_mb: float = 8192.0,
    target_load_fraction: float = 0.6,
    duration_cap: float = 1800.0,
    n_jobs: Optional[int] = None,
    cache: CacheLike = None,
) -> list[dict]:
    """The full-stack study repeated per LB policy, one process per run.

    The (expensive) trace generates once in the parent and ships to each
    worker via the pool initializer; every policy then replays the same
    invocation sequence.  Returns one row per policy in ``lb_policies``
    order.
    """
    if trace is None:
        trace = make_traces(scale, cache=cache)["representative"]
    cells = [
        (policy, num_workers, cores_per_worker, memory_per_worker_mb,
         target_load_fraction, duration_cap)
        for policy in lb_policies
    ]
    results = run_parallel(cluster_study_cell, cells, n_jobs=n_jobs, shared=trace)
    return [
        {"lb_policy": policy, **result.as_dict()}
        for policy, result in zip(lb_policies, results)
    ]
