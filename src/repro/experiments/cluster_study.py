"""Full-stack cluster study: an Azure-like day on a CH-BL cluster.

Not a single paper figure, but the composition the paper's platform
exists for: a sampled Azure-like trace, re-profiled onto FunctionBench
timings, load-fitted with Little's law, replayed against a cluster of
Ilúvatar workers behind consistent hashing with bounded loads — reporting
the end-to-end health metrics a provider watches (cold ratio, drops,
latency percentiles, locality, per-worker balance).
"""

from __future__ import annotations

import tempfile
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cache import CacheLike
from ..cluster_shard import ShardingUnavailable, resolve_shards, run_sharded_replay
from ..core.config import WorkerConfig
from ..core.function import FunctionRegistration
from ..loadbalancer.cluster import Cluster
from ..loadgen.openloop import plan_from_trace, replay_plan
from ..metrics.stats import percentile
from ..parallel.pool import run_parallel
from ..parallel.tasks import cluster_study_cell
from ..sim.core import Environment
from ..trace.model import Trace
from ..trace.scaling import little_load, scale_to_load
from ..workloads.mapping import map_trace_to_catalog
from .defaults import MEDIUM, Scale
from .keepalive_sweep import make_traces

__all__ = ["ClusterStudyResult", "run_cluster_study", "run_cluster_lb_sweep"]


@dataclass(frozen=True)
class ClusterStudyResult:
    """Cluster-wide outcome of the study."""

    invocations: int
    completed: int
    dropped: int
    cold: int
    e2e_p50_ms: float
    e2e_p99_ms: float
    overhead_p50_ms: float
    forwards: int
    placements: int
    per_worker_invocations: dict
    total_load: float

    @property
    def cold_ratio(self) -> float:
        return self.cold / self.completed if self.completed else float("nan")

    @property
    def drop_ratio(self) -> float:
        return self.dropped / self.invocations if self.invocations else float("nan")

    def as_dict(self) -> dict:
        return {
            "invocations": self.invocations,
            "completed": self.completed,
            "dropped": self.dropped,
            "cold_ratio": self.cold_ratio,
            "e2e_p50_ms": self.e2e_p50_ms,
            "e2e_p99_ms": self.e2e_p99_ms,
            "overhead_p50_ms": self.overhead_p50_ms,
            "forwards": self.forwards,
            "placements": self.placements,
            "littles_load": self.total_load,
        }


def _run_study_sharded(
    trace: Trace,
    plan,
    num_workers: int,
    config: WorkerConfig,
    lb_policy: str,
    status_interval: Optional[float],
    shards: int,
    telemetry_dir: Optional[str],
    trace_on: bool = False,
    health=None,
) -> ClusterStudyResult:
    """The sharded engine's outcome, adapted to :class:`ClusterStudyResult`."""
    telemetry_config = None
    live_path = None
    if telemetry_dir is not None:
        from ..telemetry import TelemetryConfig

        telemetry_config = TelemetryConfig(trace=trace_on, health=health)
        if telemetry_config.health is not None:
            from pathlib import Path

            from ..telemetry import RUN_FILES

            live_path = Path(telemetry_dir) / RUN_FILES["live"]
    registrations = [
        FunctionRegistration(
            name=f.name,
            memory_mb=f.memory_mb,
            warm_time=f.warm_time,
            cold_time=f.cold_time,
        )
        for f in trace.functions
    ]
    spool = None
    if telemetry_config is not None:
        # Stream the shards' record/span/breakdown chunks through an
        # on-disk spool instead of coordinator RAM; the spool lives only
        # until the run directory is written.
        spool = tempfile.TemporaryDirectory(prefix="repro-shard-spool-")
    try:
        outcome = run_sharded_replay(
            plan,
            num_workers=num_workers,
            shards=shards,
            registrations=registrations,
            config=config,
            lb_policy=lb_policy,
            status_interval=status_interval,
            grace=300.0,
            telemetry_config=telemetry_config,
            spool_dir=spool.name if spool is not None else None,
            flight_recorder=trace_on,
            live_path=live_path,
        )
        if outcome.telemetry is not None:
            outcome.telemetry.export(telemetry_dir)
            outcome.telemetry.cleanup()
    finally:
        if spool is not None:
            spool.cleanup()
    # Summaries arrive in arrival order, mirroring replay_plan's return.
    done = [s for s in outcome.summaries if not s[1] and s[2]]
    e2e = [s[4] for s in done]
    overheads = [s[5] for s in done]
    return ClusterStudyResult(
        invocations=len(outcome.summaries),
        completed=len(done),
        dropped=sum(1 for s in outcome.summaries if s[1]),
        cold=sum(1 for s in done if s[3]),
        e2e_p50_ms=percentile(e2e, 50) * 1000.0,
        e2e_p99_ms=percentile(e2e, 99) * 1000.0,
        overhead_p50_ms=percentile(overheads, 50) * 1000.0,
        forwards=outcome.forwards,
        placements=outcome.placements,
        per_worker_invocations=dict(outcome.per_worker_records),
        total_load=little_load(trace),
    )


def run_cluster_study(
    scale: Scale = MEDIUM,
    trace: Optional[Trace] = None,
    num_workers: int = 4,
    cores_per_worker: int = 8,
    memory_per_worker_mb: float = 8192.0,
    target_load_fraction: float = 0.6,
    duration_cap: float = 1800.0,
    lb_policy: str = "ch_bl",
    status_interval: Optional[float] = None,
    cache: CacheLike = None,
    telemetry_dir: Optional[str] = None,
    shards: Optional[int] = None,
    trace_invocations: bool = False,
    health=False,
) -> ClusterStudyResult:
    """Replay (a clip of) the representative trace on a cluster.

    ``target_load_fraction`` positions the Little's-law load relative to
    total cluster cores (0.6 = comfortably loaded, not saturated).
    ``status_interval`` makes balancer decisions act on periodic status
    snapshots instead of live state (None = live, the idealized default).
    ``telemetry_dir``, when set, attaches the opt-in telemetry pipeline
    and exports the run directory (timeseries, spans, records, metrics,
    summary) there after the replay.
    ``shards`` > 1 (default ``$REPRO_SHARDS``, else 1) runs the same
    replay across that many shard processes via ``repro.cluster_shard``;
    the records are bit-identical, only the wall clock changes.  Falls
    back to the single-process path when shard processes cannot start.
    ``trace_invocations`` (requires ``telemetry_dir``) additionally
    collects causal trace trees (``repro.tracing``) into the run
    directory's ``traces.jsonl`` and, on sharded runs, the coordinator's
    flight-recorder log into ``flight.json``.
    ``health`` (requires ``telemetry_dir``) turns on the streaming
    health/SLO pipeline (``repro.health``): pass ``True`` for the default
    :class:`~repro.health.HealthConfig` or a configured instance; the run
    directory gains ``health.json``, ``slo.jsonl``, ``health.prom`` and
    ``live.jsonl`` heartbeats for ``repro watch``.
    """
    if not 0 < target_load_fraction:
        raise ValueError("target_load_fraction must be positive")
    if trace is None:
        trace = make_traces(scale, cache=cache)["representative"]
    if trace.duration > duration_cap:
        trace = trace.clipped(duration_cap, name=f"{trace.name}-study")
    trace = map_trace_to_catalog(trace)
    target = target_load_fraction * num_workers * cores_per_worker
    trace = scale_to_load(trace, target_load=target)

    config = WorkerConfig(
        cores=cores_per_worker,
        memory_mb=memory_per_worker_mb,
        backend="null",
        keepalive_policy="GD",
        seed=scale.seed,
    )
    plan = plan_from_trace(trace)
    shards = min(resolve_shards(shards), num_workers)
    if shards > 1:
        try:
            return _run_study_sharded(
                trace, plan, num_workers, config, lb_policy,
                status_interval, shards, telemetry_dir,
                trace_on=trace_invocations,
                health=health or None,
            )
        except ShardingUnavailable as exc:
            warnings.warn(
                f"cluster sharding unavailable ({exc}); running "
                "single-process",
                RuntimeWarning,
                stacklevel=2,
            )

    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=config,
        lb_policy=lb_policy,
        status_interval=status_interval,
    )
    telemetry = None
    if telemetry_dir is not None:
        # Deferred import: the pipeline only loads when somebody opts in.
        from ..telemetry import RUN_FILES, Telemetry, TelemetryConfig

        telemetry = Telemetry(
            env, TelemetryConfig(trace=trace_invocations, health=health or None)
        )
        cluster.attach_telemetry(telemetry)
        telemetry.start()
        if telemetry.health is not None:
            from pathlib import Path

            telemetry.enable_live(Path(telemetry_dir) / RUN_FILES["live"])
    cluster.start()
    for f in trace.functions:
        cluster.register_sync(
            FunctionRegistration(
                name=f.name,
                memory_mb=f.memory_mb,
                warm_time=f.warm_time,
                cold_time=f.cold_time,
            )
        )
    invocations = replay_plan(env, cluster, plan, grace=300.0)
    cluster.stop()
    if telemetry is not None:
        telemetry.stop()
        telemetry.export(telemetry_dir)

    done = [i for i in invocations if not i.dropped and i.completed_at]
    e2e = [i.e2e_time for i in done]
    overheads = [i.overhead for i in done]
    per_worker = {
        name: len(w.metrics.records) for name, w in cluster.workers.items()
    }
    return ClusterStudyResult(
        invocations=len(invocations),
        completed=len(done),
        dropped=sum(1 for i in invocations if i.dropped),
        cold=sum(1 for i in done if i.cold),
        e2e_p50_ms=percentile(e2e, 50) * 1000.0,
        e2e_p99_ms=percentile(e2e, 99) * 1000.0,
        overhead_p50_ms=percentile(overheads, 50) * 1000.0,
        forwards=cluster.status()["forwards"],
        placements=cluster.placements,
        per_worker_invocations=per_worker,
        total_load=little_load(trace),
    )


def run_cluster_lb_sweep(
    scale: Scale = MEDIUM,
    lb_policies: Sequence[str] = ("ch_bl", "round_robin", "least_loaded"),
    trace: Optional[Trace] = None,
    num_workers: int = 4,
    cores_per_worker: int = 8,
    memory_per_worker_mb: float = 8192.0,
    target_load_fraction: float = 0.6,
    duration_cap: float = 1800.0,
    n_jobs: Optional[int] = None,
    cache: CacheLike = None,
    shards: Optional[int] = None,
) -> list[dict]:
    """The full-stack study repeated per LB policy, one process per run.

    The (expensive) trace generates once in the parent and ships to each
    worker via the pool initializer; every policy then replays the same
    invocation sequence.  Returns one row per policy in ``lb_policies``
    order.

    With ``shards`` > 1, parallelism moves *inside* each run: policies
    execute one after another, each sharded across that many worker
    processes (pool workers are daemonic and cannot host shard children,
    so per-policy pooling and intra-run sharding are mutually exclusive).
    """
    if trace is None:
        trace = make_traces(scale, cache=cache)["representative"]
    shards = resolve_shards(shards)
    if shards > 1:
        rows = []
        for policy in lb_policies:
            result = run_cluster_study(
                scale,
                trace=trace,
                num_workers=num_workers,
                cores_per_worker=cores_per_worker,
                memory_per_worker_mb=memory_per_worker_mb,
                target_load_fraction=target_load_fraction,
                duration_cap=duration_cap,
                lb_policy=policy,
                shards=shards,
            )
            rows.append({"lb_policy": policy, **result.as_dict()})
        return rows
    cells = [
        (policy, num_workers, cores_per_worker, memory_per_worker_mb,
         target_load_fraction, duration_cap)
        for policy in lb_policies
    ]
    results = run_parallel(cluster_study_cell, cells, n_jobs=n_jobs, shared=trace)
    return [
        {"lb_policy": policy, **result.as_dict()}
        for policy, result in zip(lb_policies, results)
    ]
