"""Shared experiment scales.

Every experiment takes a :class:`Scale` so the same code runs as a quick
CI check (``SMALL``), a benchmark run (``MEDIUM``, the repo default for
``pytest benchmarks/``), or a paper-scale reproduction (``FULL`` — hours
of simulated time, minutes of wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scale", "SMALL", "MEDIUM", "FULL"]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    # Synthetic Azure dataset.
    dataset_functions: int
    dataset_minutes: int
    rare_n: int
    representative_n: int
    random_n: int
    # Keep-alive sweep.
    cache_sizes_gb: tuple
    # Closed-loop (Fig 1).
    fig1_clients: tuple
    fig1_duration: float
    # Litmus/faasbench (Figs 6-7) run length (seconds).
    litmus_duration: float
    seed: int = 0xFAA5


SMALL = Scale(
    name="small",
    dataset_functions=600,
    dataset_minutes=180,
    rare_n=150,
    representative_n=80,
    random_n=40,
    cache_sizes_gb=(2.0, 5.0, 10.0),
    fig1_clients=(1, 4, 16),
    fig1_duration=10.0,
    litmus_duration=300.0,
)

MEDIUM = Scale(
    name="medium",
    dataset_functions=2000,
    dataset_minutes=480,
    rare_n=500,
    representative_n=200,
    random_n=100,
    cache_sizes_gb=(2.0, 5.0, 10.0, 15.0, 25.0, 40.0),
    fig1_clients=(1, 2, 4, 8, 16, 32, 64, 96),
    fig1_duration=20.0,
    litmus_duration=900.0,
)

FULL = Scale(
    name="full",
    dataset_functions=6000,
    dataset_minutes=1440,
    rare_n=1000,
    representative_n=400,
    random_n=200,
    cache_sizes_gb=(5.0, 10.0, 15.0, 25.0, 40.0, 60.0, 80.0),
    fig1_clients=(1, 2, 4, 8, 16, 32, 48, 64, 96, 128),
    fig1_duration=60.0,
    litmus_duration=3600.0,
)
