"""Figure 1: control-plane latency overhead vs concurrent invocations.

Closed-loop clients repeatedly invoke a short warm function (PyAES from
FunctionBench); the per-invocation overhead (end-to-end minus execution)
is summarized at p50/p99 for each concurrency level, for both the
OpenWhisk model and the Ilúvatar worker.

Paper shape: OpenWhisk >10 ms median with p99 rising to ~600 ms and
non-monotone inversions; Ilúvatar ~2 ms with tails under 3 ms below 32
concurrent and ~10 ms at saturation — a ~100x reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines.openwhisk import OpenWhiskConfig, OpenWhiskWorker
from ..core.config import WorkerConfig
from ..core.worker import Worker
from ..loadgen.closed import run_closed_loop
from ..sim.core import Environment
from ..workloads.functionbench import registration_for
from .defaults import MEDIUM, Scale

__all__ = ["Fig1Row", "run_fig1", "fig1_rows"]


@dataclass(frozen=True)
class Fig1Row:
    system: str
    clients: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    completed: int

    def as_dict(self) -> dict:
        return {
            "system": self.system,
            "clients": self.clients,
            "overhead_p50_ms": self.p50_ms,
            "overhead_p99_ms": self.p99_ms,
            "overhead_mean_ms": self.mean_ms,
            "completed": self.completed,
        }


def _measure(system: str, clients: int, duration: float, cores: int,
             seed: int) -> Fig1Row:
    env = Environment()
    if system == "openwhisk":
        worker = OpenWhiskWorker(env, OpenWhiskConfig(cores=cores, seed=seed))
    elif system == "iluvatar":
        worker = Worker(
            env,
            WorkerConfig(
                cores=cores,
                backend="containerd",  # agent HTTP on the warm path (Table 2)
                memory_mb=65536.0,
                # Like the paper's setup, the worker may overcommit CPU:
                # beyond the core count the cgroup scheduler shares cycles
                # (slowing execution) rather than queueing invocations, so
                # queue wait does not masquerade as control-plane overhead.
                concurrency_limit=4 * cores,
                seed=seed,
            ),
        )
    else:
        raise ValueError(f"unknown system {system!r}")
    worker.start()
    worker.register_sync(registration_for("pyaes"))
    # Prime one warm container per client so the measurement is warm-only.
    env.run_process(worker.invoke("pyaes.1"))
    result = run_closed_loop(
        env, worker, "pyaes.1", clients=clients, duration=duration, warmup=2.0
    )
    worker.stop()
    overheads_ms = result.overheads() * 1000.0
    if overheads_ms.size == 0:
        raise RuntimeError(f"no completed invocations for {system}@{clients}")
    return Fig1Row(
        system=system,
        clients=clients,
        p50_ms=float(np.percentile(overheads_ms, 50)),
        p99_ms=float(np.percentile(overheads_ms, 99)),
        mean_ms=float(overheads_ms.mean()),
        completed=int(overheads_ms.size),
    )


def run_fig1(
    scale: Scale = MEDIUM,
    cores: int = 48,
    systems: Sequence[str] = ("openwhisk", "iluvatar"),
) -> list[Fig1Row]:
    rows = []
    for system in systems:
        for clients in scale.fig1_clients:
            rows.append(
                _measure(system, clients, scale.fig1_duration, cores, scale.seed)
            )
    return rows


def fig1_rows(scale: Scale = MEDIUM, **kwargs) -> list[dict]:
    return [r.as_dict() for r in run_fig1(scale, **kwargs)]
