"""Figure 6: FaasCache vs OpenWhisk on skewed workload traces.

Three skewed workloads exercise the keep-alive difference (the paper's
"litmus tests"): a skewed-frequency mix (one function much hotter), a
cyclic access pattern (classic LRU-hostile), and a two-size skew (small
hot functions vs large cold ones).  Each runs against the OpenWhisk model
with its 10-minute TTL and against FaasCache (the same model with
Greedy-Dual keep-alive); we count warm, cold and dropped requests.

Paper shape: FaasCache serves 50-100% more warm+cold requests and ~2x
total served, because OpenWhisk's cold-start overheads drive load up and
its buffer sheds requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..baselines.openwhisk import OpenWhiskConfig, OpenWhiskWorker
from ..loadgen.openloop import FunctionMix, InvocationPlan, build_plan, replay_plan
from ..metrics.registry import Outcome
from ..parallel.pool import run_parallel
from ..parallel.tasks import litmus_cell
from ..sim.core import Environment
from ..sim.distributions import Constant, Exponential
from ..workloads.functionbench import FUNCTIONBENCH, registration_for
from .defaults import MEDIUM, Scale

__all__ = ["LITMUS_WORKLOADS", "litmus_workload", "litmus_plan", "run_litmus", "fig6_rows"]

LITMUS_WORKLOADS = ("skew_frequency", "cyclic", "two_size")

# The four paper functions (Table 4 subset used in Figures 6-7).
_FUNCS = ("disk_bench", "ml_inference", "web_serving", "float_op")


def litmus_workload(
    workload: str, duration: float, seed: int = 0
) -> tuple[list, InvocationPlan]:
    """(registrations, invocation plan) for one litmus workload."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if workload == "skew_frequency":
        # The paper's skewed-frequency pattern: the floating-point
        # function at 400 ms inter-arrival, the others at 1500 ms — plus a
        # population of background functions at tens-of-seconds IATs that
        # cycle through the keep-alive cache.  (The paper's single server
        # hosts many more registered functions than the four being
        # measured; the background population recreates that cache churn,
        # which is what separates eviction policies.)
        regs = [registration_for("float_op"), registration_for("web_serving")]
        mixes = [
            FunctionMix("float_op.1", Exponential(0.4)),
            FunctionMix("web_serving.1", Exponential(1.5)),
        ]
        background_keys = [
            k for k in FUNCTIONBENCH if k not in ("pyaes", "video_encoding")
        ]
        for i in range(24):
            reg = registration_for(background_keys[i % len(background_keys)],
                                   version=10 + i)
            regs.append(reg)
            mixes.append(FunctionMix(reg.fqdn(), Exponential(15.0 + (i % 5) * 10.0)))
        return regs, build_plan(mixes, duration, seed=seed)
    if workload == "cyclic":
        # Deterministic rotation over two instances of each function —
        # a working set deliberately larger than the litmus server's
        # memory, recurring with the full cycle period: the access
        # pattern that defeats pure recency.
        regs = [
            registration_for(k, version=v) for v in (1, 2) for k in _FUNCS
        ]
        period = 1.0
        mixes = [
            FunctionMix(r.fqdn(), Constant(period * len(regs)),
                        start_offset=i * period)
            for i, r in enumerate(regs)
        ]
        return regs, build_plan(mixes, duration, seed=seed)
    if workload == "two_size":
        # Two size classes: hot small functions plus a background split
        # between large lukewarm (CNN-profile) and small (matrix-profile)
        # functions.  Size-aware eviction (GD) sacrifices one large
        # container to retain several small high-value ones; recency-based
        # TTL cannot.
        regs = [registration_for("web_serving"), registration_for("float_op")]
        mixes = [
            FunctionMix("web_serving.1", Exponential(0.5)),
            FunctionMix("float_op.1", Exponential(0.5)),
        ]
        for i in range(10):
            reg = registration_for("ml_inference", version=20 + i)
            regs.append(reg)
            mixes.append(FunctionMix(reg.fqdn(), Exponential(25.0 + (i % 5) * 8.0)))
        for i in range(10):
            reg = registration_for("matrix_multiply", version=40 + i)
            regs.append(reg)
            mixes.append(FunctionMix(reg.fqdn(), Exponential(10.0 + (i % 5) * 4.0)))
        return regs, build_plan(mixes, duration, seed=seed)
    raise ValueError(f"unknown litmus workload {workload!r}; choose from {LITMUS_WORKLOADS}")


def litmus_plan(workload: str, duration: float, seed: int = 0) -> InvocationPlan:
    """Back-compat helper: just the invocation plan."""
    return litmus_workload(workload, duration, seed=seed)[1]


@dataclass(frozen=True)
class LitmusResult:
    workload: str
    system: str
    warm: int
    cold: int
    dropped: int
    mean_e2e: float = float("nan")

    @property
    def served(self) -> int:
        return self.warm + self.cold

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "system": self.system,
            "warm": self.warm,
            "cold": self.cold,
            "dropped": self.dropped,
            "served": self.served,
            "mean_e2e_s": self.mean_e2e,
        }


def _run_one(
    workload: str,
    system: str,
    duration: float,
    memory_mb: float,
    cores: int,
    seed: int,
) -> LitmusResult:
    env = Environment()
    policy = "GD" if system == "faascache" else "TTL"
    worker = OpenWhiskWorker(
        env,
        OpenWhiskConfig(
            name=system,
            cores=cores,
            memory_mb=memory_mb,
            keepalive_policy=policy,
            seed=seed,
        ),
    )
    worker.start()
    regs, plan = litmus_workload(workload, duration, seed=seed)
    for reg in regs:
        worker.register_sync(reg)
    invocations = replay_plan(env, worker, plan, grace=60.0)
    worker.stop()
    tally = worker.metrics.outcomes()
    done = [i for i in invocations if not i.dropped and i.completed_at is not None]
    mean_e2e = (
        sum(i.e2e_time for i in done) / len(done) if done else float("nan")
    )
    return LitmusResult(
        workload=workload,
        system=system,
        warm=tally[Outcome.WARM],
        cold=tally[Outcome.COLD],
        dropped=tally[Outcome.DROPPED],
        mean_e2e=mean_e2e,
    )


def run_litmus(
    scale: Scale = MEDIUM,
    workloads: Sequence[str] = LITMUS_WORKLOADS,
    memory_mb: float = 1536.0,
    cores: int = 16,
    repeats: int = 3,
    n_jobs: Optional[int] = None,
) -> list[LitmusResult]:
    """Both systems across all litmus workloads.

    The defaults shrink the paper's 48 GB / 48-core server to keep run
    times short while preserving the pressure ratio (working set just
    above memory, cold-start load just above the CPU capacity).  Counts
    are summed over ``repeats`` independent seeds so the comparison is
    not hostage to one arrival sequence.

    Each (workload, system, seed) replay is independent, so the whole
    grid fans out over ``n_jobs`` processes; results aggregate in grid
    order, identical at any job count.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    pairs = [(w, s) for w in workloads for s in ("openwhisk", "faascache")]
    cells = [
        (workload, system, scale.litmus_duration, memory_mb, cores,
         scale.seed + rep)
        for workload, system in pairs
        for rep in range(repeats)
    ]
    cell_results = run_parallel(litmus_cell, cells, n_jobs=n_jobs)
    results = []
    for k, (workload, system) in enumerate(pairs):
        runs = cell_results[k * repeats:(k + 1) * repeats]
        results.append(
            LitmusResult(
                workload=workload,
                system=system,
                warm=sum(r.warm for r in runs),
                cold=sum(r.cold for r in runs),
                dropped=sum(r.dropped for r in runs),
                mean_e2e=sum(r.mean_e2e for r in runs) / len(runs),
            )
        )
    return results


def fig6_rows(scale: Scale = MEDIUM, **kwargs) -> list[dict]:
    return [r.as_dict() for r in run_litmus(scale, **kwargs)]
