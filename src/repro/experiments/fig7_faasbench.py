"""Figure 7: per-function warm/cold/dropped breakdown, FaasCache vs OpenWhisk.

The paper's skewed-frequency workload on real functions: CNN inference,
disk-bench and web-serving at 1500 ms inter-arrival, floating-point at
400 ms.  The figure's claims:

* OpenWhisk drops ~50% of requests from cold-start-driven load;
* FaasCache serves >2x the warm requests;
* the *distribution* shifts: Greedy-Dual favours high-init/small-memory
  functions, so floating-point gains ~3x warm hit-ratio while the
  memory-heavy CNN is comparatively de-prioritized.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.openwhisk import OpenWhiskConfig, OpenWhiskWorker
from ..loadgen.openloop import replay_plan
from ..sim.core import Environment
from .defaults import MEDIUM, Scale
from .fig6_litmus import litmus_workload

__all__ = ["run_faasbench", "fig7_rows", "warm_hit_ratios"]


def run_faasbench(
    scale: Scale = MEDIUM,
    memory_mb: float = 1536.0,
    cores: int = 16,
) -> dict[str, dict[str, dict[str, int]]]:
    """{system: {function: {warm, cold, dropped}}} for the Fig-7 workload."""
    out: dict[str, dict[str, dict[str, int]]] = {}
    for system in ("openwhisk", "faascache"):
        env = Environment()
        worker = OpenWhiskWorker(
            env,
            OpenWhiskConfig(
                name=system,
                cores=cores,
                memory_mb=memory_mb,
                keepalive_policy="GD" if system == "faascache" else "TTL",
                seed=scale.seed,
            ),
        )
        worker.start()
        regs, plan = litmus_workload(
            "skew_frequency", scale.litmus_duration, seed=scale.seed
        )
        for reg in regs:
            worker.register_sync(reg)
        replay_plan(env, worker, plan, grace=60.0)
        worker.stop()
        out[system] = worker.metrics.outcomes_by_function()
    return out


def warm_hit_ratios(breakdown: dict[str, dict[str, dict[str, int]]]) -> dict[str, dict[str, float]]:
    """Per-function warm-hit ratio (warm / served) per system."""
    ratios: dict[str, dict[str, float]] = {}
    for system, functions in breakdown.items():
        ratios[system] = {}
        for fqdn, counts in functions.items():
            served = counts["warm"] + counts["cold"]
            ratios[system][fqdn] = counts["warm"] / served if served else float("nan")
    return ratios


def fig7_rows(scale: Scale = MEDIUM, **kwargs) -> list[dict]:
    breakdown = run_faasbench(scale, **kwargs)
    rows = []
    for system, functions in breakdown.items():
        for fqdn in sorted(functions):
            counts = functions[fqdn]
            served = counts["warm"] + counts["cold"]
            rows.append(
                {
                    "system": system,
                    "function": fqdn,
                    "warm": counts["warm"],
                    "cold": counts["cold"],
                    "dropped": counts["dropped"],
                    "warm_ratio": counts["warm"] / served if served else float("nan"),
                }
            )
    return rows
