"""Figure 8: dynamic cache sizing via the miss-speed controller.

The representative trace replays through the keep-alive simulator with
the proportional controller resizing the cache once per window; the cache
only changes when the miss-speed error exceeds the 30% band.

Paper shape: the cache size tracks the miss speed around the target
(0.0015 misses/s in the paper), and the *average* dynamic size comes in
~30% below the conservative static 10 000 MB provision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache import CacheLike
from ..keepalive.policies import make_policy
from ..keepalive.simulator import KeepAliveResult, KeepAliveSimulator
from ..provisioning.controller import MissSpeedController, ProvisioningConfig
from ..trace.model import Trace
from .defaults import MEDIUM, Scale
from .keepalive_sweep import make_traces

__all__ = ["DynamicSizingOutcome", "run_fig8"]


@dataclass
class DynamicSizingOutcome:
    result: KeepAliveResult
    controller: MissSpeedController
    static_size_mb: float

    @property
    def average_size_mb(self) -> float:
        return self.controller.average_size_mb

    @property
    def savings(self) -> float:
        return self.controller.savings_vs_static(self.static_size_mb)

    def as_dict(self) -> dict:
        times, sizes, speeds = self.controller.timeseries()
        return {
            "target_miss_speed": self.controller.config.target_miss_speed,
            "static_size_mb": self.static_size_mb,
            "average_size_mb": self.average_size_mb,
            "savings_pct": 100.0 * self.savings,
            "resizes": sum(1 for s in self.controller.history if s.resized),
            "samples": len(times),
            "cold_ratio": self.result.cold_ratio,
        }


def run_fig8(
    scale: Scale = MEDIUM,
    trace: Optional[Trace] = None,
    config: Optional[ProvisioningConfig] = None,
    policy: str = "GD",
    cache: CacheLike = None,
) -> DynamicSizingOutcome:
    """Replay the representative trace under dynamic cache sizing."""
    if trace is None:
        trace = make_traces(scale, cache=cache)["representative"]
    if config is None:
        # Calibrate the target to this trace: measure the miss speed the
        # conservative static provision actually delivers, then target a
        # slightly laxer rate — the controller can then shed memory in
        # quiet periods and grow it back under load, which is the paper's
        # experiment (their target, 0.0015 misses/s, plays the same role
        # for their trace sample).
        baseline = KeepAliveSimulator(make_policy(policy), 10_000.0).run(trace)
        baseline_speed = baseline.cold_starts / max(trace.duration, 1.0)
        config = ProvisioningConfig(
            target_miss_speed=max(baseline_speed * 1.6, 1e-6),
            initial_size_mb=10_000.0,
            max_size_mb=10_000.0,
            window=300.0,
        )
    controller = MissSpeedController(config)

    def on_tick(now: float, sim: KeepAliveSimulator) -> None:
        new_size = controller.update(now, sim.cold_starts)
        if abs(new_size - sim.cache.capacity_mb) > 1e-9:
            sim.cache.set_capacity(new_size, now)

    sim = KeepAliveSimulator(
        make_policy(policy),
        cache_size_mb=config.initial_size_mb,
        tick_interval=config.window,
        on_tick=on_tick,
    )
    result = sim.run(trace)
    return DynamicSizingOutcome(
        result=result,
        controller=controller,
        static_size_mb=config.max_size_mb,
    )
