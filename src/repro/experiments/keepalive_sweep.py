"""Figures 4 and 5: keep-alive policy sweep over the Azure-like traces.

For each of the three trace samples (representative / rare / random) and
each cache size, every policy replays the trace through the keep-alive
simulator.  Figure 4 plots the % increase in execution time; Figure 5 the
cold-start (miss) fraction; both come from the same sweep, so one run
yields both artifacts.

Paper shapes this must reproduce:
* representative: GD >=3x lower overhead than TTL across 15-80 GB, and GD
  reaches its floor at ~3x smaller cache than other variants;
* rare: LRU ~2x better than TTL; HIST beats TTL but trails caching
  policies by ~50%;
* random: recency dominates; TTL ~ LRU convergence for rare objects.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cache import CacheLike
from ..keepalive.policies import POLICY_NAMES
from ..keepalive.simulator import KeepAliveResult
from ..parallel.pool import run_parallel
from ..parallel.tasks import keepalive_cell
from ..trace.azure import AzureTraceConfig, generate_dataset
from ..trace.model import Trace
from ..trace.sampling import standard_samples
from .defaults import MEDIUM, Scale

__all__ = ["make_traces", "run_keepalive_sweep", "fig4_rows", "fig5_rows"]


def make_traces(scale: Scale = MEDIUM, cache: CacheLike = None) -> dict[str, Trace]:
    """The three paper evaluation traces at the requested scale.

    ``cache`` memoizes both the generated dataset and the expanded trace
    samples on disk (defaults to ``$REPRO_CACHE`` when set); a warm cache
    skips generation entirely and is bit-identical to a cold run.
    """
    dataset = generate_dataset(
        AzureTraceConfig(
            num_functions=scale.dataset_functions,
            duration_minutes=scale.dataset_minutes,
            seed=scale.seed,
        ),
        cache=cache,
    )
    return standard_samples(
        dataset,
        rare_n=scale.rare_n,
        representative_n=scale.representative_n,
        random_n=scale.random_n,
        cache=cache,
    )


def run_keepalive_sweep(
    scale: Scale = MEDIUM,
    policies: Sequence[str] = POLICY_NAMES,
    traces: Optional[dict[str, Trace]] = None,
    n_jobs: Optional[int] = None,
    cache: CacheLike = None,
) -> list[tuple[str, KeepAliveResult]]:
    """(trace_name, result) for every trace x policy x cache size.

    Every cell is an independent replay, so the grid fans out over
    ``n_jobs`` worker processes (default: serial; see
    :func:`repro.parallel.resolve_jobs`).  The traces ship to each
    worker once via the pool initializer, and results come back in grid
    order — identical rows and ordering at any ``n_jobs``.
    """
    traces = traces if traces is not None else make_traces(scale, cache=cache)
    cells = [
        (trace_name, policy, size_gb * 1024.0)
        for trace_name in traces
        for policy in policies
        for size_gb in scale.cache_sizes_gb
    ]
    return run_parallel(keepalive_cell, cells, n_jobs=n_jobs, shared=traces)


def fig4_rows(results: Sequence[tuple[str, KeepAliveResult]]) -> list[dict]:
    """Figure 4 series: % increase in execution time."""
    return [
        {
            "trace": name,
            "policy": r.policy,
            "cache_gb": r.cache_size_mb / 1024.0,
            "exec_increase_pct": r.exec_increase_pct,
        }
        for name, r in results
    ]


def fig5_rows(results: Sequence[tuple[str, KeepAliveResult]]) -> list[dict]:
    """Figure 5 series: cold-start fraction."""
    return [
        {
            "trace": name,
            "policy": r.policy,
            "cache_gb": r.cache_size_mb / 1024.0,
            "cold_fraction": r.cold_ratio,
        }
        for name, r in results
    ]
