"""Load-balancer ablation: CH-BL bound factor (Section 3.1).

CH-BL trades locality (warm starts) against load spread: a tight bound
(c→1) forwards eagerly and sacrifices warm hits; a loose bound keeps
functions home but lets hot workers saturate.  This experiment replays a
skewed multi-function workload against a cluster for several bound
factors and reports warm ratio, forwards, and latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import WorkerConfig
from ..loadbalancer.cluster import Cluster
from ..loadgen.openloop import FunctionMix, build_plan, replay_plan
from ..metrics.stats import percentile
from ..parallel.pool import run_parallel
from ..parallel.tasks import lb_bound_cell, lb_policy_cell
from ..sim.core import Environment
from ..sim.distributions import Exponential
from ..workloads.lookbusy import lookbusy_function

__all__ = ["run_lb_ablation", "run_lb_policy_comparison"]


def _lb_policy_row(
    policy: str, num_workers: int, duration: float, seed: int
) -> dict:
    """One LB policy's row (top-level so pool workers can import it)."""
    functions = [
        lookbusy_function(f"fn-{i}", run_time=0.3 + 0.2 * (i % 4),
                          memory_mb=128.0, init_time=1.5)
        for i in range(24)
    ]
    mixes = [FunctionMix(f.fqdn(), Exponential(2.0 + 0.5 * (i % 8)))
             for i, f in enumerate(functions)]
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=WorkerConfig(cores=4, memory_mb=1024.0, backend="null",
                            free_memory_buffer_mb=128.0, seed=seed),
        lb_policy=policy,
    )
    cluster.start()
    for f in functions:
        cluster.register_sync(f)
    plan = build_plan(mixes, duration, seed=seed)
    invocations = replay_plan(env, cluster, plan, grace=120.0)
    cluster.stop()
    done = [i for i in invocations if not i.dropped and i.completed_at]
    warm = sum(1 for i in done if not i.cold)
    e2e = [i.e2e_time for i in done]
    return {
        "policy": policy,
        "completed": len(done),
        "warm_ratio": warm / max(len(done), 1),
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
    }


def run_lb_policy_comparison(
    policies: Sequence[str] = ("ch_bl", "round_robin", "least_loaded"),
    num_workers: int = 4,
    duration: float = 180.0,
    seed: int = 23,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    """CH-BL vs locality-blind baselines on the same skewed workload.

    The paper's argument for CH-BL is locality: keeping a function on its
    home worker converts invocations into warm starts.  Round-robin
    destroys locality entirely; least-loaded partially.  Worker memory is
    sized so no single worker can hold the whole function population —
    the regime in which placement locality decides the warm-hit rate."""
    cells = [(policy, num_workers, duration, seed) for policy in policies]
    return run_parallel(lb_policy_cell, cells, n_jobs=n_jobs)


def _bound_factor_row(
    factor: float, num_workers: int, duration: float, seed: int
) -> dict:
    """One CH-BL bound factor's row (top-level for pool workers)."""
    functions = [
        lookbusy_function(f"fn-{i}", run_time=0.3 + 0.2 * (i % 4),
                          memory_mb=128.0, init_time=1.5)
        for i in range(12)
    ]
    # A skewed mix: the first two functions are hot (bursty home nodes).
    mixes = [
        FunctionMix(functions[0].fqdn(), Exponential(0.15)),
        FunctionMix(functions[1].fqdn(), Exponential(0.25)),
    ] + [FunctionMix(f.fqdn(), Exponential(2.0)) for f in functions[2:]]

    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=WorkerConfig(cores=2, memory_mb=4096.0, backend="null",
                            seed=seed),
        bound_factor=factor,
    )
    cluster.start()
    for f in functions:
        cluster.register_sync(f)
    plan = build_plan(mixes, duration, seed=seed)
    invocations = replay_plan(env, cluster, plan, grace=120.0)
    cluster.stop()

    done = [i for i in invocations if not i.dropped and i.completed_at]
    warm = sum(1 for i in done if not i.cold)
    e2e = [i.e2e_time for i in done]
    return {
        "bound_factor": factor,
        "completed": len(done),
        "warm_ratio": warm / max(len(done), 1),
        "forwards": cluster.balancer.forwards,
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
    }


def run_lb_ablation(
    bound_factors: Sequence[float] = (1.0, 1.2, 1.5, 2.0),
    num_workers: int = 4,
    duration: float = 180.0,
    seed: int = 23,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    """One row per bound factor: locality/latency outcomes of CH-BL."""
    cells = [(factor, num_workers, duration, seed) for factor in bound_factors]
    return run_parallel(lb_bound_cell, cells, n_jobs=n_jobs)
