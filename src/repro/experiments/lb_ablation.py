"""Load-balancer ablation: CH-BL bound factor (Section 3.1) and the
push-vs-pull dispatch race.

CH-BL trades locality (warm starts) against load spread: a tight bound
(c→1) forwards eagerly and sacrifices warm hits; a loose bound keeps
functions home but lets hot workers saturate.  This experiment replays a
skewed multi-function workload against a cluster for several bound
factors and reports warm ratio, forwards, and latency.

:func:`run_dispatch_race` races push CH-BL against the pull policies
(shared logical queue, idle workers claim) under the three regimes where
pull scheduling is argued to win: skewed function popularity, worker
heterogeneity (push is blind to capacity differences; pull workers claim
at the rate they drain), and flash crowds.  Each row decomposes the
pull-only claim-wait phase out of the telemetry breakdown, so the tail
cost of queueing at the dispatch layer is attributed explicitly rather
than folded into end-to-end latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.config import WorkerConfig
from ..loadbalancer.cluster import Cluster
from ..loadgen.openloop import FunctionMix, InvocationPlan, build_plan, replay_plan
from ..metrics.stats import percentile
from ..parallel.pool import run_parallel
from ..parallel.tasks import dispatch_race_cell, lb_bound_cell, lb_policy_cell
from ..sim.core import Environment
from ..sim.distributions import Exponential
from ..workloads.lookbusy import lookbusy_function

__all__ = [
    "DISPATCH_RACE_SCENARIOS",
    "run_dispatch_race",
    "run_lb_ablation",
    "run_lb_policy_comparison",
]


def _lb_policy_row(
    policy: str, num_workers: int, duration: float, seed: int
) -> dict:
    """One LB policy's row (top-level so pool workers can import it)."""
    functions = [
        lookbusy_function(f"fn-{i}", run_time=0.3 + 0.2 * (i % 4),
                          memory_mb=128.0, init_time=1.5)
        for i in range(24)
    ]
    mixes = [FunctionMix(f.fqdn(), Exponential(2.0 + 0.5 * (i % 8)))
             for i, f in enumerate(functions)]
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=WorkerConfig(cores=4, memory_mb=1024.0, backend="null",
                            free_memory_buffer_mb=128.0, seed=seed),
        lb_policy=policy,
    )
    cluster.start()
    for f in functions:
        cluster.register_sync(f)
    plan = build_plan(mixes, duration, seed=seed)
    invocations = replay_plan(env, cluster, plan, grace=120.0)
    cluster.stop()
    done = [i for i in invocations if not i.dropped and i.completed_at]
    warm = sum(1 for i in done if not i.cold)
    e2e = [i.e2e_time for i in done]
    return {
        "policy": policy,
        "completed": len(done),
        "warm_ratio": warm / max(len(done), 1),
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
    }


def run_lb_policy_comparison(
    policies: Sequence[str] = ("ch_bl", "round_robin", "least_loaded"),
    num_workers: int = 4,
    duration: float = 180.0,
    seed: int = 23,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    """CH-BL vs locality-blind baselines on the same skewed workload.

    The paper's argument for CH-BL is locality: keeping a function on its
    home worker converts invocations into warm starts.  Round-robin
    destroys locality entirely; least-loaded partially.  Worker memory is
    sized so no single worker can hold the whole function population —
    the regime in which placement locality decides the warm-hit rate."""
    cells = [(policy, num_workers, duration, seed) for policy in policies]
    return run_parallel(lb_policy_cell, cells, n_jobs=n_jobs)


def _bound_factor_row(
    factor: float, num_workers: int, duration: float, seed: int
) -> dict:
    """One CH-BL bound factor's row (top-level for pool workers)."""
    functions = [
        lookbusy_function(f"fn-{i}", run_time=0.3 + 0.2 * (i % 4),
                          memory_mb=128.0, init_time=1.5)
        for i in range(12)
    ]
    # A skewed mix: the first two functions are hot (bursty home nodes).
    mixes = [
        FunctionMix(functions[0].fqdn(), Exponential(0.15)),
        FunctionMix(functions[1].fqdn(), Exponential(0.25)),
    ] + [FunctionMix(f.fqdn(), Exponential(2.0)) for f in functions[2:]]

    env = Environment()
    cluster = Cluster(
        env,
        num_workers=num_workers,
        config=WorkerConfig(cores=2, memory_mb=4096.0, backend="null",
                            seed=seed),
        bound_factor=factor,
    )
    cluster.start()
    for f in functions:
        cluster.register_sync(f)
    plan = build_plan(mixes, duration, seed=seed)
    invocations = replay_plan(env, cluster, plan, grace=120.0)
    cluster.stop()

    done = [i for i in invocations if not i.dropped and i.completed_at]
    warm = sum(1 for i in done if not i.cold)
    e2e = [i.e2e_time for i in done]
    return {
        "bound_factor": factor,
        "completed": len(done),
        "warm_ratio": warm / max(len(done), 1),
        "forwards": cluster.balancer.forwards,
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
    }


def run_lb_ablation(
    bound_factors: Sequence[float] = (1.0, 1.2, 1.5, 2.0),
    num_workers: int = 4,
    duration: float = 180.0,
    seed: int = 23,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    """One row per bound factor: locality/latency outcomes of CH-BL."""
    cells = [(factor, num_workers, duration, seed) for factor in bound_factors]
    return run_parallel(lb_bound_cell, cells, n_jobs=n_jobs)


# ------------------------------------------------------- dispatch race

DISPATCH_RACE_SCENARIOS = ("skewed", "heterogeneous", "flash_crowd")


def _merge_plans(a: InvocationPlan, b: InvocationPlan) -> InvocationPlan:
    """Interleave two plans into one sorted schedule (stable on ties)."""
    ts = np.concatenate([a.timestamps, b.timestamps])
    fqdns = list(a.fqdns) + list(b.fqdns)
    order = np.argsort(ts, kind="stable")
    return InvocationPlan(
        timestamps=ts[order],
        fqdns=[fqdns[i] for i in order],
        duration=max(a.duration, b.duration),
    )


def _race_workload(scenario: str, duration: float, seed: int):
    """(functions, plan) for one race scenario."""
    functions = [
        lookbusy_function(f"fn-{i}", run_time=0.3 + 0.2 * (i % 4),
                          memory_mb=128.0, init_time=1.5)
        for i in range(16)
    ]
    if scenario == "skewed":
        # Zipf-flavoured popularity: two hot heads, a long cool tail.
        mixes = [
            FunctionMix(functions[0].fqdn(), Exponential(0.12)),
            FunctionMix(functions[1].fqdn(), Exponential(0.25)),
        ] + [FunctionMix(f.fqdn(), Exponential(3.0)) for f in functions[2:]]
        return functions, build_plan(mixes, duration, seed=seed)
    if scenario == "heterogeneous":
        # Moderate uniform load; the interesting asymmetry is in the
        # workers (see _race_cluster), not the trace.
        mixes = [FunctionMix(f.fqdn(), Exponential(0.9))
                 for f in functions]
        return functions, build_plan(mixes, duration, seed=seed)
    if scenario == "flash_crowd":
        # A light steady mix with a dense single-function burst one third
        # of the way in: the regime where a shared queue absorbs the spike
        # instead of hashing it all onto one home worker.
        mixes = [FunctionMix(f.fqdn(), Exponential(2.0)) for f in functions]
        base = build_plan(mixes, duration, seed=seed)
        crowd_start = duration / 3.0
        crowd = build_plan(
            [FunctionMix(functions[0].fqdn(), Exponential(0.02),
                         start_offset=crowd_start)],
            crowd_start + 12.0,
            seed=seed + 1,
        )
        return functions, _merge_plans(base, crowd)
    raise ValueError(
        f"unknown dispatch-race scenario {scenario!r}; "
        f"choose from {sorted(DISPATCH_RACE_SCENARIOS)}"
    )


def _race_cluster(env: Environment, policy: str, scenario: str,
                  num_workers: int, seed: int) -> Cluster:
    base = WorkerConfig(cores=4, memory_mb=1024.0, backend="null",
                        free_memory_buffer_mb=128.0, seed=seed)
    override = None
    if scenario == "heterogeneous":
        # Alternate small/large workers.  Push CH-BL hashes by function
        # name and bounds on queue length only; pull workers naturally
        # claim in proportion to drain rate.
        override = [
            cfg.with_overrides(cores=(2 if i % 2 else 8))
            for i, cfg in enumerate(Cluster.worker_configs(base, num_workers))
        ]
    return Cluster(
        env,
        num_workers=num_workers,
        config=base,
        lb_policy=policy,
        worker_configs_override=override,
    )


def _dispatch_race_row(
    policy: str, scenario: str, num_workers: int, duration: float, seed: int
) -> dict:
    """One (policy, scenario) cell of the race (top-level for the pool)."""
    from ..telemetry import Telemetry, TelemetryConfig
    from ..telemetry.decomposition import CLAIM_WAIT_PHASE, aggregate_phases

    functions, plan = _race_workload(scenario, duration, seed)
    env = Environment()
    cluster = _race_cluster(env, policy, scenario, num_workers, seed)
    telemetry = Telemetry(env, TelemetryConfig(interval=max(duration / 8.0, 1.0)))
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    cluster.start()
    for f in functions:
        cluster.register_sync(f)
    invocations = replay_plan(env, cluster, plan, grace=120.0)
    cluster.stop()
    telemetry.stop()

    done = [i for i in invocations if not i.dropped and i.completed_at]
    warm = sum(1 for i in done if not i.cold)
    e2e = [i.e2e_time for i in done]
    claims = [i.claimed_at - i.offered_at for i in invocations
              if i.claimed_at is not None]
    phases = aggregate_phases(telemetry.breakdowns())
    claim_phase = phases.get(CLAIM_WAIT_PHASE, {})
    return {
        "scenario": scenario,
        "policy": policy,
        "completed": len(done),
        "dropped": sum(1 for i in invocations if i.dropped),
        "warm_ratio": warm / max(len(done), 1),
        "e2e_p50_ms": percentile(e2e, 50) * 1000.0,
        "e2e_p99_ms": percentile(e2e, 99) * 1000.0,
        "claim_p50_ms": percentile(claims, 50) * 1000.0 if claims else 0.0,
        "claim_p99_ms": percentile(claims, 99) * 1000.0 if claims else 0.0,
        "claim_share_pct": claim_phase.get("share", 0.0) * 100.0,
    }


def run_dispatch_race(
    policies: Sequence[str] = ("ch_bl", "pull", "pull_local"),
    scenarios: Sequence[str] = DISPATCH_RACE_SCENARIOS,
    num_workers: int = 4,
    duration: float = 120.0,
    seed: int = 29,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    """Race push CH-BL against the pull policies, one row per
    (scenario, policy).

    Tail latency (p99) is the headline; ``claim_*`` columns decompose how
    much of a pull row's latency was spent waiting on the shared queue
    (always zero for push rows, whose invocations are never offered)."""
    cells = [
        (policy, scenario, num_workers, duration, seed)
        for scenario in scenarios
        for policy in policies
    ]
    return run_parallel(dispatch_race_cell, cells, n_jobs=n_jobs)
