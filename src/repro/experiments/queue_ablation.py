"""Queueing-policy and design-choice ablations (Section 4 mechanisms).

No single paper figure covers these, but the design section makes
testable claims this module measures:

* discipline ablation — FCFS vs SJF vs EEDF vs RARE on a heterogeneous
  mix (SJF/EEDF cut short-function latency; FCFS lets long jobs block);
* bypass ablation — short-function bypass on/off;
* regulator ablation — fixed concurrency limit vs AIMD dynamic;
* cold-path ablations — namespace pool on/off, HTTP client cache on/off
  (the paper attributes ~100 ms and up to ~3 ms respectively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.config import WorkerConfig
from ..core.worker import Worker
from ..loadgen.openloop import FunctionMix, build_plan, replay_plan
from ..metrics.stats import percentile
from ..parallel.pool import run_parallel
from ..parallel.tasks import queue_policy_cell
from ..sim.core import Environment
from ..sim.distributions import Exponential
from ..workloads.lookbusy import lookbusy_function

__all__ = [
    "heterogeneous_mix",
    "run_queue_policy_ablation",
    "run_bypass_ablation",
    "run_regulator_ablation",
    "run_coldpath_ablation",
]


def heterogeneous_mix(duration: float, seed: int = 11):
    """A short-hot + long-lukewarm function mix and its registrations."""
    functions = [
        lookbusy_function("short-a", run_time=0.05, memory_mb=64, init_time=0.2),
        lookbusy_function("short-b", run_time=0.08, memory_mb=64, init_time=0.2),
        lookbusy_function("long-a", run_time=2.5, memory_mb=512, init_time=1.5),
        lookbusy_function("long-b", run_time=4.0, memory_mb=512, init_time=2.0),
    ]
    mixes = [
        FunctionMix("short-a.1", Exponential(0.2)),
        FunctionMix("short-b.1", Exponential(0.3)),
        FunctionMix("long-a.1", Exponential(2.0)),
        FunctionMix("long-b.1", Exponential(3.0)),
    ]
    return functions, build_plan(mixes, duration, seed=seed)


def _run_workload(config: WorkerConfig, duration: float, seed: int = 11) -> dict:
    functions, plan = heterogeneous_mix(duration, seed=seed)
    env = Environment()
    worker = Worker(env, config)
    worker.start()
    for f in functions:
        worker.register_sync(f)
    invocations = replay_plan(env, worker, plan, grace=120.0)
    worker.stop()
    done = [i for i in invocations if not i.dropped and i.completed_at is not None]
    short = [i for i in done if i.function.warm_time <= 0.1]
    longf = [i for i in done if i.function.warm_time > 0.1]
    return {
        "completed": len(done),
        "dropped": sum(1 for i in invocations if i.dropped),
        "cold": sum(1 for i in done if i.cold),
        "short_p50_ms": percentile([i.e2e_time for i in short], 50) * 1000.0,
        "short_p99_ms": percentile([i.e2e_time for i in short], 99) * 1000.0,
        "long_p99_ms": percentile([i.e2e_time for i in longf], 99) * 1000.0,
        "mean_stretch": float(
            np.mean([i.stretch for i in done if i.exec_time > 0])
        ),
    }


def _queue_policy_row(policy: str, duration: float, cores: int) -> dict:
    """One discipline's row (top-level so pool workers can import it)."""
    cfg = WorkerConfig(
        cores=cores,
        memory_mb=8192.0,
        backend="null",
        queue_policy=policy,
        bypass_enabled=False,
    )
    row = {"policy": policy}
    row.update(_run_workload(cfg, duration))
    return row


def run_queue_policy_ablation(
    duration: float = 120.0,
    policies: Sequence[str] = ("fcfs", "sjf", "eedf", "rare", "mqfq"),
    cores: int = 4,
    n_jobs: Optional[int] = None,
) -> list[dict]:
    cells = [(policy, duration, cores) for policy in policies]
    return run_parallel(queue_policy_cell, cells, n_jobs=n_jobs)


def run_bypass_ablation(duration: float = 120.0, cores: int = 4) -> list[dict]:
    rows = []
    for bypass in (False, True):
        cfg = WorkerConfig(
            cores=cores,
            memory_mb=8192.0,
            backend="null",
            queue_policy="eedf",
            bypass_enabled=bypass,
        )
        row = {"bypass": bypass}
        row.update(_run_workload(cfg, duration))
        rows.append(row)
    return rows


def run_regulator_ablation(duration: float = 120.0, cores: int = 4) -> list[dict]:
    rows = []
    for dynamic in (False, True):
        cfg = WorkerConfig(
            cores=cores,
            memory_mb=8192.0,
            backend="null",
            queue_policy="eedf",
            dynamic_concurrency=dynamic,
        )
        row = {"dynamic_concurrency": dynamic}
        row.update(_run_workload(cfg, duration))
        rows.append(row)
    return rows


def run_coldpath_ablation(cold_starts: int = 50) -> list[dict]:
    """Cold-start latency with/without the namespace pool and HTTP cache.

    Each trial cold-starts ``cold_starts`` distinct functions sequentially
    and reports the mean cold end-to-end latency.
    """
    rows = []
    for ns_pool, http_cache in ((True, True), (False, True), (True, False), (False, False)):
        env = Environment()
        cfg = WorkerConfig(
            cores=8,
            memory_mb=65536.0,
            backend="containerd",
            namespace_pool_enabled=ns_pool,
            namespace_pool_size=64 if ns_pool else 0,
            http_client_cache_enabled=http_cache,
            bypass_enabled=False,
        )
        worker = Worker(env, cfg)
        worker.start()
        cold_lat, warm_lat = [], []
        for i in range(cold_starts):
            f = lookbusy_function(f"cold-{i}", run_time=0.05, memory_mb=64,
                                  init_time=0.1)
            worker.register_sync(f)
            inv = env.run_process(worker.invoke(f.fqdn()))
            assert inv.cold
            cold_lat.append(inv.e2e_time)
            # Warm follow-ups: where the HTTP-client cache matters.  The
            # first warm call populates the client cache; the second
            # measures the steady state (or the per-call cost when the
            # cache is disabled).
            env.run_process(worker.invoke(f.fqdn()))
            warm = env.run_process(worker.invoke(f.fqdn()))
            assert not warm.cold
            warm_lat.append(warm.e2e_time)
        worker.stop()
        rows.append(
            {
                "namespace_pool": ns_pool,
                "http_client_cache": http_cache,
                "cold_e2e_mean_ms": float(np.mean(cold_lat)) * 1000.0,
                "warm_overhead_mean_ms": float(
                    np.mean(warm_lat) - 0.05
                ) * 1000.0,
            }
        )
    return rows
