"""Result-table formatting shared by all experiment modules and benches."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "print_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """Render dict rows as an aligned text table (stable column order)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict], title: Optional[str] = None) -> None:
    print(format_table(rows, title=title))
