"""Table 2: per-component latency of a single warm invocation.

Runs warm invocations on an Ilúvatar worker with the containerd backend
and reports the mean simulated time spent in every traced component,
grouped as in the paper (Ingestion & Queuing / Container Operations /
Agent Communication / Returning).  Agent communication dominates, by
design and by measurement.
"""

from __future__ import annotations

from ..core.config import WorkerConfig
from ..core.worker import Worker
from ..sim.core import Environment
from ..workloads.functionbench import registration_for

__all__ = ["run_table2", "PAPER_TABLE2_MS"]

# The paper's measured values (ms) for comparison in EXPERIMENTS.md.
PAPER_TABLE2_MS = {
    "invoke": 0.026,
    "sync_invoke": 0.013,
    "enqueue_invocation": 0.017,
    "add_item_to_q": 0.02,
    "spawn_worker": 0.029,
    "dequeue": 0.02,
    "acquire_container": 0.096,
    "try_lock_container": 0.014,
    "prepare_invoke": 0.154,
    "call_container": 1.364,
    "download_result": 0.032,
    "return_container": 0.017,
    "return_results": 0.266,
}


def run_table2(warm_invocations: int = 200, seed: int = 42) -> list[dict]:
    """Measure the span breakdown over ``warm_invocations`` warm calls."""
    if warm_invocations < 1:
        raise ValueError("warm_invocations must be >= 1")
    env = Environment()
    worker = Worker(
        env, WorkerConfig(backend="containerd", cores=8, memory_mb=8192, seed=seed)
    )
    worker.start()
    worker.register_sync(registration_for("pyaes"))
    # One cold invocation to create the container, excluded from spans.
    env.run_process(worker.invoke("pyaes.1"))
    worker.spans.reset()
    for _ in range(warm_invocations):
        inv = env.run_process(worker.invoke("pyaes.1"))
        assert not inv.cold, "breakdown must be warm-only"
    worker.stop()
    rows = worker.spans.breakdown_table(scale=1000.0)
    for row in rows:
        row["paper_ms"] = PAPER_TABLE2_MS.get(row["function"], float("nan"))
    return rows
