"""Tables 3 and 4, and the appendix trace-timeseries figures."""

from __future__ import annotations

import numpy as np

from ..cache import CacheLike
from ..trace.analysis import invocations_per_minute, invocations_per_second
from ..trace.model import Trace
from ..trace.replay import expand_dataset
from ..trace.azure import AzureTraceConfig, generate_dataset
from ..workloads.functionbench import catalog_table
from .defaults import MEDIUM, Scale
from .keepalive_sweep import make_traces

__all__ = [
    "PAPER_TABLE3",
    "table3_rows",
    "table4_rows",
    "appendix_timeseries",
]

# The paper's Table 3 for side-by-side comparison.
PAPER_TABLE3 = [
    {"trace": "representative", "num_invocations": 1_348_162, "reqs_per_sec": 190.0,
     "avg_iat_ms": 5.4},
    {"trace": "rare", "num_invocations": 202_121, "reqs_per_sec": 30.0,
     "avg_iat_ms": 36.0},
    {"trace": "random", "num_invocations": 4_291_250, "reqs_per_sec": 600.0,
     "avg_iat_ms": 1.8},
]


def table3_rows(scale: Scale = MEDIUM, cache: CacheLike = None) -> list[dict]:
    """Our trace-sample statistics in the paper's Table 3 shape."""
    traces = make_traces(scale, cache=cache)
    rows = []
    for name in ("representative", "rare", "random"):
        rows.append(traces[name].stats_row())
    return rows


def table4_rows() -> list[dict]:
    """Table 4 is the FunctionBench catalog, reproduced verbatim."""
    return catalog_table()


def appendix_timeseries(
    scale: Scale = MEDIUM, bin_seconds: float = 60.0, cache: CacheLike = None
) -> dict[str, np.ndarray]:
    """Invocations/sec (binned) for the full trace and the three samples —
    the appendix figures.  Keys: full, representative, rare, random."""
    dataset = generate_dataset(
        AzureTraceConfig(
            num_functions=scale.dataset_functions,
            duration_minutes=scale.dataset_minutes,
            seed=scale.seed,
        ),
        cache=cache,
    )
    full = expand_dataset(dataset, name="full", cache=cache)
    traces: dict[str, Trace] = {"full": full}
    traces.update(make_traces(scale, cache=cache))
    out = {}
    for name, trace in traces.items():
        if bin_seconds == 60.0:
            out[name] = invocations_per_minute(trace) / 60.0
        else:
            counts = invocations_per_second(trace)
            out[name] = counts.astype(float)
    return out
