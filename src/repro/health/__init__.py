"""Streaming cluster health: sketches, SLOs, anomaly alerts, live watch.

The health observatory answers the question the end-of-run summary
cannot: *which functions are violating their latency targets, in which
windows, and is the cluster degrading right now?*  It is layered on the
telemetry seam — opt in with ``TelemetryConfig(health=True)`` (or a
tuned :class:`HealthConfig`) and the run dir gains ``health.json``,
``slo.jsonl``, ``health.prom`` and a ``live.jsonl`` heartbeat; read them
back with ``repro health RUN_DIR`` and ``repro watch RUN_DIR``.

Determinism contract: the collector holds only integer counters and
integer-merged :class:`DDSketch` buckets, so per-shard collectors from
the sharded engine reduce to exactly the serial run's collector and the
exported ``health.json`` / ``slo.jsonl`` are byte-identical across
engines.  With health off, runs are bit-identical to a build without
this package.
"""

from .collector import HealthCollector
from .detectors import Alert, EwmaDetector, detect_anomalies
from .live import LiveWriter, read_live, sparkline, watch, watch_report
from .report import health_report, health_section, load_health
from .sketch import DDSketch, WindowedSketch, window_index
from .slo import (
    HealthConfig,
    HealthReport,
    SLOTarget,
    evaluate_health,
    normalize_health,
    summaries_health,
)

__all__ = [
    "Alert",
    "DDSketch",
    "EwmaDetector",
    "HealthCollector",
    "HealthConfig",
    "HealthReport",
    "LiveWriter",
    "SLOTarget",
    "detect_anomalies",
    "evaluate_health",
    "health_report",
    "health_section",
    "load_health",
    "normalize_health",
    "read_live",
    "sparkline",
    "summaries_health",
    "watch",
    "watch_report",
    "window_index",
    "WindowedSketch",
]
