"""Streaming per-function health accumulator fed from the record hook.

A :class:`HealthCollector` hangs off the telemetry layer's record sink
(:attr:`repro.metrics.registry.MetricsRegistry.record_sink`) and folds
every finished invocation into windowed sketches and integer counters —
per function for end-to-end latency and outcome mix, per worker for
queue time and control-plane overhead.  It holds nothing that depends on
observation order: integer counts, integer-merged sketches, and
order-independent min/max, so per-shard collectors reduce with
:meth:`merge` to exactly the collector a serial run would have built.

The collector is deliberately ignorant of SLO targets; it only measures.
:func:`repro.health.slo.evaluate_health` turns a collector (plus sampled
gauge series) into the ``health.json`` / ``slo.jsonl`` artifacts.
"""

from __future__ import annotations

from typing import Optional

from .sketch import WindowedSketch, window_index

__all__ = ["HealthCollector", "COUNT_KEYS"]

# Per-window outcome counters tracked for every function.  TIMEOUT folds
# into "dropped", matching MetricsRegistry.outcomes_by_function.
COUNT_KEYS = ("total", "completed", "cold", "dropped")


class HealthCollector:
    """Windowed health accumulators; picklable, deterministically mergeable."""

    __slots__ = (
        "window", "relative_accuracy",
        "e2e", "counts", "queue", "overhead", "overall",
    )

    def __init__(self, window: float = 10.0, relative_accuracy: float = 0.01):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.window = float(window)
        self.relative_accuracy = float(relative_accuracy)
        # function -> WindowedSketch of e2e latency (completed invocations)
        self.e2e: dict[str, WindowedSketch] = {}
        # function -> window index -> {total, completed, cold, dropped}
        self.counts: dict[str, dict[int, dict[str, int]]] = {}
        # worker -> WindowedSketch of queue time / control-plane overhead
        self.queue: dict[str, WindowedSketch] = {}
        self.overhead: dict[str, WindowedSketch] = {}
        # every completed e2e sample, one stream (drives the live p99)
        self.overall = self._sketch()

    def _sketch(self) -> WindowedSketch:
        return WindowedSketch(self.window, self.relative_accuracy)

    # -- recording ---------------------------------------------------------
    def observe(self, function: str, t: float, *, completed: bool,
                cold: bool = False,
                e2e_time: Optional[float] = None,
                queue_time: Optional[float] = None,
                overhead: Optional[float] = None,
                worker: str = "") -> None:
        """Fold one finished invocation in at completion time ``t``."""
        idx = window_index(t, self.window)
        by_window = self.counts.get(function)
        if by_window is None:
            by_window = self.counts[function] = {}
        row = by_window.get(idx)
        if row is None:
            row = by_window[idx] = dict.fromkeys(COUNT_KEYS, 0)
        row["total"] += 1
        if completed:
            row["completed"] += 1
            if cold:
                row["cold"] += 1
            if e2e_time is not None:
                sketch = self.e2e.get(function)
                if sketch is None:
                    sketch = self.e2e[function] = self._sketch()
                sketch.observe(t, e2e_time)
                self.overall.observe(t, e2e_time)
            if worker:
                if queue_time is not None:
                    sketch = self.queue.get(worker)
                    if sketch is None:
                        sketch = self.queue[worker] = self._sketch()
                    sketch.observe(t, queue_time)
                if overhead is not None:
                    sketch = self.overhead.get(worker)
                    if sketch is None:
                        sketch = self.overhead[worker] = self._sketch()
                    sketch.observe(t, overhead)
        else:
            row["dropped"] += 1

    def observe_record(self, record) -> None:
        """Record-sink adapter for :class:`~repro.metrics.registry.MetricsRegistry`.

        Dropped/timed-out invocations carry no useful e2e; they are folded
        in at arrival time.  Completed ones land in the window of their
        completion instant ``arrival + e2e_time``.
        """
        outcome = getattr(record.outcome, "value", record.outcome)
        completed = outcome not in ("dropped", "timeout")
        t = record.arrival + (record.e2e_time if completed else 0.0)
        self.observe(
            record.function, t,
            completed=completed,
            cold=bool(record.cold),
            e2e_time=record.e2e_time if completed else None,
            queue_time=record.queue_time if completed else None,
            overhead=record.overhead if completed else None,
            worker=record.worker or "",
        )

    # -- reduction ---------------------------------------------------------
    def merge(self, other: "HealthCollector") -> None:
        """Fold another collector in; pure integer/sketch merges, so the
        result is independent of merge order and bit-identical to a
        single-stream collector over the union of samples."""
        if (other.window != self.window
                or other.relative_accuracy != self.relative_accuracy):
            raise ValueError(
                "cannot merge health collectors with different config: "
                f"window {self.window} vs {other.window}, "
                f"relative_accuracy {self.relative_accuracy} vs "
                f"{other.relative_accuracy}"
            )
        for fqdn, sketch in other.e2e.items():
            mine = self.e2e.get(fqdn)
            if mine is None:
                self.e2e[fqdn] = mine = self._sketch()
            mine.merge(sketch)
        for fqdn, by_window in other.counts.items():
            mine_w = self.counts.get(fqdn)
            if mine_w is None:
                mine_w = self.counts[fqdn] = {}
            for idx, row in by_window.items():
                mine_row = mine_w.get(idx)
                if mine_row is None:
                    mine_w[idx] = dict(row)
                else:
                    for key in COUNT_KEYS:
                        mine_row[key] += row[key]
        for attr in ("queue", "overhead"):
            theirs = getattr(other, attr)
            ours = getattr(self, attr)
            for worker, sketch in theirs.items():
                mine = ours.get(worker)
                if mine is None:
                    ours[worker] = mine = self._sketch()
                mine.merge(sketch)
        self.overall.merge(other.overall)

    # -- queries -----------------------------------------------------------
    def functions(self) -> list[str]:
        return sorted(self.counts)

    def workers(self) -> list[str]:
        return sorted(set(self.queue) | set(self.overhead))

    def window_range(self) -> tuple[int, int]:
        """Inclusive (first, last) window index with any activity; (0, -1)
        when nothing was observed."""
        indices = [idx for by_w in self.counts.values() for idx in by_w]
        if not indices:
            return (0, -1)
        return (min(indices), max(indices))

    def totals(self) -> dict[str, int]:
        out = dict.fromkeys(COUNT_KEYS, 0)
        for by_window in self.counts.values():
            for row in by_window.values():
                for key in COUNT_KEYS:
                    out[key] += row[key]
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, HealthCollector):
            return NotImplemented
        return (
            self.window == other.window
            and self.relative_accuracy == other.relative_accuracy
            and self.e2e == other.e2e
            and self.counts == other.counts
            and self.queue == other.queue
            and self.overhead == other.overhead
            and self.overall == other.overall
        )

    __hash__ = None  # mutable

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
