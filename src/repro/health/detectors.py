"""EWMA/z-score anomaly detectors over the sampled telemetry gauges.

These run post-hoc over the exported :class:`~repro.telemetry.sampler.Timeseries`
columns (which are identical between serial and sharded runs), so the
alert stream inherits the repo's byte-identity guarantee for free.  Four
detectors, matching the failure modes the paper's control plane guards
against:

``queue_depth_spike``
    a worker's queue depth jumps far above its EWMA baseline — the
    dispatcher is falling behind;
``memory_pressure``
    a worker's used memory jumps above baseline — the keep-alive pool is
    about to start evicting;
``idle_worker_collapse``
    a worker's warm pool empties while work is still queued — every
    subsequent dispatch pays a cold start;
``cold_start_storm``
    cluster-wide cold starts per health window spike above both the
    configured floor and the EWMA baseline.

All detectors are upward-only (a queue draining is recovery, not an
anomaly), warm up before firing, and apply cooldown hysteresis so one
sustained excursion yields one alert, not one per sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .collector import HealthCollector

__all__ = ["Alert", "EwmaDetector", "detect_anomalies"]

# Samples a detector must see before it is allowed to fire.
WARMUP_SAMPLES = 5
# Samples to hold quiet after firing (hysteresis).
COOLDOWN_SAMPLES = 5
# Variance floor keeps z finite on dead-flat baselines.
STD_FLOOR = 0.5


@dataclass(frozen=True)
class Alert:
    """One typed anomaly, positioned in sim time."""

    kind: str        # queue_depth_spike | memory_pressure | ...
    entity: str      # worker name, or "cluster"
    t: float
    value: float
    baseline: float
    threshold: float
    severity: str    # "warning" | "critical"
    message: str

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "entity": self.entity,
            "t": self.t,
            "value": self.value,
            "baseline": self.baseline,
            "threshold": self.threshold,
            "severity": self.severity,
            "message": self.message,
        }


class EwmaDetector:
    """Streaming EWMA mean/variance with upward z-score firing.

    ``update`` folds one sample in and returns the z-score when the
    sample should alert: above the threshold, after warmup, outside the
    cooldown window, and *above* the baseline (upward-only).
    """

    __slots__ = ("alpha", "z_threshold", "mean", "var", "n", "_cooldown")

    def __init__(self, alpha: float = 0.3, z_threshold: float = 4.0):
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.mean = 0.0
        self.var = 0.0
        self.n = 0
        self._cooldown = 0

    def update(self, value: float) -> Optional[tuple[float, float]]:
        """Returns ``(z, baseline)`` when this sample fires, else None.

        The z-score is judged against the baseline *before* the sample is
        folded in — the spike must stand out from history, and a single
        huge excursion cannot mask itself by inflating the variance it is
        measured against.
        """
        fired = None
        if self.n >= WARMUP_SAMPLES:
            std = math.sqrt(self.var)
            if std < STD_FLOOR:
                std = STD_FLOOR
            z = (value - self.mean) / std
            if z >= self.z_threshold and self._cooldown == 0:
                fired = (z, self.mean)
                self._cooldown = COOLDOWN_SAMPLES
            elif self._cooldown > 0 and z < self.z_threshold:
                self._cooldown -= 1
        # Fold in (EWMA mean + EWMA variance).
        diff = value - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)
        self.n += 1
        return fired


def _severity(z: float, threshold: float) -> str:
    return "critical" if z >= 2.0 * threshold else "warning"


def _scan_worker(name: str, series, config) -> list[Alert]:
    """Run the per-worker gauge detectors over one sampled Timeseries."""
    columns = getattr(series, "columns", ())
    needed = ("t", "queue_depth", "warm_containers", "memory_used_mb")
    if any(col not in columns for col in needed):
        return []  # not a worker series (e.g. the LB load table)
    ts = series.column("t")
    queue = series.column("queue_depth")
    warm = series.column("warm_containers")
    memory = series.column("memory_used_mb")

    alerts: list[Alert] = []
    queue_det = EwmaDetector(config.ewma_alpha, config.z_threshold)
    mem_det = EwmaDetector(config.ewma_alpha, config.z_threshold)
    prev_warm = 0.0
    for i, t in enumerate(ts):
        fired = queue_det.update(queue[i])
        if fired is not None:
            z, baseline = fired
            alerts.append(Alert(
                kind="queue_depth_spike", entity=name, t=t,
                value=queue[i], baseline=baseline, threshold=config.z_threshold,
                severity=_severity(z, config.z_threshold),
                message=(
                    f"{name}: queue depth {queue[i]:g} is {z:.1f} sigma above "
                    f"its EWMA baseline {baseline:.2f}"
                ),
            ))
        fired = mem_det.update(memory[i])
        if fired is not None:
            z, baseline = fired
            alerts.append(Alert(
                kind="memory_pressure", entity=name, t=t,
                value=memory[i], baseline=baseline, threshold=config.z_threshold,
                severity=_severity(z, config.z_threshold),
                message=(
                    f"{name}: used memory {memory[i]:.0f} MB is {z:.1f} sigma "
                    f"above its EWMA baseline {baseline:.0f} MB"
                ),
            ))
        if prev_warm > 0 and warm[i] == 0 and queue[i] > 0:
            alerts.append(Alert(
                kind="idle_worker_collapse", entity=name, t=t,
                value=queue[i], baseline=prev_warm, threshold=0.0,
                severity="warning",
                message=(
                    f"{name}: warm pool emptied with {queue[i]:g} invocations "
                    "still queued — subsequent dispatches pay cold starts"
                ),
            ))
        prev_warm = warm[i]
    return alerts


def _scan_cold_storms(collector: HealthCollector, config) -> list[Alert]:
    """Cluster-wide cold starts per health window vs EWMA baseline."""
    first, last = collector.window_range()
    if last < first:
        return []
    per_window = dict.fromkeys(range(first, last + 1), 0)
    for by_window in collector.counts.values():
        for idx, row in by_window.items():
            per_window[idx] += row["cold"]
    alerts: list[Alert] = []
    det = EwmaDetector(config.ewma_alpha, config.z_threshold)
    for idx in range(first, last + 1):
        cold = per_window[idx]
        fired = det.update(float(cold))
        if fired is not None and cold >= config.cold_storm_min:
            z, baseline = fired
            t = idx * collector.window
            alerts.append(Alert(
                kind="cold_start_storm", entity="cluster", t=t,
                value=float(cold), baseline=baseline,
                threshold=float(config.cold_storm_min),
                severity=_severity(z, config.z_threshold),
                message=(
                    f"cluster: {cold} cold starts in window [{t:g}, "
                    f"{t + collector.window:g}) vs EWMA baseline "
                    f"{baseline:.1f}"
                ),
            ))
    return alerts


def detect_anomalies(series: dict, collector: HealthCollector,
                     config) -> list[Alert]:
    """All detectors over all workers, returned in (t, kind, entity) order.

    ``series`` maps name -> sampled Timeseries (the telemetry layer's
    export shape); non-worker tables are skipped by column sniffing.
    """
    alerts: list[Alert] = []
    for name in sorted(series):
        alerts.extend(_scan_worker(name, series[name], config))
    alerts.extend(_scan_cold_storms(collector, config))
    alerts.sort(key=lambda a: (a.t, a.kind, a.entity))
    return alerts
