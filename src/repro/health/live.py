"""The live heartbeat file and the ``repro watch`` terminal dashboard.

Long runs append one JSON line per heartbeat interval to ``live.jsonl``
in the run dir — sim time, rolling invocation counts, queue depth, and
the recent p99 from the overall health sketch.  ``repro watch RUN_DIR``
tails that file as a refreshing dashboard; ``--once`` renders a single
frame (the CI-friendly mode).

``live.jsonl`` is the one run-dir artifact *excluded* from the
serial-vs-sharded byte-identity contract: the serial engine heartbeats
from inside the simulation while the sharded coordinator heartbeats at
epoch boundaries, so cadence (not content semantics) differs by design.
Everything derived from the health collector itself stays byte-identical
(``health.json`` / ``slo.jsonl``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Optional, TextIO, Union

__all__ = ["LiveWriter", "read_live", "watch_report", "watch", "LIVE_FILE"]

LIVE_FILE = "live.jsonl"

SPARK = "▁▂▃▄▅▆▇█"
SPARK_WIDTH = 32


class LiveWriter:
    """Append-only JSON-lines heartbeat writer (flushed per beat, so a
    concurrent ``repro watch`` always sees whole lines)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = open(self.path, "w")

    def heartbeat(self, snapshot: dict) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            return
        self._fh.write(json.dumps(snapshot, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "LiveWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_live(path: Union[str, Path]) -> list[dict]:
    """All complete heartbeats in a live file (a torn final line — the
    writer mid-append — is skipped, not an error)."""
    path = Path(path)
    if not path.exists():
        return []
    beats: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                beats.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return beats


def sparkline(values: list, width: int = SPARK_WIDTH) -> str:
    """Unicode block sparkline of the last ``width`` samples."""
    tail = [float(v) for v in values[-width:] if v is not None]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return SPARK[0] * len(tail)
    top = len(SPARK) - 1
    return "".join(SPARK[int((v - lo) / span * top)] for v in tail)


def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000.0:.1f}ms"


def watch_report(run_dir: Union[str, Path]) -> tuple[str, bool]:
    """One dashboard frame from a run dir's live file.

    Returns ``(text, done)``; ``done`` is True once the run has appended
    its terminal heartbeat (so the watch loop knows to stop).
    """
    run_dir = Path(run_dir)
    beats = read_live(run_dir / LIVE_FILE)
    if not beats:
        return (f"watching {run_dir}\n(no live heartbeats yet — is the run "
                "started with health enabled?)"), False
    last = beats[-1]
    done = bool(last.get("done"))
    engine = last.get("engine", "?")
    lines = [
        f"watching {run_dir}  [{engine}]"
        + ("  — run complete" if done else ""),
        f"  sim time   : {last.get('t', 0.0):,.1f}s"
        f"   heartbeats: {len(beats)}",
    ]
    total = last.get("total")
    if total is not None:
        lines.append(
            f"  invocations: {total:,} total"
            f"  ({last.get('completed', 0):,} completed,"
            f" {last.get('cold', 0):,} cold,"
            f" {last.get('dropped', 0):,} dropped)"
        )
    if "placements" in last:
        lines.append(
            f"  placements : {last['placements']:,}"
            f"   epoch: {last.get('epoch', '-')}"
        )
    if "queue_depth" in last:
        depths = [b.get("queue_depth") for b in beats]
        lines.append(
            f"  queue depth: {last['queue_depth']:g}"
            f"   {sparkline(depths)}"
        )
    if "running" in last:
        lines.append(f"  running    : {last['running']:g}")
    if "e2e_p99" in last:
        p99s = [b.get("e2e_p99") for b in beats]
        lines.append(
            f"  e2e p99    : {_fmt_ms(last['e2e_p99'])}"
            f"   {sparkline(p99s)}"
        )
    return "\n".join(lines), done


def watch(run_dir: Union[str, Path], *, once: bool = False,
          interval: float = 1.0, stream: Optional[TextIO] = None,
          max_frames: Optional[int] = None) -> int:
    """Tail a run dir's live heartbeat as a refreshing dashboard.

    ``once`` renders a single frame and returns; otherwise refreshes
    every ``interval`` wall-clock seconds until the run's terminal
    heartbeat arrives (or ``max_frames`` frames have rendered).  Returns
    the number of frames drawn.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    while True:
        text, done = watch_report(run_dir)
        if frames and out.isatty():  # pragma: no cover - interactive only
            out.write("\x1b[2J\x1b[H")
        out.write(text + "\n")
        out.flush()
        frames += 1
        if once or done:
            return frames
        if max_frames is not None and frames >= max_frames:
            return frames
        time.sleep(interval)
