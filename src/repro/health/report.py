"""Post-hoc health reports over an exported run directory.

``repro health RUN_DIR`` prints :func:`health_report` — the SLO table,
violation spans, burn rates, worker queue/overhead quantiles, and the
alert stream, all read back from ``health.json`` / ``slo.jsonl``.
:func:`health_section` is the condensed variant `repro inspect` embeds.
Both degrade gracefully on runs exported without health enabled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

__all__ = ["load_health", "health_report", "health_section"]

HEALTH_FILE = "health.json"
SLO_FILE = "slo.jsonl"


def load_health(run_dir: Union[str, Path]) -> tuple[Optional[dict], list[dict]]:
    """``(health.json dict or None, slo.jsonl rows)`` from a run dir."""
    run_dir = Path(run_dir)
    health_path = run_dir / HEALTH_FILE
    if not health_path.exists():
        return None, []
    health = json.loads(health_path.read_text())
    rows: list[dict] = []
    slo_path = run_dir / SLO_FILE
    if slo_path.exists():
        for line in slo_path.read_text().splitlines():
            if line.strip():
                rows.append(json.loads(line))
    return health, rows


def _table(rows: list[list[str]], header: list[str]) -> list[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return lines


def _ms(value) -> str:
    return "-" if value is None else f"{value * 1000.0:.1f}"


def _ratio(value) -> str:
    return "-" if value is None else f"{value:.3f}"


def _missing(run_dir) -> str:
    return (
        f"(no health artifacts in {run_dir} — export the run with health "
        "enabled, e.g. `repro --telemetry DIR cluster-study --health`)"
    )


def health_report(run_dir: Union[str, Path]) -> str:
    """The full ``repro health`` report for an exported run dir."""
    health, rows = load_health(run_dir)
    if health is None:
        return _missing(run_dir)
    totals = health.get("totals", {})
    config = health.get("config", {})
    lines = [
        f"health report for {run_dir}",
        f"  window {config.get('window', '?')}s, availability target "
        f"{config.get('availability', '?')}, sketch accuracy "
        f"±{config.get('relative_accuracy', 0) * 100:g}%",
        f"  {totals.get('total', 0):,} invocations "
        f"({totals.get('completed', 0):,} completed, "
        f"{totals.get('cold', 0):,} cold, {totals.get('dropped', 0):,} dropped) "
        f"over windows {health.get('window_range')}",
        "",
        "per-function SLO compliance:",
    ]
    table_rows = []
    functions = health.get("functions", {})
    for fn in sorted(functions):
        info = functions[fn]
        e2e = info.get("e2e") or {}
        burn = info.get("burn_rates", {})
        worst_k = max(burn, key=lambda k: burn[k]) if burn else "-"
        table_rows.append([
            fn,
            str(info.get("total", 0)),
            _ms(e2e.get("p50")),
            _ms(e2e.get("p99")),
            str(info.get("violating_windows", 0)),
            str(len(info.get("spans", []))),
            (f"{info.get('worst_burn_rate', 0.0):.2f}x@{worst_k}w"
             if burn else "-"),
        ])
    lines.extend(_table(
        table_rows,
        ["function", "n", "p50_ms", "p99_ms", "viol_w", "spans", "worst_burn"],
    ))

    worst = health.get("worst_burn", {})
    if worst.get("function"):
        lines += [
            "",
            f"worst burn rate: {worst.get('rate', 0.0):.2f}x error budget "
            f"({worst['function']})",
        ]

    workers = health.get("workers", {})
    if workers:
        lines += ["", "per-worker control-plane latency (ms):"]
        table_rows = []
        for worker in sorted(workers):
            info = workers[worker]
            queue = info.get("queue") or {}
            overhead = info.get("overhead") or {}
            table_rows.append([
                worker,
                _ms(queue.get("p50")), _ms(queue.get("p99")),
                _ms(overhead.get("p50")), _ms(overhead.get("p99")),
            ])
        lines.extend(_table(
            table_rows,
            ["worker", "queue_p50", "queue_p99", "ovh_p50", "ovh_p99"],
        ))

    alerts = health.get("alerts", [])
    lines += ["", f"alerts: {len(alerts)}"]
    for alert in alerts:
        lines.append(
            f"  [{alert.get('severity', '?'):8s}] t={alert.get('t', 0.0):9.2f} "
            f"{alert.get('kind')}: {alert.get('message')}"
        )

    violating = totals.get("violating_windows", 0)
    slo_rows = totals.get("slo_rows", 0)
    lines += [
        "",
        f"SLO: {slo_rows - violating}/{slo_rows} windows in compliance "
        f"({violating} violating), {len(rows)} slo.jsonl rows",
    ]
    return "\n".join(lines)


def health_section(run_dir: Union[str, Path]) -> list[str]:
    """The condensed health block for ``repro inspect`` (empty-safe)."""
    health, _rows = load_health(run_dir)
    if health is None:
        return ["health: (not enabled for this run)"]
    totals = health.get("totals", {})
    worst = health.get("worst_burn", {})
    lines = [
        f"health: {totals.get('violating_windows', 0)} violating windows "
        f"across {totals.get('slo_rows', 0)} (function, window) cells; "
        f"{totals.get('alert_count', 0)} alerts",
    ]
    if worst.get("function"):
        lines.append(
            f"  worst burn rate: {worst.get('rate', 0.0):.2f}x error budget "
            f"({worst['function']})"
        )
    functions = health.get("functions", {})
    bad = [
        (info.get("violating_windows", 0), fn)
        for fn, info in functions.items() if info.get("violating_windows")
    ]
    for count, fn in sorted(bad, reverse=True)[:3]:
        lines.append(f"  {fn}: {count} violating windows")
    return lines
