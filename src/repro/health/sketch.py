"""Mergeable relative-error quantile sketches, windowed over sim time.

The health engine answers "what is this function's p99 *right now*"
continuously, per function, per window — a question the end-of-run
histograms cannot answer, and one the sharded engine must answer without
ever concentrating raw samples in one process.  :class:`DDSketch` is the
structure that makes this tractable: a DDSketch-style sketch with
geometric buckets of relative width ``gamma = (1+a)/(1-a)``, so any
quantile estimate is within relative error ``a`` of the exact
nearest-rank sample it stands for, at O(1) per observation and a few
hundred buckets per sketch.

Merging is the load-bearing property.  A sketch holds only integer
bucket counts plus an order-independent min/max, so merging per-shard
sketches (in any order) produces *exactly* the sketch a single process
would have built observing the same samples — bit for bit, not
approximately.  No float accumulates in observation order anywhere in
this module; that is what lets a sharded run's ``health.json`` be
byte-identical to the serial run's (same discipline as
:class:`~repro.cluster_shard.merge.MergedTelemetry`).

:class:`WindowedSketch` keys sketches by fixed sim-time window
(``index = floor(t / window)``), stored sparsely so an idle function
costs nothing.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

__all__ = ["DDSketch", "WindowedSketch", "window_index"]


def window_index(t: float, window: float) -> int:
    """The window a sim-time instant falls in (fixed grid from t=0)."""
    return int(t // window)


class DDSketch:
    """Relative-error quantile sketch over non-negative samples.

    ``relative_accuracy`` (``a``) bounds the quantile error: the value
    returned for any quantile is within ``a * x`` of the exact
    nearest-rank sample ``x`` it represents.  Samples at or below
    ``min_value`` land in a dedicated zero bucket (a log scale cannot
    place them); they are reported as ``0.0``, an absolute error of at
    most ``min_value``.
    """

    __slots__ = (
        "relative_accuracy", "min_value", "gamma", "_log_gamma",
        "counts", "zero_count", "count", "_min", "_max",
    )

    def __init__(self, relative_accuracy: float = 0.01,
                 min_value: float = 1e-9):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.relative_accuracy = float(relative_accuracy)
        self.min_value = float(min_value)
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self.counts: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- recording ---------------------------------------------------------
    def key(self, value: float) -> int:
        """Bucket key for a value above ``min_value``: bucket ``k`` covers
        ``(gamma^(k-1), gamma^k]``."""
        return math.ceil(math.log(value) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Record one sample; O(1)."""
        if not value >= 0.0:  # also rejects NaN
            raise ValueError(f"sketch samples must be non-negative, got {value}")
        if value <= self.min_value:
            self.zero_count += 1
        else:
            k = self.key(value)
            self.counts[k] = self.counts.get(k, 0) + 1
        self.count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "DDSketch") -> None:
        """Add another sketch's buckets into this one.

        Both sketches must share the exact bucket geometry
        (``relative_accuracy`` and ``min_value``); merging is pure integer
        addition plus min/max, so it is order-independent and reproduces
        the single-stream sketch bit for bit.
        """
        if (other.relative_accuracy != self.relative_accuracy
                or other.min_value != self.min_value):
            raise ValueError(
                "cannot merge sketches with different geometry: "
                f"relative_accuracy {self.relative_accuracy} vs "
                f"{other.relative_accuracy}, min_value {self.min_value} "
                f"vs {other.min_value}"
            )
        for k, c in other.counts.items():
            self.counts[k] = self.counts.get(k, 0) + c
        self.zero_count += other.zero_count
        self.count += other.count
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    # -- queries -----------------------------------------------------------
    def bucket_value(self, key: int) -> float:
        """The representative value of bucket ``key`` (the point whose
        relative distance to every sample in the bucket is ``<= a``)."""
        return 2.0 * self.gamma ** key / (self.gamma + 1.0)

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (``q`` in [0, 100]).

        Returns the representative value of the bucket holding the
        ``max(1, ceil(q/100 * count))``-th smallest sample, clamped to the
        observed [min, max] — within ``relative_accuracy`` of the exact
        nearest-rank sample (or within ``min_value`` absolutely, for
        samples in the zero bucket).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cum = self.zero_count
        if rank <= cum:
            return 0.0
        for k in sorted(self.counts):
            cum += self.counts[k]
            if cum >= rank:
                value = self.bucket_value(k)
                if self._max is not None and value > self._max:
                    value = self._max
                if self._min is not None and value < self._min:
                    value = self._min
                return value
        return float(self._max)  # pragma: no cover - rank <= count

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(50.0),
            "p90": self.quantile(90.0),
            "p99": self.quantile(99.0),
        }

    def summary(self) -> dict:
        return {
            "count": self.count,
            "min": self._min if self._min is not None else float("nan"),
            "max": self._max if self._max is not None else float("nan"),
            **self.percentiles(),
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, DDSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.min_value == other.min_value
            and self.counts == other.counts
            and self.zero_count == other.zero_count
            and self.count == other.count
            and self._min == other._min
            and self._max == other._max
        )

    __hash__ = None  # mutable

    # -- pickling (slots) --------------------------------------------------
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DDSketch count={self.count} a={self.relative_accuracy:g} "
            f"buckets={len(self.counts)}>"
        )


class WindowedSketch:
    """Sparse per-window :class:`DDSketch` bank over one metric stream."""

    __slots__ = ("window", "relative_accuracy", "min_value", "sketches")

    def __init__(self, window: float, relative_accuracy: float = 0.01,
                 min_value: float = 1e-9):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.relative_accuracy = float(relative_accuracy)
        self.min_value = float(min_value)
        self.sketches: dict[int, DDSketch] = {}

    def observe(self, t: float, value: float) -> None:
        idx = window_index(t, self.window)
        sketch = self.sketches.get(idx)
        if sketch is None:
            sketch = self.sketches[idx] = DDSketch(
                self.relative_accuracy, self.min_value
            )
        sketch.observe(value)

    def merge(self, other: "WindowedSketch") -> None:
        if other.window != self.window:
            raise ValueError(
                f"cannot merge windowed sketches over different windows: "
                f"{self.window} vs {other.window}"
            )
        for idx, sketch in other.sketches.items():
            mine = self.sketches.get(idx)
            if mine is None:
                mine = self.sketches[idx] = DDSketch(
                    self.relative_accuracy, self.min_value
                )
            mine.merge(sketch)

    def window_indices(self) -> list[int]:
        return sorted(self.sketches)

    def sketch(self, idx: int) -> Optional[DDSketch]:
        return self.sketches.get(idx)

    def merged(self) -> DDSketch:
        """One sketch over every window (the whole-run distribution)."""
        out = DDSketch(self.relative_accuracy, self.min_value)
        for idx in sorted(self.sketches):
            out.merge(self.sketches[idx])
        return out

    @property
    def count(self) -> int:
        return sum(s.count for s in self.sketches.values())

    def items(self) -> Iterator[tuple[int, DDSketch]]:
        for idx in sorted(self.sketches):
            yield idx, self.sketches[idx]

    def __eq__(self, other) -> bool:
        if not isinstance(other, WindowedSketch):
            return NotImplemented
        return (
            self.window == other.window
            and self.relative_accuracy == other.relative_accuracy
            and self.min_value == other.min_value
            and self.sketches == other.sketches
        )

    __hash__ = None  # mutable

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
