"""Declarative SLO targets and the windowed health evaluation.

:class:`SLOTarget` states what "healthy" means for a family of functions
(glob pattern): p99/p50 end-to-end ceilings, cold-start ratio, drop
ratio.  :func:`evaluate_health` grades every (function, window) cell of a
:class:`~repro.health.collector.HealthCollector` against its first
matching target and produces the run-dir artifacts:

``slo.jsonl``
    one row per active (function, window) — counts, sketch quantiles,
    and the list of violated clauses;

``health.json``
    the rollup — per-function violation spans (consecutive violating
    windows), SRE-style multi-window burn rates
    (``violating-fraction / error-budget``), per-worker queue/overhead
    sketches, anomaly alerts, and totals.

Everything here is a pure function of integer-merged accumulators and
the sampled gauge series, iterated in sorted order — which is the whole
determinism argument: a sharded run that merges per-shard collectors
feeds this module the *same* inputs as the serial run, so the JSON bytes
match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional, Sequence

from .collector import COUNT_KEYS, HealthCollector

__all__ = [
    "SLOTarget", "HealthConfig", "HealthReport",
    "evaluate_health", "summaries_health",
]


def _clean(value: float) -> Optional[float]:
    """NaN is not valid strict JSON; absent data is ``null``."""
    if value is None or value != value:
        return None
    return value


@dataclass(frozen=True)
class SLOTarget:
    """What "healthy" means for functions matching ``function`` (glob)."""

    function: str = "*"
    e2e_p99_s: Optional[float] = 2.0
    e2e_p50_s: Optional[float] = None
    cold_ratio: Optional[float] = 0.5
    drop_ratio: Optional[float] = 0.01

    def matches(self, fqdn: str) -> bool:
        return fnmatchcase(fqdn, self.function)

    def describe(self) -> dict:
        return {
            "function": self.function,
            "e2e_p99_s": self.e2e_p99_s,
            "e2e_p50_s": self.e2e_p50_s,
            "cold_ratio": self.cold_ratio,
            "drop_ratio": self.drop_ratio,
        }


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for the health/SLO layer (``TelemetryConfig(health=...)``)."""

    window: float = 10.0              # sim-seconds per evaluation window
    relative_accuracy: float = 0.01   # sketch quantile error bound
    targets: Sequence[SLOTarget] = (SLOTarget(),)
    availability: float = 0.9         # windows allowed to violate: 1 - this
    burn_windows: Sequence[int] = (6, 30)
    detectors: bool = True
    ewma_alpha: float = 0.3
    z_threshold: float = 4.0
    cold_storm_min: int = 4           # cold starts per window to call a storm
    live_interval: Optional[float] = None  # heartbeat period; None -> window

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if not 0.0 < self.relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {self.relative_accuracy}"
            )
        if not 0.0 <= self.availability < 1.0:
            raise ValueError(
                f"availability must be in [0, 1), got {self.availability}"
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        object.__setattr__(
            self, "burn_windows",
            tuple(int(k) for k in self.burn_windows),
        )
        if any(k < 1 for k in self.burn_windows):
            raise ValueError(f"burn_windows must be >= 1, got {self.burn_windows}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {self.z_threshold}")
        if self.cold_storm_min < 1:
            raise ValueError(
                f"cold_storm_min must be >= 1, got {self.cold_storm_min}"
            )
        if self.live_interval is not None and self.live_interval <= 0:
            raise ValueError(
                f"live_interval must be positive, got {self.live_interval}"
            )

    def target_for(self, function: str) -> Optional[SLOTarget]:
        """First matching target wins (declaration order)."""
        for target in self.targets:
            if target.matches(function):
                return target
        return None

    def heartbeat_interval(self) -> float:
        return self.live_interval if self.live_interval is not None else self.window

    def collector(self) -> HealthCollector:
        return HealthCollector(self.window, self.relative_accuracy)

    def describe(self) -> dict:
        return {
            "window": self.window,
            "relative_accuracy": self.relative_accuracy,
            "availability": self.availability,
            "burn_windows": list(self.burn_windows),
            "detectors": self.detectors,
            "targets": [t.describe() for t in self.targets],
        }


@dataclass(frozen=True)
class HealthReport:
    """The evaluated run: ``health.json`` dict + ``slo.jsonl`` rows + alerts."""

    health: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)
    alerts: list = field(default_factory=list)   # Alert objects


def _grade_window(target: Optional[SLOTarget], row: dict) -> list[str]:
    """The violated clauses of ``target`` in one (function, window) cell."""
    if target is None:
        return []
    violations = []
    p99, p50 = row["e2e_p99"], row["e2e_p50"]
    if target.e2e_p99_s is not None and p99 is not None and p99 > target.e2e_p99_s:
        violations.append(f"e2e_p99>{target.e2e_p99_s:g}")
    if target.e2e_p50_s is not None and p50 is not None and p50 > target.e2e_p50_s:
        violations.append(f"e2e_p50>{target.e2e_p50_s:g}")
    cold = row["cold_ratio"]
    if target.cold_ratio is not None and cold is not None and cold > target.cold_ratio:
        violations.append(f"cold_ratio>{target.cold_ratio:g}")
    drop = row["drop_ratio"]
    if target.drop_ratio is not None and drop is not None and drop > target.drop_ratio:
        violations.append(f"drop_ratio>{target.drop_ratio:g}")
    return violations


def _spans(violating: list[int], window: float) -> list[dict]:
    """Consecutive violating window indices, as inclusive spans."""
    spans: list[dict] = []
    for idx in violating:
        if spans and idx == spans[-1]["end_window"] + 1:
            spans[-1]["end_window"] = idx
            spans[-1]["windows"] += 1
            spans[-1]["t1"] = (idx + 1) * window
        else:
            spans.append({
                "start_window": idx,
                "end_window": idx,
                "windows": 1,
                "t0": idx * window,
                "t1": (idx + 1) * window,
            })
    return spans


def _burn_rates(violating: set[int], first: int, last: int,
                config: HealthConfig) -> dict[str, float]:
    """Worst trailing-K burn rate per configured K.

    Burn rate = (violating fraction of the trailing K windows) divided by
    the error budget ``1 - availability``; 1.0 means "burning budget
    exactly as fast as allowed", >1 means the SLO fails if sustained.
    Gap windows (no traffic) count as healthy.
    """
    budget = 1.0 - config.availability
    out: dict[str, float] = {}
    for k in config.burn_windows:
        worst = 0.0
        for end in range(first, last + 1):
            lo = max(first, end - k + 1)
            bad = sum(1 for w in range(lo, end + 1) if w in violating)
            frac = bad / k
            if frac > worst:
                worst = frac
        out[str(k)] = worst / budget
    return out


def evaluate_health(collector: HealthCollector,
                    series: Optional[dict] = None,
                    config: Optional[HealthConfig] = None) -> HealthReport:
    """Grade a collector (and optionally the sampled gauge series) into the
    ``health.json`` / ``slo.jsonl`` artifacts.  Deterministic: sorted
    iteration everywhere, no wall-clock, NaN-free output."""
    if config is None:
        config = HealthConfig(
            window=collector.window,
            relative_accuracy=collector.relative_accuracy,
        )
    if (config.window != collector.window
            or config.relative_accuracy != collector.relative_accuracy):
        raise ValueError(
            "HealthConfig does not match the collector it is grading: "
            f"window {config.window} vs {collector.window}, "
            f"relative_accuracy {config.relative_accuracy} vs "
            f"{collector.relative_accuracy}"
        )
    window = collector.window
    rows: list[dict] = []
    functions: dict[str, dict] = {}
    total_violating = 0
    worst_burn = (0.0, None)  # (rate, function)

    for fn in collector.functions():
        by_window = collector.counts.get(fn, {})
        sketches = collector.e2e.get(fn)
        target = config.target_for(fn)
        indices = set(by_window)
        if sketches is not None:
            indices.update(sketches.sketches)
        violating: list[int] = []
        fn_totals = dict.fromkeys(COUNT_KEYS, 0)
        for idx in sorted(indices):
            counts = by_window.get(idx, dict.fromkeys(COUNT_KEYS, 0))
            for key in COUNT_KEYS:
                fn_totals[key] += counts[key]
            sketch = sketches.sketch(idx) if sketches is not None else None
            p50 = _clean(sketch.quantile(50.0)) if sketch else None
            p99 = _clean(sketch.quantile(99.0)) if sketch else None
            completed, total = counts["completed"], counts["total"]
            row = {
                "function": fn,
                "window": idx,
                "t0": idx * window,
                "t1": (idx + 1) * window,
                **counts,
                "e2e_p50": p50,
                "e2e_p99": p99,
                "cold_ratio": counts["cold"] / completed if completed else None,
                "drop_ratio": counts["dropped"] / total if total else None,
            }
            row["violations"] = _grade_window(target, row)
            row["ok"] = not row["violations"]
            if row["violations"]:
                violating.append(idx)
            rows.append(row)
        total_violating += len(violating)
        first = min(indices) if indices else 0
        last = max(indices) if indices else -1
        burn = (
            _burn_rates(set(violating), first, last, config)
            if indices else {str(k): 0.0 for k in config.burn_windows}
        )
        fn_worst = max(burn.values(), default=0.0)
        if fn_worst > worst_burn[0]:
            worst_burn = (fn_worst, fn)
        merged = sketches.merged() if sketches is not None else None
        functions[fn] = {
            **fn_totals,
            "target": target.describe() if target is not None else None,
            "e2e": (
                {k: _clean(v) for k, v in merged.summary().items()}
                if merged is not None and merged.count else None
            ),
            "violating_windows": len(violating),
            "spans": _spans(violating, window),
            "burn_rates": burn,
            "worst_burn_rate": fn_worst,
        }

    workers: dict[str, dict] = {}
    for worker in collector.workers():
        entry = {}
        for attr in ("queue", "overhead"):
            sketch_bank = getattr(collector, attr).get(worker)
            merged = sketch_bank.merged() if sketch_bank is not None else None
            entry[attr] = (
                {k: _clean(v) for k, v in merged.summary().items()}
                if merged is not None and merged.count else None
            )
        workers[worker] = entry

    alerts: list = []
    if config.detectors and series is not None:
        from .detectors import detect_anomalies
        alerts = detect_anomalies(series, collector, config)

    first, last = collector.window_range()
    totals = collector.totals()
    health = {
        "version": 1,
        "config": config.describe(),
        "window_range": [first, last],
        "totals": {
            **totals,
            "slo_rows": len(rows),
            "violating_windows": total_violating,
            "alert_count": len(alerts),
        },
        "worst_burn": {
            "rate": worst_burn[0],
            "function": worst_burn[1],
        },
        "functions": functions,
        "workers": workers,
        "alerts": [a.as_dict() for a in alerts],
    }
    return HealthReport(health=health, rows=rows, alerts=alerts)


def summaries_health(fqdns: Sequence[str], timestamps, rows,
                     config: Optional[HealthConfig] = None) -> dict:
    """Health rollup for the azure-scale runner's plan-keyed summaries.

    ``rows`` are ``(k, dropped, completed, cold, e2e, overhead)`` tuples
    keyed by plan index ``k`` (the sharded engine's reduced form);
    ``fqdns``/``timestamps`` are the plan's parallel arrays.  Returns the
    compact per-row columns: SLO violation count, worst burn rate and its
    function, alert count (always 0 here — no sampled gauges at this
    seam).
    """
    if config is None:
        config = HealthConfig()
    collector = config.collector()
    for k, dropped, completed, cold, e2e, overhead in rows:
        arrival = float(timestamps[k])
        done = bool(completed) and not dropped
        collector.observe(
            fqdns[k],
            arrival + (e2e if done else 0.0),
            completed=done,
            cold=bool(cold),
            e2e_time=e2e if done else None,
            overhead=overhead if done else None,
        )
    report = evaluate_health(collector, series=None, config=config)
    totals = report.health["totals"]
    return {
        "slo_violations": totals["violating_windows"],
        "slo_rows": totals["slo_rows"],
        "alerts": totals["alert_count"],
        "worst_burn_rate": report.health["worst_burn"]["rate"],
        "worst_burn_function": report.health["worst_burn"]["function"],
    }


def normalize_health(value) -> Optional[HealthConfig]:
    """Coerce a ``TelemetryConfig(health=...)`` value: ``True`` means
    defaults, ``None``/``False`` means off, a :class:`HealthConfig`
    passes through."""
    if value is None or value is False:
        return None
    if value is True:
        return HealthConfig()
    if isinstance(value, HealthConfig):
        return value
    raise TypeError(
        f"health must be a HealthConfig, bool, or None, got {value!r}"
    )


__all__.append("normalize_health")
