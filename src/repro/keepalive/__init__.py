"""Caching-based keep-alive: policies, cache, and trace-driven simulator."""

from .cache import CacheStats, KeepAliveCache
from .entries import WarmContainer
from .policies import (
    POLICY_NAMES,
    GreedyDualPolicy,
    HistogramPolicy,
    KeepAlivePolicy,
    LandlordPolicy,
    LFUPolicy,
    LRUPolicy,
    PreloadRequest,
    TTLPolicy,
    make_policy,
)
from .reuse import HitRatioCurve, hit_ratio_curve, recommend_cache_size, reuse_distances
from .simulator import KeepAliveResult, KeepAliveSimulator, simulate, sweep_cache_sizes

__all__ = [
    "CacheStats",
    "KeepAliveCache",
    "WarmContainer",
    "POLICY_NAMES",
    "GreedyDualPolicy",
    "HistogramPolicy",
    "KeepAlivePolicy",
    "LandlordPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "PreloadRequest",
    "TTLPolicy",
    "make_policy",
    "HitRatioCurve",
    "hit_ratio_curve",
    "recommend_cache_size",
    "reuse_distances",
    "KeepAliveResult",
    "KeepAliveSimulator",
    "simulate",
    "sweep_cache_sizes",
]
