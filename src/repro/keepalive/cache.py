"""Memory-bounded warm-container cache.

This is the core keep-alive data structure shared by the fast trace
simulator (Figures 4/5) and the worker's container pool.  It tracks warm
containers per function under a total memory budget, using a lazy-deletion
min-heap ordered by policy priority for eviction, and lazy expiry for
non-work-conserving policies (TTL/HIST).

Performance notes (this is the hot loop of multi-million-invocation
sweeps): entries use ``__slots__``; heap invalidation is by version stamp
rather than heap surgery; per-function container lists are short so linear
scans beat fancier indexes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .entries import WarmContainer
from .policies import KeepAlivePolicy

__all__ = ["KeepAliveCache", "CacheStats"]


class CacheStats:
    """Counters the cache maintains as it runs."""

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "expirations",
        "rejected",
        "preloads",
        "bytes_evicted_mb",
    )

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.rejected = 0
        self.preloads = 0
        self.bytes_evicted_mb = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return float("nan")
        return self.hits / self.accesses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            return float("nan")
        return self.misses / self.accesses


class KeepAliveCache:
    """Warm containers under a memory budget, evicted by ``policy``."""

    def __init__(
        self,
        policy: KeepAlivePolicy,
        capacity_mb: float,
        on_evict: Optional[Callable[[WarmContainer], None]] = None,
    ):
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb}")
        self.policy = policy
        self.capacity_mb = float(capacity_mb)
        self.used_mb = 0.0
        self.stats = CacheStats()
        self._containers: dict[str, list[WarmContainer]] = {}
        # Lazy-deletion eviction heap of (priority, stamp, container).
        self._evict_heap: list[tuple[float, int, int, WarmContainer]] = []
        self._seq = 0
        self._on_evict_cb = on_evict

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(v) for v in self._containers.values())

    def containers_of(self, fqdn: str) -> list[WarmContainer]:
        return list(self._containers.get(fqdn, ()))

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def set_capacity(self, capacity_mb: float, now: float) -> None:
        """Resize the cache (dynamic provisioning); shrink evicts idle
        containers immediately to get under the new budget."""
        if capacity_mb <= 0:
            raise ValueError(f"capacity_mb must be positive, got {capacity_mb}")
        self.capacity_mb = float(capacity_mb)
        if self.used_mb > self.capacity_mb:
            self._evict_until(self.used_mb - self.capacity_mb, now)

    # -- heap plumbing -------------------------------------------------------
    def _push_heap(self, container: WarmContainer) -> None:
        self._seq += 1
        heapq.heappush(
            self._evict_heap,
            (container.priority, container.stamp, self._seq, container),
        )

    def _restamp(self, container: WarmContainer) -> None:
        container.stamp += 1
        self._push_heap(container)

    # -- expiry ------------------------------------------------------------
    def expire(self, now: float) -> int:
        """Evict every idle container whose policy expiry has passed.

        TTL-like policies are non-work-conserving: containers leave the
        cache even without memory pressure.  Called by the simulator before
        each arrival batch and by the worker's background eviction thread.
        """
        expired = []
        for containers in self._containers.values():
            for c in containers:
                if c.expires_at <= now and c.is_idle(now):
                    expired.append(c)
        for c in expired:
            self._remove(c, expired_eviction=True)
        return len(expired)

    # -- main operations -----------------------------------------------------
    def lookup(self, fqdn: str, now: float) -> Optional[WarmContainer]:
        """Find an idle, unexpired warm container; count hit/miss; claim it.

        On a hit the container is marked busy-until-now (the caller sets the
        real completion time via :meth:`finish`) and its policy priority is
        refreshed.
        """
        best = None
        for c in self._containers.get(fqdn, ()):
            if c.is_idle(now):
                if c.expires_at <= now:
                    continue  # lazily expired; reaped below
                best = c
                break
        # Reap this function's expired idle containers lazily.
        for c in list(self._containers.get(fqdn, ())):
            if c is not best and c.expires_at <= now and c.is_idle(now):
                self._remove(c, expired_eviction=True)
        if best is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        # Claim the container: it is busy until the caller calls finish().
        best.busy_until = float("inf")
        self.policy.on_access(best, now)
        self._restamp(best)
        return best

    def insert(
        self,
        fqdn: str,
        memory_mb: float,
        init_cost: float,
        warm_time: float,
        now: float,
        prewarmed: bool = False,
    ) -> Optional[WarmContainer]:
        """Add a new warm container, evicting idle victims to make room.

        Returns ``None`` when the memory cannot be freed (every resident
        container is busy) — the invocation still runs but is not cached.
        """
        if memory_mb > self.capacity_mb:
            self.stats.rejected += 1
            return None
        deficit = (self.used_mb + memory_mb) - self.capacity_mb
        if deficit > 0 and not self._evict_until(deficit, now):
            self.stats.rejected += 1
            return None
        container = WarmContainer(
            fqdn=fqdn,
            memory_mb=memory_mb,
            init_cost=init_cost,
            warm_time=warm_time,
            now=now,
            prewarmed=prewarmed,
        )
        self.policy.on_insert(container, now)
        self._containers.setdefault(fqdn, []).append(container)
        self.used_mb += container.memory_mb
        self._push_heap(container)
        if prewarmed:
            self.stats.preloads += 1
        return container

    def finish(self, container: WarmContainer, busy_until: float) -> None:
        """Mark the container busy until its invocation completes."""
        container.busy_until = busy_until

    def evict_one(self, now: float) -> Optional[WarmContainer]:
        """Evict the lowest-priority idle container; None if all busy."""
        buffer: list[tuple[float, int, int, WarmContainer]] = []
        victim = None
        while self._evict_heap:
            pri, stamp, seq, cand = heapq.heappop(self._evict_heap)
            if cand.evicted or stamp != cand.stamp:
                continue  # stale heap entry
            if not cand.is_idle(now):
                buffer.append((pri, stamp, seq, cand))
                continue
            victim = cand
            break
        for item in buffer:
            heapq.heappush(self._evict_heap, item)
        if victim is None:
            return None
        self._remove(victim, expired_eviction=False)
        return victim

    def _evict_until(self, needed_mb: float, now: float) -> bool:
        """Evict idle victims until ``needed_mb`` has been freed."""
        freed = 0.0
        evicted: list[WarmContainer] = []
        while freed < needed_mb:
            victim = self.evict_one(now)
            if victim is None:
                # Cannot free enough; the evictions already made stand
                # (they were the policy's lowest-value containers anyway).
                return False
            freed += victim.memory_mb
            evicted.append(victim)
        return True

    def _remove(self, container: WarmContainer, expired_eviction: bool) -> None:
        containers = self._containers.get(container.fqdn)
        if not containers or container not in containers:
            raise KeyError(f"container {container!r} not resident")
        containers.remove(container)
        if not containers:
            del self._containers[container.fqdn]
        container.evicted = True
        container.stamp += 1  # invalidate heap entries
        self.used_mb -= container.memory_mb
        if self.used_mb < 1e-9:
            self.used_mb = 0.0
        self.stats.evictions += 1
        self.stats.bytes_evicted_mb += container.memory_mb
        if expired_eviction:
            self.stats.expirations += 1
        self.policy.on_evict(container)
        if self._on_evict_cb is not None:
            self._on_evict_cb(container)

    # -- invariants (used by property-based tests) ----------------------------
    def check_invariants(self, now: Optional[float] = None) -> None:
        """Assert internal consistency; raises AssertionError on violation.

        The memory budget is a *soft* bound under capacity shrinks: busy
        containers cannot be evicted, so overflow is allowed up to the
        total busy footprint (checked when ``now`` is provided).
        """
        total = 0.0
        busy = 0.0
        for fqdn, containers in self._containers.items():
            assert containers, f"empty list retained for {fqdn}"
            for c in containers:
                assert not c.evicted, f"evicted container resident: {c!r}"
                assert c.fqdn == fqdn
                total += c.memory_mb
                if now is not None and not c.is_idle(now):
                    busy += c.memory_mb
        assert abs(total - self.used_mb) < 1e-6, (total, self.used_mb)
        if now is not None:
            assert self.used_mb <= self.capacity_mb + busy + 1e-6
