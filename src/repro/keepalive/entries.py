"""Cache-entry model shared by the keep-alive policies.

A :class:`WarmContainer` is one initialized sandbox held in memory.  The
keep-alive problem treats it as a cache object with a *size* (its memory
footprint), a *cost* (the initialization overhead a miss would pay), a
frequency and a recency — exactly the four-way tradeoff the Greedy-Dual
family navigates.
"""

from __future__ import annotations

import itertools

__all__ = ["WarmContainer"]

_container_ids = itertools.count(1)


class WarmContainer:
    """One warm container: cache metadata plus occupancy state.

    ``busy_until`` is the simulated time at which the container finishes
    its current invocation and becomes idle (and therefore evictable).
    ``stamp`` is a version counter for lazy-deletion heaps: every priority
    update increments it, invalidating stale heap entries.
    """

    __slots__ = (
        "id",
        "fqdn",
        "memory_mb",
        "init_cost",
        "warm_time",
        "freq",
        "last_used",
        "inserted_at",
        "busy_until",
        "priority",
        "expires_at",
        "stamp",
        "evicted",
        "prewarmed",
    )

    def __init__(
        self,
        fqdn: str,
        memory_mb: float,
        init_cost: float,
        warm_time: float,
        now: float,
        prewarmed: bool = False,
    ):
        if memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {memory_mb}")
        if init_cost < 0:
            raise ValueError(f"init_cost must be non-negative, got {init_cost}")
        self.id = next(_container_ids)
        self.fqdn = fqdn
        self.memory_mb = float(memory_mb)
        self.init_cost = float(init_cost)
        self.warm_time = float(warm_time)
        self.freq = 1
        self.last_used = now
        self.inserted_at = now
        self.busy_until = now
        self.priority = 0.0
        self.expires_at = float("inf")
        self.stamp = 0
        self.evicted = False
        self.prewarmed = prewarmed

    def is_idle(self, now: float) -> bool:
        return self.busy_until <= now

    def touch(self, now: float) -> None:
        """Register an access: bump frequency and recency."""
        self.freq += 1
        self.last_used = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WarmContainer {self.fqdn}#{self.id} mem={self.memory_mb} "
            f"freq={self.freq} pri={self.priority:.4g}>"
        )
