"""Keep-alive eviction policies (FaasCache, Section 6.1 of the hybrid text).

Each policy answers three questions about a warm container:

* ``priority(entry, now)`` — victim ordering; the *lowest* priority idle
  container is evicted first.  Called on every access so Greedy-Dual-style
  inflation works; cached on the entry.
* ``expiry_time(entry)`` — absolute time at which the entry expires even
  without memory pressure (``inf`` for work-conserving policies).  This is
  what makes TTL/HIST *non-work-conserving*.
* ``on_evict(entry)`` — bookkeeping hook (Greedy-Dual clock inflation).

Policies implemented, matching the paper's legend names:

=======  ====================================================
TTL      OpenWhisk default: 10-minute idle TTL, LRU when full
LRU      classic recency
FREQ     LFU, classic frequency
GD       Greedy-Dual-Size-Frequency: clock + freq*cost/size
LND      Landlord: clock + cost/size (rent renewed on access)
HIST     Shahrad et al. histogram keep-alive (TTL+prefetch)
=======  ====================================================
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..metrics.stats import OnlineStats
from .entries import WarmContainer

__all__ = [
    "KeepAlivePolicy",
    "TTLPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "GreedyDualPolicy",
    "LandlordPolicy",
    "HistogramPolicy",
    "PreloadRequest",
    "make_policy",
    "POLICY_NAMES",
]


class KeepAlivePolicy:
    """Base class; subclasses override priority/expiry/bookkeeping hooks."""

    name = "base"

    def priority(self, entry: WarmContainer, now: float) -> float:
        raise NotImplementedError

    def expiry_time(self, entry: WarmContainer) -> float:
        """Absolute expiry; ``inf`` means work-conserving (never expires)."""
        return float("inf")

    def on_insert(self, entry: WarmContainer, now: float) -> None:
        entry.priority = self.priority(entry, now)
        entry.expires_at = self.expiry_time(entry)

    def on_access(self, entry: WarmContainer, now: float) -> None:
        entry.touch(now)
        entry.priority = self.priority(entry, now)
        entry.expires_at = self.expiry_time(entry)

    def on_evict(self, entry: WarmContainer) -> None:
        pass

    def reset(self) -> None:
        """Clear any cross-entry state (Greedy-Dual clock, histograms)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


class LRUPolicy(KeepAlivePolicy):
    """Evict the least recently used idle container."""

    name = "LRU"

    def priority(self, entry: WarmContainer, now: float) -> float:
        return entry.last_used


class TTLPolicy(KeepAlivePolicy):
    """OpenWhisk's default: fixed idle TTL; LRU victim order when full."""

    name = "TTL"

    def __init__(self, ttl: float = 600.0):
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = float(ttl)

    def priority(self, entry: WarmContainer, now: float) -> float:
        return entry.last_used

    def expiry_time(self, entry: WarmContainer) -> float:
        return entry.last_used + self.ttl


class LFUPolicy(KeepAlivePolicy):
    """FREQ in the paper's figures: evict the least frequently used."""

    name = "FREQ"

    def priority(self, entry: WarmContainer, now: float) -> float:
        return float(entry.freq)


class GreedyDualPolicy(KeepAlivePolicy):
    """Greedy-Dual-Size-Frequency (the paper's GD).

    Priority = L + freq * cost / size, where L is the cache-wide inflation
    clock, set to the victim's priority on each eviction.  This folds
    recency (via L), frequency, miss cost and memory footprint into one
    scalar — the paper's central "keep-alive is caching" insight.
    """

    name = "GD"

    def __init__(self):
        self.clock = 0.0

    def priority(self, entry: WarmContainer, now: float) -> float:
        size = max(entry.memory_mb, 1e-9)
        return self.clock + entry.freq * entry.init_cost / size

    def on_evict(self, entry: WarmContainer) -> None:
        # Inflate the clock: future insertions outrank long-idle entries.
        self.clock = max(self.clock, entry.priority)

    def reset(self) -> None:
        self.clock = 0.0


class LandlordPolicy(KeepAlivePolicy):
    """Landlord (the paper's LND): Greedy-Dual without the frequency term.

    Each container pays rent proportional to its size; its credit
    (cost/size) is renewed in full on every access.  Equivalent to GDSF
    with freq pinned at 1.
    """

    name = "LND"

    def __init__(self):
        self.clock = 0.0

    def priority(self, entry: WarmContainer, now: float) -> float:
        size = max(entry.memory_mb, 1e-9)
        return self.clock + entry.init_cost / size

    def on_evict(self, entry: WarmContainer) -> None:
        self.clock = max(self.clock, entry.priority)

    def reset(self) -> None:
        self.clock = 0.0


class PreloadRequest:
    """A scheduled prewarm: bring ``fqdn`` into the cache at ``when`` and
    keep it until ``keep_until`` unless accessed."""

    __slots__ = ("when", "fqdn", "keep_until")

    def __init__(self, when: float, fqdn: str, keep_until: float):
        self.when = when
        self.fqdn = fqdn
        self.keep_until = keep_until

    def __lt__(self, other: "PreloadRequest") -> bool:
        return self.when < other.when


class _FunctionHistory:
    """Per-function IAT histogram in minute buckets (HIST policy state)."""

    __slots__ = ("buckets", "stats", "last_invocation")

    def __init__(self, n_buckets: int):
        self.buckets = np.zeros(n_buckets, dtype=np.int64)
        self.stats = OnlineStats()
        self.last_invocation: Optional[float] = None

    def record(self, now: float) -> None:
        if self.last_invocation is not None:
            iat = now - self.last_invocation
            minute = int(iat // 60.0)
            if minute < self.buckets.size:
                self.buckets[min(minute, self.buckets.size - 1)] += 1
                self.stats.push(iat)
            # IATs beyond the histogram window would use ARIMA in the
            # original system; the paper's reproduction skips it (~0.56%
            # of invocations), and so do we: out-of-window IATs are not
            # recorded, pushing the function toward the generic TTL.
        self.last_invocation = now

    def percentile_iat(self, q: float, edge: str = "upper") -> float:
        """q-th percentile of the bucketized IAT distribution (seconds).

        Buckets are minute-wide; ``edge`` picks which bucket boundary to
        report.  The *lower* edge is used for the pre-warming window (be
        early rather than late) and the *upper* edge for the keep-alive
        window (keep a little longer than observed).
        """
        total = int(self.buckets.sum())
        if total == 0:
            return float("nan")
        cdf = np.cumsum(self.buckets)
        idx = int(np.searchsorted(cdf, math.ceil(q / 100.0 * total)))
        if edge == "lower":
            return idx * 60.0
        if edge == "upper":
            return (idx + 1) * 60.0
        raise ValueError(f"edge must be 'lower' or 'upper', got {edge!r}")

    @property
    def predictable(self) -> bool:
        return self.stats.n >= 2 and self.stats.cov <= 2.0


class HistogramPolicy(KeepAlivePolicy):
    """Best-effort reproduction of the Shahrad et al. hybrid histogram
    keep-alive policy (the paper's HIST; described in Section 6.1).

    Per function, IATs are recorded in minute-granularity buckets up to a
    four-hour window, with the coefficient of variation maintained by
    Welford's algorithm.  When a function's IAT is predictable (CoV <= 2),
    its container is kept only briefly after going idle and *pre-loaded*
    shortly before the predicted next invocation (head percentile of the
    histogram), staying until the tail percentile.  Unpredictable
    functions fall back to a generic two-hour TTL.

    Because the policy reasons purely about inter-arrival times, it is
    blind to function size and initialization cost — the limitation that
    makes it lose to Greedy-Dual on heterogeneous workloads.
    """

    name = "HIST"

    def __init__(
        self,
        window_hours: float = 4.0,
        generic_ttl: float = 7200.0,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        margin: float = 0.15,
        min_samples: int = 4,
    ):
        if generic_ttl <= 0:
            raise ValueError("generic_ttl must be positive")
        if not 0 <= margin < 1:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        if not 0 < head_percentile <= tail_percentile <= 100:
            raise ValueError("need 0 < head <= tail <= 100")
        self.generic_ttl = float(generic_ttl)
        self.head_percentile = float(head_percentile)
        self.tail_percentile = float(tail_percentile)
        self.margin = float(margin)
        self.min_samples = int(min_samples)
        self._n_buckets = int(window_hours * 60)
        self._history: dict[str, _FunctionHistory] = {}

    def _hist(self, fqdn: str) -> _FunctionHistory:
        hist = self._history.get(fqdn)
        if hist is None:
            hist = _FunctionHistory(self._n_buckets)
            self._history[fqdn] = hist
        return hist

    def record_arrival(self, fqdn: str, now: float) -> None:
        """Called by the simulator for every invocation (hit or miss)."""
        self._hist(fqdn).record(now)

    def priority(self, entry: WarmContainer, now: float) -> float:
        return entry.last_used

    def _windows(self, fqdn: str) -> Optional[tuple[float, float]]:
        """(head, tail) keep-alive windows in seconds, or None if the
        function's IAT history is unusable or unpredictable."""
        hist = self._history.get(fqdn)
        if hist is None or not hist.predictable or hist.stats.n < self.min_samples:
            return None
        head = hist.percentile_iat(self.head_percentile, edge="lower")
        tail = hist.percentile_iat(self.tail_percentile, edge="upper")
        if math.isnan(head) or math.isnan(tail):
            return None
        return head, tail

    def expiry_time(self, entry: WarmContainer) -> float:
        windows = self._windows(entry.fqdn)
        if windows is None:
            return entry.last_used + self.generic_ttl
        head, tail = windows
        if head <= 0:
            # Next invocation may arrive immediately: no pre-warming window,
            # keep alive through the tail of the IAT distribution.
            return entry.last_used + tail * (1.0 + self.margin)
        # A real gap is predicted: release the container right away; the
        # scheduled preload re-creates it just before the predicted arrival.
        return entry.last_used

    def preloads_after(self, fqdn: str, now: float) -> list[PreloadRequest]:
        """Prewarm schedule after an invocation of ``fqdn`` at ``now``."""
        windows = self._windows(fqdn)
        if windows is None:
            return []
        head, tail = windows
        if head <= 0:
            return []  # container stays warm instead
        preload_at = now + head * (1.0 - self.margin)
        keep_until = now + tail * (1.0 + self.margin)
        return [PreloadRequest(when=preload_at, fqdn=fqdn, keep_until=keep_until)]

    def reset(self) -> None:
        self._history.clear()


POLICY_NAMES = ("TTL", "LRU", "FREQ", "GD", "LND", "HIST")


def make_policy(name: str, **kwargs) -> KeepAlivePolicy:
    """Factory by paper legend name (case-insensitive)."""
    table = {
        "TTL": TTLPolicy,
        "LRU": LRUPolicy,
        "FREQ": LFUPolicy,
        "LFU": LFUPolicy,
        "GD": GreedyDualPolicy,
        "GDSF": GreedyDualPolicy,
        "LND": LandlordPolicy,
        "LANDLORD": LandlordPolicy,
        "HIST": HistogramPolicy,
    }
    cls = table.get(name.upper())
    if cls is None:
        raise ValueError(f"unknown keep-alive policy {name!r}; choose from {sorted(table)}")
    return cls(**kwargs)
