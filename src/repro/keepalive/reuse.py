"""Reuse distances and hit-ratio curves (the paper's provisioning lens).

"Caching concepts such as reuse distances and hit-ratio curves can also
be used for auto-scaled server resource provisioning" (abstract).  This
module computes, for a trace:

* per-invocation **weighted reuse distances** — the total memory of
  *distinct* functions invoked since this function's previous invocation
  (Mattson stack distance, weighted by container footprint); and
* the **hit-ratio curve** (HRC) — for each candidate cache size, the
  fraction of invocations whose reuse distance fits, i.e. that an LRU
  keep-alive cache of that size would serve warm;

and uses the HRC to recommend the smallest cache size achieving a target
cold-start ratio — static provisioning's analytical counterpart to the
Figure-8 feedback controller.

The computation uses a Fenwick (binary indexed) tree over access ranks,
O(N log N) for N invocations, with the distance accounting done in MB so
variable container sizes are handled exactly.  The model matches the
keep-alive simulator's LRU behaviour up to concurrency effects (busy
containers cannot be evicted; stack distances ignore that), which is the
same approximation the caching literature makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..trace.model import Trace

__all__ = [
    "reuse_distances",
    "HitRatioCurve",
    "hit_ratio_curve",
    "recommend_cache_size",
]


class _Fenwick:
    """Fenwick tree over float weights, 1-indexed."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = np.zeros(size + 1)

    def add(self, i: int, delta: float) -> None:
        i += 1
        while i <= self.size:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> float:
        """Sum of weights at indices [0, i]."""
        i += 1
        total = 0.0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return float(total)

    def range_sum(self, lo: int, hi: int) -> float:
        """Sum over [lo, hi] inclusive; 0 when empty."""
        if hi < lo:
            return 0.0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0.0)


def reuse_distances(trace: Trace) -> np.ndarray:
    """Weighted reuse distance (MB) per invocation; inf for first access.

    distance[i] = total memory of distinct functions invoked strictly
    between invocation i and the previous invocation of the same function.
    An LRU cache of size >= distance[i] + memory(f) serves invocation i
    warm (ignoring concurrency).
    """
    n = len(trace)
    distances = np.full(n, np.inf)
    if n == 0:
        return distances
    fenwick = _Fenwick(n)
    last_access: dict[int, int] = {}   # function idx -> last access rank
    memory = np.array([f.memory_mb for f in trace.functions])
    fidx = trace.function_idx
    for i in range(n):
        f = int(fidx[i])
        prev = last_access.get(f)
        if prev is not None:
            # Distinct-function memory touched in (prev, i).
            distances[i] = fenwick.range_sum(prev + 1, i - 1)
            fenwick.add(prev, -float(memory[f]))
        fenwick.add(i, float(memory[f]))
        last_access[f] = i
    return distances


@dataclass(frozen=True)
class HitRatioCurve:
    """Hit ratio as a function of cache size (MB).

    ``sizes_mb``/``hit_ratios`` are a plot-friendly sampling; queries via
    :meth:`hit_ratio_at` / :meth:`size_for_hit_ratio` are *exact* (the
    curve retains the sorted per-invocation size requirements — the hit
    ratio is a step function, and interpolating it misleads between
    steps).
    """

    sizes_mb: np.ndarray
    hit_ratios: np.ndarray
    compulsory_miss_ratio: float  # first-access misses: no size fixes these
    _sorted_required: np.ndarray = None
    _n: int = 0

    def hit_ratio_at(self, size_mb: float) -> float:
        """Exact warm (hit) ratio at a cache size."""
        if size_mb <= 0 or self._n == 0:
            return 0.0
        hits = int(np.searchsorted(self._sorted_required, size_mb,
                                   side="right"))
        return hits / self._n

    def cold_ratio_at(self, size_mb: float) -> float:
        return 1.0 - self.hit_ratio_at(size_mb)

    def size_for_hit_ratio(self, target: float) -> Optional[float]:
        """Smallest size achieving >= target hit ratio; None if unreachable."""
        if not 0 <= target <= 1:
            raise ValueError(f"target must be in [0, 1], got {target}")
        if self._n == 0:
            return None
        if target <= 0:
            return 0.0
        k = int(np.ceil(target * self._n))  # need at least k hits
        if k > self._sorted_required.size:
            return None
        return float(self._sorted_required[k - 1])


def hit_ratio_curve(
    trace: Trace,
    sizes_mb: Optional[Sequence[float]] = None,
    points: int = 64,
) -> HitRatioCurve:
    """Mattson-style HRC: one trace pass yields every cache size at once."""
    distances = reuse_distances(trace)
    n = distances.size
    memory = np.array([f.memory_mb for f in trace.functions])
    required = np.where(
        np.isinf(distances),
        np.inf,
        distances + memory[trace.function_idx] if n else distances,
    )
    finite = required[np.isfinite(required)]
    compulsory = float(np.isinf(required).sum() / n) if n else float("nan")

    if sizes_mb is None:
        if finite.size:
            top = float(np.percentile(finite, 99.5))
            sizes = np.unique(
                np.concatenate([[0.0], np.linspace(0.0, max(top, 1.0), points)])
            )
        else:
            sizes = np.array([0.0, 1.0])
    else:
        sizes = np.sort(np.asarray(list(sizes_mb), dtype=float))
    if n == 0:
        return HitRatioCurve(sizes, np.zeros(sizes.size), float("nan"),
                             _sorted_required=np.empty(0), _n=0)

    sorted_required = np.sort(finite)
    hits = np.searchsorted(sorted_required, sizes, side="right")
    ratios = hits / n
    return HitRatioCurve(sizes_mb=sizes, hit_ratios=ratios,
                         compulsory_miss_ratio=compulsory,
                         _sorted_required=sorted_required, _n=n)


def recommend_cache_size(
    trace: Trace,
    target_cold_ratio: float,
    points: int = 256,
) -> Optional[float]:
    """Smallest cache size (MB) whose predicted cold ratio meets the target.

    Returns None when the target is below the compulsory miss ratio (no
    amount of keep-alive memory avoids first-ever invocations).
    """
    if not 0 <= target_cold_ratio <= 1:
        raise ValueError("target_cold_ratio must be in [0, 1]")
    curve = hit_ratio_curve(trace, points=points)
    if target_cold_ratio < curve.compulsory_miss_ratio:
        return None
    return curve.size_for_hit_ratio(1.0 - target_cold_ratio)
