"""Trace-driven discrete-event keep-alive simulator (Figures 4 and 5).

Replays a :class:`~repro.trace.model.Trace` against a
:class:`~repro.keepalive.cache.KeepAliveCache` under a chosen policy and
reports the two paper metrics:

* **cold-start ratio** — the fraction of invocations that found no warm
  container (the miss-ratio curves of Figure 5);
* **increase in execution time** — total cold-start overhead divided by
  the total warm execution time, averaged over *all* invocations (the
  user-visible slowdown of Figure 4).

The loop is deliberately lean: it walks two NumPy arrays, does dictionary
lookups keyed by function index, and defers every reduction to the end.
HIST's prewarm requests are interleaved through a heap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..trace.model import Trace
from .cache import KeepAliveCache
from .policies import HistogramPolicy, KeepAlivePolicy, make_policy

__all__ = ["KeepAliveResult", "KeepAliveSimulator", "sweep_cache_sizes"]


# eq=False: the mutable per_function_cold dict makes value equality (and
# the hash frozen+eq would synthesize from it) unreliable — two results
# could compare equal and then diverge, or hash inconsistently.  Frozen
# instances therefore keep identity semantics.
@dataclass(frozen=True, eq=False)
class KeepAliveResult:
    """Outcome of one trace replay."""

    policy: str
    cache_size_mb: float
    invocations: int
    cold_starts: int
    warm_starts: int
    uncacheable: int          # colds that could not even be cached afterwards
    total_warm_exec: float    # seconds of pure function execution
    total_cold_overhead: float  # seconds of added initialization latency
    evictions: int
    expirations: int
    preloads: int
    per_function_cold: dict = field(default_factory=dict)

    @property
    def cold_ratio(self) -> float:
        if self.invocations == 0:
            return float("nan")
        return self.cold_starts / self.invocations

    @property
    def exec_increase_pct(self) -> float:
        """Global % increase in execution time due to cold starts."""
        if self.total_warm_exec <= 0:
            return float("nan")
        return 100.0 * self.total_cold_overhead / self.total_warm_exec

    def row(self) -> dict:
        return {
            "policy": self.policy,
            "cache_gb": self.cache_size_mb / 1024.0,
            "invocations": self.invocations,
            "cold_ratio": self.cold_ratio,
            "exec_increase_pct": self.exec_increase_pct,
        }


class KeepAliveSimulator:
    """Replays traces through a keep-alive cache.

    ``tick_interval``/``on_tick`` provide the hook the dynamic-provisioning
    controller (Figure 8) uses: ``on_tick(now, simulator)`` runs every
    interval of simulated time and may resize ``simulator.cache``.
    """

    def __init__(
        self,
        policy: KeepAlivePolicy,
        cache_size_mb: float,
        tick_interval: Optional[float] = None,
        on_tick: Optional[Callable[[float, "KeepAliveSimulator"], None]] = None,
    ):
        self.policy = policy
        self.cache = KeepAliveCache(policy, cache_size_mb)
        if tick_interval is not None and tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        self.tick_interval = tick_interval
        self.on_tick = on_tick
        # Running counters (exposed so ticks can compute rates).
        self.cold_starts = 0
        self.warm_starts = 0
        self.uncacheable = 0
        self.total_warm_exec = 0.0
        self.total_cold_overhead = 0.0
        self.now = 0.0

    def run(self, trace: Trace) -> KeepAliveResult:
        cache = self.cache
        policy = self.policy
        is_hist = isinstance(policy, HistogramPolicy)
        functions = trace.functions
        timestamps = trace.timestamps
        per_function_cold: dict[str, int] = {}
        profiles = {f.name: f for f in functions}

        # Hot-loop setup.  The replay visits millions of invocations, so
        # the per-invocation costs of `functions[int(fidx[i])]` plus a
        # dataclass attribute walk (and the `cold - warm` property) add
        # up.  Resolve every per-function attribute into parallel lists
        # once, convert the NumPy arrays to plain Python scalars in one
        # bulk `tolist()` (no per-element scalar boxing), and cache the
        # cache's bound methods.  Same floats, same call sequence —
        # results are bit-identical to the naive loop.
        names = [f.name for f in functions]
        mems = [float(f.memory_mb) for f in functions]
        warms = [float(f.warm_time) for f in functions]
        colds = [float(f.cold_time) for f in functions]
        inits = [c - w for c, w in zip(colds, warms)]
        ts_list = timestamps.tolist()
        fi_list = trace.function_idx.tolist()

        cache_lookup = cache.lookup
        cache_finish = cache.finish
        cache_insert = cache.insert
        heappush = heapq.heappush
        heappop = heapq.heappop
        record_arrival = policy.record_arrival if is_hist else None
        preloads_after = policy.preloads_after if is_hist else None

        # Running counters live in locals inside the loop; they flush to
        # the instance attributes around controller ticks (ticks read
        # e.g. ``sim.cold_starts``) and at the end of the replay.
        cold_starts = self.cold_starts
        warm_starts = self.warm_starts
        uncacheable = self.uncacheable
        total_warm_exec = self.total_warm_exec
        total_cold_overhead = self.total_cold_overhead

        preload_heap: list = []  # (when, PreloadRequest) for HIST
        tick_interval = self.tick_interval
        next_tick = tick_interval if tick_interval is not None else None

        for i, t in enumerate(ts_list):
            j = fi_list[i]
            name = names[j]
            warm_time = warms[j]
            self.now = t

            # Fire any controller ticks due before this arrival.
            if next_tick is not None:
                while next_tick <= t:
                    if self.on_tick is not None:
                        self.cold_starts = cold_starts
                        self.warm_starts = warm_starts
                        self.uncacheable = uncacheable
                        self.total_warm_exec = total_warm_exec
                        self.total_cold_overhead = total_cold_overhead
                        self.on_tick(next_tick, self)
                        # The tick may resize or replace the cache and
                        # adjust counters; re-resolve everything cached.
                        cold_starts = self.cold_starts
                        warm_starts = self.warm_starts
                        uncacheable = self.uncacheable
                        total_warm_exec = self.total_warm_exec
                        total_cold_overhead = self.total_cold_overhead
                        cache = self.cache
                        cache_lookup = cache.lookup
                        cache_finish = cache.finish
                        cache_insert = cache.insert
                    next_tick += tick_interval

            # Apply due HIST preloads.
            while preload_heap and preload_heap[0][0] <= t:
                _, req = heappop(preload_heap)
                self._apply_preload(req, profiles)

            if is_hist:
                record_arrival(name, t)

            container = cache_lookup(name, t)
            if container is not None:
                # Warm start: runs for the warm (average) time.
                cache_finish(container, t + warm_time)
                warm_starts += 1
                idle_at = t + warm_time
            else:
                # Cold start: pay the initialization overhead.
                cold_starts += 1
                per_function_cold[name] = per_function_cold.get(name, 0) + 1
                total_cold_overhead += inits[j]
                container = cache_insert(name, mems[j], inits[j], warm_time, t)
                if container is None:
                    uncacheable += 1
                    idle_at = None
                else:
                    cache_finish(container, t + colds[j])
                    idle_at = t + colds[j]
            total_warm_exec += warm_time

            if is_hist and idle_at is not None:
                for req in preloads_after(name, t):
                    heappush(preload_heap, (req.when, req))

        self.cold_starts = cold_starts
        self.warm_starts = warm_starts
        self.uncacheable = uncacheable
        self.total_warm_exec = total_warm_exec
        self.total_cold_overhead = total_cold_overhead

        return KeepAliveResult(
            policy=policy.name,
            cache_size_mb=cache.capacity_mb,
            invocations=int(timestamps.size),
            cold_starts=cold_starts,
            warm_starts=warm_starts,
            uncacheable=uncacheable,
            total_warm_exec=total_warm_exec,
            total_cold_overhead=total_cold_overhead,
            evictions=cache.stats.evictions,
            expirations=cache.stats.expirations,
            preloads=cache.stats.preloads,
            per_function_cold=per_function_cold,
        )

    def _apply_preload(self, req, profiles) -> None:
        """Bring a predicted-hot function into the cache (best effort)."""
        cache = self.cache
        # Already resident (never unloaded, or busy)? Extend its keep-alive
        # through the predicted window instead of inserting a duplicate —
        # still counted as a preload, since the policy kept the function
        # warm for a predicted arrival.
        for c in cache.containers_of(req.fqdn):
            c.expires_at = max(c.expires_at, req.keep_until)
            cache.stats.preloads += 1
            return
        profile = profiles.get(req.fqdn)
        if profile is None:  # pragma: no cover - defensive
            return
        container = cache.insert(
            req.fqdn,
            profile.memory_mb,
            profile.init_cost,
            profile.warm_time,
            req.when,
            prewarmed=True,
        )
        if container is not None:
            container.expires_at = req.keep_until


def simulate(
    trace: Trace,
    policy_name: str,
    cache_size_mb: float,
    **policy_kwargs,
) -> KeepAliveResult:
    """One-shot convenience: build policy + simulator, replay the trace."""
    policy = make_policy(policy_name, **policy_kwargs)
    return KeepAliveSimulator(policy, cache_size_mb).run(trace)


def sweep_cache_sizes(
    trace: Trace,
    policy_names: Sequence[str],
    cache_sizes_gb: Sequence[float],
    n_jobs: Optional[int] = None,
) -> list[KeepAliveResult]:
    """The Fig-4/5 parameter sweep: policies x cache sizes over one trace.

    Every run gets a fresh policy and cache (policies carry cross-entry
    state such as the Greedy-Dual clock and HIST histograms).  The grid
    fans out over ``n_jobs`` worker processes (default serial), shipping
    the trace to each worker once; results come back in grid order.
    """
    from ..parallel.pool import run_parallel
    from ..parallel.tasks import cache_size_cell

    cells = [
        (name, size_gb * 1024.0)
        for name in policy_names
        for size_gb in cache_sizes_gb
    ]
    return run_parallel(cache_size_cell, cells, n_jobs=n_jobs, shared=trace)
