"""Load balancing: CH-BL and the cluster front end."""

from .chbl import BoundedLoadBalancer, ConsistentHashRing, hash_point
from .cluster import Cluster
from .policies import (
    CHBLPolicy,
    LeastLoadedBalancer,
    LoadBalancingPolicy,
    RoundRobinBalancer,
    StatusBoard,
    make_balancer,
)

__all__ = [
    "BoundedLoadBalancer",
    "ConsistentHashRing",
    "hash_point",
    "Cluster",
    "CHBLPolicy",
    "LeastLoadedBalancer",
    "LoadBalancingPolicy",
    "RoundRobinBalancer",
    "StatusBoard",
    "make_balancer",
]
