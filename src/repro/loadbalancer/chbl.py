"""Consistent hashing with bounded loads (CH-BL) — the paper's stateless,
locality-aware load-balancing scheme (Section 3.1).

Functions hash onto a ring of worker virtual nodes; an invocation goes to
the first worker at-or-after its hash point whose load is under the bound
``ceil(c * mean_load)``, forwarding clockwise otherwise.  Locality (same
function → same worker → warm start) is preserved until a worker
saturates, at which point spillover shares the burst.

The load signal is the worker's queue length plus running invocations —
the paper's argument for queue-based load reporting is that it is less
stale/noisy than load averages.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Callable, Optional, Sequence

__all__ = ["hash_point", "ConsistentHashRing", "BoundedLoadBalancer"]


def hash_point(key: str, salt: int = 0) -> int:
    """Stable 64-bit hash of a string key (BLAKE2b, seed via salt)."""
    h = hashlib.blake2b(
        key.encode("utf-8"), digest_size=8, salt=salt.to_bytes(8, "little")
    )
    return int.from_bytes(h.digest(), "big")


class ConsistentHashRing:
    """A ring of (point, member) pairs with virtual nodes."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._members: list[str] = []

    def add(self, member: str) -> None:
        if member in set(self._members):
            raise ValueError(f"member {member!r} already on the ring")
        for v in range(self.vnodes):
            point = hash_point(f"{member}#{v}")
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._members.insert(idx, member)

    def remove(self, member: str) -> None:
        if member not in set(self._members):
            raise ValueError(f"member {member!r} not on the ring")
        keep = [(p, m) for p, m in zip(self._points, self._members) if m != member]
        self._points = [p for p, _ in keep]
        self._members = [m for _, m in keep]

    def members(self) -> list[str]:
        return sorted(set(self._members))

    def __len__(self) -> int:
        return len(set(self._members))

    def successors(self, key: str) -> list[str]:
        """Distinct members in clockwise order from the key's point."""
        if not self._points:
            return []
        start = bisect.bisect(self._points, hash_point(key)) % len(self._points)
        seen: list[str] = []
        seen_set = set()
        n = len(self._points)
        for off in range(n):
            m = self._members[(start + off) % n]
            if m not in seen_set:
                seen.append(m)
                seen_set.add(m)
        return seen


class BoundedLoadBalancer:
    """CH-BL: consistent hashing + bounded-load forwarding.

    ``load_fn(member)`` returns the member's current load;
    ``bound_factor`` is the paper's *c* (load bound = ceil(c * mean load),
    with a minimum headroom of 1 so an idle cluster still places work).
    """

    def __init__(
        self,
        load_fn: Callable[[str], float],
        bound_factor: float = 1.2,
        vnodes: int = 64,
    ):
        if bound_factor < 1.0:
            raise ValueError("bound_factor must be >= 1.0")
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.load_fn = load_fn
        self.bound_factor = bound_factor
        self.forwards = 0
        self.placements = 0

    def add_worker(self, name: str) -> None:
        self.ring.add(name)

    def remove_worker(self, name: str) -> None:
        self.ring.remove(name)

    def bound(self) -> float:
        members = self.ring.members()
        if not members:
            raise RuntimeError("no workers registered")
        mean_load = sum(self.load_fn(m) for m in members) / len(members)
        return max(math.ceil(self.bound_factor * mean_load), 1.0)

    def pick(self, fqdn: str) -> str:
        """Worker for this invocation: home node unless over the bound."""
        order = self.ring.successors(fqdn)
        if not order:
            raise RuntimeError("no workers registered")
        limit = self.bound()
        self.placements += 1
        for i, member in enumerate(order):
            if self.load_fn(member) <= limit:
                self.forwards += i and 1
                return member
        # Everyone over the bound: fall back to the least-loaded worker.
        self.forwards += 1
        return min(order, key=self.load_fn)
