"""A cluster: several workers behind a pluggable dispatch policy.

The cluster front end exposes the same invocation surface as a single
worker (the worker API is deliberately a subset of the overall API, per
the paper), so experiments and load generators can target either.
Registrations are broadcast to every worker; placement is per-invocation.

Placement itself is delegated to :mod:`repro.dispatch`.  Push policies
(CH-BL, round-robin, least-loaded) keep the historical pick-then-forward
invoke path — statement for statement, so pre-refactor runs stay
bit-for-bit identical — while pull policies route through a
:class:`~repro.dispatch.engine.PullEngine` whose per-worker claim loops
drain a shared logical queue.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from ..core.config import WorkerConfig
from ..core.function import FunctionRegistration
from ..core.worker import Worker
from ..dispatch import PullEngine, make_dispatch
from ..errors import FunctionNotRegistered
from ..metrics.spans import SpanRecorder
from ..sim.core import Environment, Event
from .chbl import BoundedLoadBalancer
from .policies import StatusBoard, make_balancer

__all__ = ["Cluster"]


class Cluster:
    """A load-balanced pool of Ilúvatar workers (CH-BL by default).

    ``lb_policy`` selects the dispatch scheme: push ("ch_bl",
    "round_robin", "least_loaded") or pull ("pull", "pull_local");
    ``status_interval`` makes push load decisions act on periodic status
    snapshots instead of live state (None = live); ``claim_latency`` is
    the pull queue round-trip cost (None = reuse ``rpc_latency``);
    ``worker_configs_override`` supplies explicit per-worker configs
    (heterogeneous clusters) in place of the ones derived from ``config``.
    """

    def __init__(
        self,
        env: Environment,
        num_workers: int = 2,
        config: Optional[WorkerConfig] = None,
        bound_factor: float = 1.2,
        rpc_latency: float = 0.0005,
        lb_policy: str = "ch_bl",
        status_interval: Optional[float] = None,
        claim_latency: Optional[float] = None,
        worker_configs_override: Optional[Sequence[WorkerConfig]] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if rpc_latency < 0:
            raise ValueError("rpc_latency must be non-negative")
        self.env = env
        base = config or WorkerConfig()
        self.workers: dict[str, Worker] = {}
        cfgs = (list(worker_configs_override) if worker_configs_override
                else self.worker_configs(base, num_workers))
        for cfg in cfgs:
            self.workers[cfg.name] = Worker(env, cfg)
        self.status_board = StatusBoard(
            clock=lambda: env.now,
            live_load_fn=self._worker_load,
            interval=status_interval,
        )
        self.dispatch = make_dispatch(
            lb_policy,
            env=env,
            load_fn=self.status_board.load,
            bound_factor=bound_factor,
            warm_fn=self._worker_warm,
        )
        for name in self.workers:
            self.dispatch.add_worker(name)
        self.rpc_latency = float(rpc_latency)
        if self.dispatch.kind == "pull":
            self.balancer = None
            self._pull = PullEngine(
                env,
                self.workers,
                self.dispatch,
                claim_latency=(self.rpc_latency if claim_latency is None
                               else float(claim_latency)),
                on_claim=self._count_claim,
            )
        else:
            # The adapter's wrapped balancer keeps the historical pick
            # call sequence on the invoke path (golden-fixture pinned).
            self.balancer = self.dispatch.balancer
            self._pull = None
        self.registrations: dict[str, FunctionRegistration] = {}
        self.placements = 0
        # LB-level spans (placement decisions, RPC hops) share the workers'
        # tracing switch; disabled they cost nothing on the pick path.
        self.spans = SpanRecorder(
            clock=partial(getattr, env, "now"), enabled=base.tracing_enabled
        )
        # Causal-trace collector; set by Telemetry.attach_cluster when
        # TelemetryConfig(trace=True) opts a run in, None otherwise.
        self.tracer = None

    @staticmethod
    def worker_configs(base: WorkerConfig, num_workers: int) -> list[WorkerConfig]:
        """The per-worker configs a cluster of ``num_workers`` derives from
        ``base``: index-suffixed names and consecutive seeds.  The cluster
        -shard engine builds each shard's workers from the same list, so a
        sharded cluster is worker-for-worker identical to this one."""
        return [
            base.with_overrides(name=f"{base.name}-{i}", seed=base.seed + i)
            for i in range(num_workers)
        ]

    def _worker_load(self, name: str) -> float:
        w = self.workers[name]
        return len(w.queue) + w.load.running

    def _worker_warm(self, name: str, fqdn: str) -> bool:
        return self.workers[name].pool.has_available(fqdn)

    def _count_claim(self, offer) -> None:
        self.placements += 1

    # ---------------------------------------------------------------- API
    def start(self) -> None:
        for w in self.workers.values():
            w.start()
        if self._pull is not None:
            self._pull.start()

    def stop(self) -> None:
        for w in self.workers.values():
            w.stop()

    def register_sync(self, registration: FunctionRegistration) -> str:
        fqdn = registration.fqdn()
        self.registrations[fqdn] = registration
        for w in self.workers.values():
            if fqdn not in w.registrations:
                w.register_sync(registration)
        return fqdn

    def async_invoke(self, fqdn: str, args=None) -> Event:
        if fqdn not in self.registrations:
            raise FunctionNotRegistered(fqdn)
        if self._pull is not None:
            return self._pull.submit(fqdn, args)
        spans = self.spans
        tracer = self.tracer
        pick_t = self.env.now if tracer is not None else 0.0
        handle = spans.begin("lb_pick", tag=fqdn)
        target = self.balancer.pick(fqdn)
        spans.end(handle)
        self.placements += 1
        worker = self.workers[target]
        if self.rpc_latency <= 0:
            inner = worker.async_invoke(fqdn, args)
            if tracer is not None:
                # The trace id is the invocation id, known at completion.
                inner.callbacks.append(
                    lambda ev: tracer.record_lb(ev.value.id, pick_t, pick_t)
                )
            return inner
        # Model the LB->worker RPC hop without blocking the caller.
        done = self.env.event()

        def forward():
            rpc = spans.begin("lb_rpc", tag=target)
            yield self.env.timeout(self.rpc_latency)
            spans.end(rpc)
            rpc_end = self.env.now
            inner = worker.async_invoke(fqdn, args)
            inv = yield inner
            if tracer is not None:
                tracer.record_lb(inv.id, pick_t, pick_t,
                                 pick_t, rpc_end, target)
            done.succeed(inv)

        self.env.process(forward(), name=f"lb-forward-{fqdn}")
        return done

    def invoke(self, fqdn: str, args=None):
        done = self.async_invoke(fqdn, args)
        inv = yield done
        return inv

    # ----------------------------------------------------------- telemetry
    def attach_telemetry(self, telemetry) -> None:
        """Register the whole cluster with a :class:`repro.telemetry.Telemetry`
        pipeline: every worker's gauges are sampled, the status board
        publishes its load snapshots into the sampler, and the LB's spans
        are retained alongside the workers'.  Equivalent to
        ``telemetry.attach_cluster(self)``."""
        telemetry.attach_cluster(self)

    def dispatch_info(self) -> dict:
        """Summary-stable description of the active dispatch policy."""
        info = {"policy": self.dispatch.name, "kind": self.dispatch.kind}
        if self._pull is not None:
            info["claim_latency"] = self._pull.claim_latency
        return info

    # -------------------------------------------------------------- status
    def status(self) -> dict:
        return {
            "workers": {name: w.status() for name, w in self.workers.items()},
            "policy": self.dispatch.name,
            "forwards": getattr(self.balancer, "forwards", 0),
            "placements": self.placements,
        }

    def records(self) -> list:
        out = []
        for w in self.workers.values():
            out.extend(w.metrics.records)
        return out
