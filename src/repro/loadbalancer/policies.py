"""Load-balancing policies beyond CH-BL, and the worker-status board.

The paper argues for locality-aware CH-BL over locality-blind schemes;
to make that comparison runnable this module provides the classic
baselines (round-robin, least-loaded) behind one interface, plus a
:class:`StatusBoard` that models the *staleness* of load information —
workers push status snapshots periodically, and the balancer decides on
the last snapshot rather than live state (the reality the paper's
queue-length-based load signal is meant to improve on).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Optional, Sequence

from .chbl import BoundedLoadBalancer

__all__ = [
    "LoadBalancingPolicy",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "CHBLPolicy",
    "StatusBoard",
    "make_balancer",
    "snap_to_grid",
]


def snap_to_grid(t: float, interval: float) -> float:
    """Largest multiple of ``interval`` that is ``<= t`` (the snapshot
    epoch a status report at time ``t`` belongs to).

    This is THE epoch-floor rule: :meth:`StatusBoard.load` and the
    cluster-shard seam's ``sync_indices`` both call it, so the sharded
    coordinator can never disagree with a single-process balancer about
    which arrival rolls the board into a new interval epoch.

    ``math.floor(t / interval) * interval`` overflows for large
    ``t / interval`` (the quotient saturates to ``inf``, or the floored
    integer exceeds the float range); the fallback computes the same grid
    point through ``fmod``, which cannot overflow.
    """
    t = float(t)            # numpy scalars warn (not raise) on overflow
    interval = float(interval)
    try:
        return math.floor(t / interval) * interval
    except OverflowError:
        return t - math.fmod(t, interval)


class LoadBalancingPolicy:
    """Maps an invocation's function to a worker name."""

    name = "base"

    def add_worker(self, name: str) -> None:
        raise NotImplementedError

    def remove_worker(self, name: str) -> None:
        raise NotImplementedError

    def pick(self, fqdn: str) -> str:
        raise NotImplementedError


class RoundRobinBalancer(LoadBalancingPolicy):
    """Locality-blind rotation — the classic strawman."""

    name = "round_robin"

    def __init__(self):
        self._workers: list[str] = []
        self._cursor = itertools.count()

    def add_worker(self, name: str) -> None:
        if name in self._workers:
            raise ValueError(f"worker {name!r} already registered")
        self._workers.append(name)

    def remove_worker(self, name: str) -> None:
        if name not in self._workers:
            raise ValueError(f"worker {name!r} not registered")
        self._workers.remove(name)

    def pick(self, fqdn: str) -> str:
        if not self._workers:
            raise RuntimeError("no workers registered")
        return self._workers[next(self._cursor) % len(self._workers)]


class LeastLoadedBalancer(LoadBalancingPolicy):
    """Send every invocation to the currently least-loaded worker."""

    name = "least_loaded"

    def __init__(self, load_fn: Callable[[str], float]):
        self._workers: list[str] = []
        self.load_fn = load_fn

    def add_worker(self, name: str) -> None:
        if name in self._workers:
            raise ValueError(f"worker {name!r} already registered")
        self._workers.append(name)

    def remove_worker(self, name: str) -> None:
        if name not in self._workers:
            raise ValueError(f"worker {name!r} not registered")
        self._workers.remove(name)

    def pick(self, fqdn: str) -> str:
        if not self._workers:
            raise RuntimeError("no workers registered")
        return min(self._workers, key=self.load_fn)


class CHBLPolicy(LoadBalancingPolicy):
    """The paper's scheme, adapted to the shared policy interface."""

    name = "ch_bl"

    def __init__(self, load_fn: Callable[[str], float], bound_factor: float = 1.2,
                 vnodes: int = 64):
        self._inner = BoundedLoadBalancer(load_fn, bound_factor=bound_factor,
                                          vnodes=vnodes)

    @property
    def forwards(self) -> int:
        return self._inner.forwards

    @property
    def placements(self) -> int:
        return self._inner.placements

    def add_worker(self, name: str) -> None:
        self._inner.add_worker(name)

    def remove_worker(self, name: str) -> None:
        # Uniform error contract across every policy (the ring's own
        # message talks about "members", which leaks the implementation).
        if name not in self._inner.ring.members():
            raise ValueError(f"worker {name!r} not registered")
        self._inner.remove_worker(name)

    def pick(self, fqdn: str) -> str:
        return self._inner.pick(fqdn)


class StatusBoard:
    """Periodic worker-status snapshots (models load-signal staleness).

    ``interval=None`` reads live state on every query (the idealized
    default the Cluster used before); a positive interval re-snapshots at
    most that often, so balancer decisions act on data up to ``interval``
    seconds old.  Snapshot epochs are aligned to the interval grid
    (``snapped_at`` is always a multiple of ``interval``), matching
    workers that push status reports on a fixed period rather than
    whenever somebody happens to ask.

    ``publish``, when set, is called as ``publish(worker, time, load)``
    every time a worker's status is (re)read into the snapshot — the hook
    the telemetry sampler uses to record the exact load signal the
    balancer acted on.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        live_load_fn: Callable[[str], float],
        interval: Optional[float] = None,
        publish: Optional[Callable[[str, float, float], None]] = None,
    ):
        if interval is not None and interval <= 0:
            raise ValueError("interval must be positive (or None for live)")
        self._clock = clock
        self._live = live_load_fn
        self.interval = interval
        self.publish = publish
        self._snapshot: dict[str, float] = {}
        self._snapped_at: Optional[float] = None
        self.refreshes = 0

    @property
    def snapped_at(self) -> Optional[float]:
        """Grid epoch of the current snapshot (None before the first)."""
        return self._snapped_at

    def load(self, worker: str) -> float:
        if self.interval is None:
            return self._live(worker)
        now = self._clock()
        if self._snapped_at is None or now - self._snapped_at >= self.interval:
            # A fresh round of status reports arrived; the epoch is the
            # grid slot the reports belong to, not the query time.
            self._snapshot = {}
            self._snapped_at = snap_to_grid(now, self.interval)
            self.refreshes += 1
        value = self._snapshot.get(worker)
        if value is None:
            value = self._snapshot[worker] = self._live(worker)
            if self.publish is not None:
                self.publish(worker, now, value)
        return value


def make_balancer(
    name: str,
    load_fn: Callable[[str], float],
    bound_factor: float = 1.2,
) -> LoadBalancingPolicy:
    """Factory by policy name."""
    table = {
        "ch_bl": lambda: CHBLPolicy(load_fn, bound_factor=bound_factor),
        "chbl": lambda: CHBLPolicy(load_fn, bound_factor=bound_factor),
        "round_robin": RoundRobinBalancer,
        "least_loaded": lambda: LeastLoadedBalancer(load_fn),
    }
    key = str(name).lower()
    ctor = table.get(key)
    if ctor is None:
        if key in ("pull", "pull_local"):
            raise ValueError(
                f"{name!r} is a pull dispatch policy, not a push balancer; "
                f"build it via repro.dispatch.make_dispatch (push balancers: "
                f"{sorted(table)})"
            )
        raise ValueError(f"unknown balancer {name!r}; choose from {sorted(table)}")
    return ctor()
