"""Load generation: closed-loop clients and open-loop plans."""

from .closed import ClosedLoopClient, ClosedLoopResult, run_closed_loop
from .empirical import empirical_mixes, mixes_from_trace
from .openloop import (
    FunctionMix,
    InvocationPlan,
    build_plan,
    plan_from_trace,
    replay_plan,
)

__all__ = [
    "ClosedLoopClient",
    "ClosedLoopResult",
    "run_closed_loop",
    "empirical_mixes",
    "mixes_from_trace",
    "FunctionMix",
    "InvocationPlan",
    "build_plan",
    "plan_from_trace",
    "replay_plan",
]
