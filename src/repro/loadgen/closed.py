"""Closed-loop load generation (paper Section 5.1, and Figure 1's setup).

N client "threads" each invoke a function, wait for completion, and invoke
again — so offered load tracks system speed.  Figure 1's concurrency sweep
is exactly this: the number of clients is the number of concurrent
invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

import numpy as np

from ..core.function import Invocation
from ..sim.core import Environment

__all__ = ["ClosedLoopClient", "ClosedLoopResult", "run_closed_loop"]


@dataclass
class ClosedLoopResult:
    """Everything the clients observed."""

    invocations: list[Invocation] = field(default_factory=list)
    duration: float = 0.0

    @property
    def completed(self) -> list[Invocation]:
        return [i for i in self.invocations if not i.dropped]

    def overheads(self) -> np.ndarray:
        """Per-invocation control-plane overhead (seconds)."""
        return np.array([i.overhead for i in self.completed])

    def e2e_times(self) -> np.ndarray:
        return np.array([i.e2e_time for i in self.completed])

    @property
    def throughput(self) -> float:
        if self.duration <= 0:
            return float("nan")
        return len(self.completed) / self.duration


class ClosedLoopClient:
    """One client thread: invoke -> wait -> repeat."""

    def __init__(
        self,
        worker,
        fqdn: str,
        think_time: float = 0.0,
        max_invocations: Optional[int] = None,
    ):
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.worker = worker
        self.fqdn = fqdn
        self.think_time = think_time
        self.max_invocations = max_invocations
        self.results: list[Invocation] = []

    def run(self, env: Environment, until: float) -> Generator:
        count = 0
        while env.now < until:
            if self.max_invocations is not None and count >= self.max_invocations:
                break
            inv = yield self.worker.async_invoke(self.fqdn)
            self.results.append(inv)
            count += 1
            if self.think_time > 0:
                yield env.timeout(self.think_time)


def run_closed_loop(
    env: Environment,
    worker,
    fqdn: str,
    clients: int,
    duration: float,
    warmup: float = 0.0,
    think_time: float = 0.0,
) -> ClosedLoopResult:
    """Drive ``clients`` closed-loop clients for ``duration`` seconds.

    Invocations arriving during the warmup window are discarded from the
    result (they prime the container pool), mirroring how the paper
    measures warm-start overheads.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if duration <= 0:
        raise ValueError("duration must be positive")
    start = env.now
    until = start + warmup + duration
    runners = [
        ClosedLoopClient(worker, fqdn, think_time=think_time) for _ in range(clients)
    ]
    procs = [env.process(c.run(env, until)) for c in runners]
    env.run(until=until + 120.0)  # grace period for in-flight completions
    for p in procs:
        if not p.triggered:  # pragma: no cover - defensive
            raise RuntimeError("closed-loop client did not finish")
    result = ClosedLoopResult(duration=duration)
    cutoff = start + warmup
    for c in runners:
        result.invocations.extend(i for i in c.results if i.arrival >= cutoff)
    return result
