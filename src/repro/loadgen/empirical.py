"""Trace-derived empirical load generation (Section 5.1).

"The functions' IAT distributions can be exponential, or be derived from
empirical FaaS traces like the Azure trace."  This module builds
:class:`~repro.loadgen.openloop.FunctionMix` entries whose inter-arrival
times are sampled from each function's *observed* IAT CDF in a trace,
with per-function scale factors for popularity-sensitivity experiments
(e.g. examining system performance when one function's popularity
changes).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sim.distributions import Empirical, Exponential
from ..trace.model import Trace
from .openloop import FunctionMix

__all__ = ["empirical_mixes", "mixes_from_trace"]


def empirical_mixes(
    trace: Trace,
    scale: float = 1.0,
    per_function_scale: Optional[dict[str, float]] = None,
    min_samples: int = 2,
    version: int = 1,
) -> list[FunctionMix]:
    """One FunctionMix per trace function, IATs drawn from its own CDF.

    Functions with fewer than ``min_samples`` observed IATs fall back to
    an exponential at their mean rate over the trace.  ``scale`` > 1
    stretches every IAT (lower load); ``per_function_scale`` overrides the
    factor for named functions (popularity sensitivity).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    per_function_scale = per_function_scale or {}
    mixes: list[FunctionMix] = []
    for i, f in enumerate(trace.functions):
        ts = trace.timestamps[trace.function_idx == i]
        factor = scale * per_function_scale.get(f.name, 1.0)
        if factor <= 0:
            raise ValueError(f"scale for {f.name!r} must be positive")
        fqdn = f"{f.name}.{version}"
        if ts.size >= min_samples + 1:
            iats = np.diff(ts)
            iats = iats[iats > 0]
            if iats.size >= min_samples:
                mixes.append(
                    FunctionMix(fqdn, Empirical(iats, scale=factor),
                                start_offset=float(ts[0]))
                )
                continue
        if ts.size >= 1 and trace.duration > 0:
            mean_iat = trace.duration / ts.size
            mixes.append(FunctionMix(fqdn, Exponential(mean_iat * factor)))
    return mixes


def mixes_from_trace(
    trace: Trace,
    target_load: Optional[float] = None,
    version: int = 1,
) -> list[FunctionMix]:
    """Empirical mixes, optionally scaled to a Little's-law target load."""
    scale = 1.0
    if target_load is not None:
        if target_load <= 0:
            raise ValueError("target_load must be positive")
        from ..trace.scaling import little_load

        current = little_load(trace)
        if current <= 0:
            raise ValueError("trace has zero load; cannot scale")
        scale = current / target_load
    return empirical_mixes(trace, scale=scale, version=version)
