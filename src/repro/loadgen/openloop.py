"""Open-loop load generation: timestamped invocation plans.

The open-loop generator produces a timeseries of invocations ahead of time
(repeatable experiments), parameterized by function mixture and IAT
distributions — exponential or empirical (trace-derived) — exactly the
framework Section 5.1 describes.  Plans can also be built directly from a
:class:`~repro.trace.model.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

import numpy as np

from ..core.function import FunctionRegistration, Invocation
from ..sim.core import Environment
from ..sim.distributions import Distribution, make_rng
from ..trace.model import Trace

__all__ = ["InvocationPlan", "FunctionMix", "build_plan", "plan_from_trace", "replay_plan"]


@dataclass(frozen=True)
class FunctionMix:
    """One function's share of an open-loop workload."""

    fqdn: str
    iat: Distribution
    start_offset: float = 0.0

    def __post_init__(self):
        if self.start_offset < 0:
            raise ValueError("start_offset must be non-negative")


@dataclass
class InvocationPlan:
    """A fully materialized open-loop schedule."""

    timestamps: np.ndarray   # sorted, seconds
    fqdns: list[str]         # parallel to timestamps
    duration: float

    # Arrivals per chunk for the streaming walk; large enough that the
    # per-chunk Python overhead amortizes, small enough that a chunk's
    # per-arrival intermediates never approach the plan's own footprint.
    CHUNK = 16384

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def __post_init__(self):
        if self.timestamps.size != len(self.fqdns):
            raise ValueError("timestamps and fqdns must be parallel")
        if self.timestamps.size and np.any(np.diff(self.timestamps) < 0):
            raise ValueError("timestamps must be sorted")

    def iter_chunks(
        self, chunk_size: Optional[int] = None
    ) -> Generator[tuple[int, np.ndarray, list[str]], None, None]:
        """Yield ``(start_index, timestamps_view, fqdn_slice)`` chunks.

        The timestamp column is a zero-copy view into the plan; the fqdn
        slice is the only per-chunk allocation.  Replay paths walk these
        instead of indexing the plan one arrival at a time, so a
        million-invocation plan never grows per-invocation intermediates
        beyond one chunk's worth.
        """
        chunk = int(chunk_size or self.CHUNK)
        if chunk < 1:
            raise ValueError("chunk_size must be >= 1")
        n = len(self)
        for a in range(0, n, chunk):
            b = min(a + chunk, n)
            yield a, self.timestamps[a:b], self.fqdns[a:b]


def build_plan(
    mixes: Sequence[FunctionMix],
    duration: float,
    seed: Optional[int] = 0,
) -> InvocationPlan:
    """Draw IATs per function until ``duration`` and merge the streams."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not mixes:
        raise ValueError("need at least one function in the mix")
    rng = make_rng(seed)
    ts_parts: list[np.ndarray] = []
    fq_parts: list[list[str]] = []
    for mix in mixes:
        t = mix.start_offset
        stamps = []
        while True:
            t += float(mix.iat.sample(rng))
            if t >= duration:
                break
            stamps.append(t)
        if stamps:
            ts_parts.append(np.array(stamps))
            fq_parts.append([mix.fqdn] * len(stamps))
    if not ts_parts:
        return InvocationPlan(np.empty(0), [], duration)
    ts = np.concatenate(ts_parts)
    fqdns = [f for part in fq_parts for f in part]
    order = np.argsort(ts, kind="stable")
    return InvocationPlan(ts[order], [fqdns[i] for i in order], duration)


def plan_from_trace(trace: Trace) -> InvocationPlan:
    """Turn a Trace into an invocation plan (fqdn = function name + '.1')."""
    fqdns = [f"{trace.functions[i].name}.1" for i in trace.function_idx]
    return InvocationPlan(trace.timestamps.copy(), fqdns, trace.duration)


def replay_plan(
    env: Environment,
    worker,
    plan: InvocationPlan,
    grace: float = 120.0,
) -> list[Invocation]:
    """Replay a plan against a worker (or cluster); returns all invocations.

    The caller's worker must expose ``async_invoke``.  Replay is exact:
    each invocation fires at its planned timestamp relative to the current
    simulation time.
    """

    results: list[Invocation] = []
    pending: list = []

    def injector() -> Generator:
        start = env.now
        invoke = worker.async_invoke
        append = pending.append
        timeout = env.timeout
        for _, ts, fqdns in plan.iter_chunks():
            # One vectorized float conversion per chunk; adding the start
            # offset in numpy is the same IEEE add as start + float(t).
            targets = (start + ts).tolist()
            for target, fqdn in zip(targets, fqdns):
                delay = target - env.now
                if delay > 0:
                    yield timeout(delay)
                append(invoke(fqdn))

    proc = env.process(injector(), name="open-loop-injector")
    horizon = env.now + plan.duration + grace
    env.run(until=horizon)
    if not proc.triggered:  # pragma: no cover - defensive
        raise RuntimeError("injector did not finish; raise the grace period")
    for event in pending:
        if event.triggered:
            results.append(event.value)
    return results
