"""Metrics substrate: spans, counters, summaries, simulated energy."""

from .energy import EnergyModel, EnergyMonitor
from .registry import InvocationRecord, MetricsRegistry, Outcome
from .spans import SPAN_GROUPS, Span, SpanRecorder, load_spans_jsonl
from .stats import LatencySummary, OnlineStats, bin_timeseries, percentile, summarize

__all__ = [
    "EnergyModel",
    "EnergyMonitor",
    "InvocationRecord",
    "MetricsRegistry",
    "Outcome",
    "SPAN_GROUPS",
    "Span",
    "SpanRecorder",
    "load_spans_jsonl",
    "LatencySummary",
    "OnlineStats",
    "bin_timeseries",
    "percentile",
    "summarize",
]
