"""Metrics substrate: spans, counters, histograms, summaries, simulated energy."""

from .energy import EnergyModel, EnergyMonitor
from .histograms import LogHistogram
from .registry import (
    LATENCY_HISTOGRAMS,
    InvocationRecord,
    MetricsRegistry,
    Outcome,
)
from .spans import SPAN_GROUPS, Span, SpanRecorder, dump_spans_jsonl, load_spans_jsonl
from .stats import LatencySummary, OnlineStats, bin_timeseries, percentile, summarize

__all__ = [
    "EnergyModel",
    "EnergyMonitor",
    "LogHistogram",
    "LATENCY_HISTOGRAMS",
    "InvocationRecord",
    "MetricsRegistry",
    "Outcome",
    "SPAN_GROUPS",
    "Span",
    "SpanRecorder",
    "dump_spans_jsonl",
    "load_spans_jsonl",
    "LatencySummary",
    "OnlineStats",
    "bin_timeseries",
    "percentile",
    "summarize",
]
