"""Simulated energy accounting (stand-in for RAPL / external power meters).

The paper's worker tracks system energy via RAPL and wall power meters
(Section 5.1).  No evaluation artifact in the reproduced text depends on
absolute energy numbers, so this module provides the metrics *plumbing*: a
simple linear power model integrated over busy CPU-seconds, exposed through
the same monitoring interface as the rest of the metrics stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EnergyModel", "EnergyMonitor"]


@dataclass(frozen=True)
class EnergyModel:
    """Linear server power model: idle floor plus per-active-core increment.

    Defaults loosely follow a dual-socket Xeon class machine (the paper's
    testbed is a 48-core Xeon Platinum): ~120 W idle, ~3.5 W per busy core.
    """

    idle_watts: float = 120.0
    watts_per_core: float = 3.5

    def power(self, busy_cores: float) -> float:
        if busy_cores < 0:
            raise ValueError(f"busy_cores must be non-negative, got {busy_cores}")
        return self.idle_watts + self.watts_per_core * busy_cores


@dataclass
class EnergyMonitor:
    """Integrates the power model over time as load changes.

    Call :meth:`update` whenever the number of busy cores changes; the
    monitor accumulates energy for the elapsed interval at the previous
    load level (exact for piecewise-constant load).
    """

    clock: Callable[[], float]
    model: EnergyModel = field(default_factory=EnergyModel)
    _busy_cores: float = 0.0
    _last_time: float = field(default=0.0)
    _joules: float = 0.0
    _started: bool = False

    def update(self, busy_cores: float) -> None:
        now = self.clock()
        if self._started:
            dt = now - self._last_time
            if dt < 0:
                raise ValueError("clock went backwards")
            self._joules += self.model.power(self._busy_cores) * dt
        else:
            self._started = True
        self._busy_cores = float(busy_cores)
        self._last_time = now

    def finish(self) -> float:
        """Close the current interval and return total joules."""
        self.update(self._busy_cores)
        return self._joules

    @property
    def joules(self) -> float:
        return self._joules

    @property
    def power(self) -> float:
        """Instantaneous power draw (W) at the current load level."""
        return self.model.power(self._busy_cores)

    def joules_at(self, now: float) -> float:
        """Energy consumed up to ``now``, *without* closing the interval.

        The telemetry sampler reads this mid-interval: it must not mutate
        the monitor, or observation would change subsequent integration
        state (and with it the worker's reported totals).
        """
        if not self._started:
            return self._joules
        dt = now - self._last_time
        if dt < 0:
            raise ValueError("clock went backwards")
        return self._joules + self.model.power(self._busy_cores) * dt

    @property
    def busy_cores(self) -> float:
        return self._busy_cores
