"""Fixed log-bucket histograms with quantile queries.

Ilúvatar's worker is self-monitoring: it keeps all internal metrics itself
instead of shipping raw samples to an external system (Section 5.1).
Distribution queries — p50/p90/p99 of end-to-end latency, queue time,
control-plane overhead — must therefore be answerable from a compact,
constant-size structure that costs O(1) per observation.

:class:`LogHistogram` is that structure: geometrically spaced buckets
(fixed at construction, so two histograms with the same shape can be
merged bucket-wise), integer counts, and rank-based quantile estimation
that is exact up to bucket resolution.  The default shape spans 10 µs to
10 000 s at 10 buckets per decade, which brackets every latency this
control plane produces with ~26% worst-case quantile error.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Optional

__all__ = ["LogHistogram"]


class LogHistogram:
    """Log-spaced bucket histogram over non-negative samples.

    Bucket ``0`` holds every sample ``<= bounds[0]`` (including exact
    zeros, which a log scale cannot place); bucket ``i`` holds samples in
    ``(bounds[i-1], bounds[i]]``; the final bucket is the overflow for
    samples ``> bounds[-1]``.
    """

    __slots__ = ("bounds", "counts", "growth", "count", "total", "_min", "_max")

    def __init__(
        self,
        lo: float = 1e-5,
        hi: float = 1e4,
        buckets_per_decade: int = 10,
    ):
        if lo <= 0:
            raise ValueError(f"lo must be positive, got {lo}")
        if hi <= lo:
            raise ValueError(f"hi ({hi}) must exceed lo ({lo})")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.growth = 10.0 ** (1.0 / buckets_per_decade)
        n = math.ceil(math.log10(hi / lo) * buckets_per_decade)
        self.bounds: list[float] = [lo * self.growth**i for i in range(n + 1)]
        # [underflow/first] + n interior + [overflow]
        self.counts: list[int] = [0] * (n + 2)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- recording ---------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one sample; O(log buckets)."""
        if not value >= 0.0:  # also rejects NaN
            raise ValueError(f"histogram samples must be non-negative, got {value}")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "LogHistogram") -> None:
        """Add another histogram's counts into this one.

        Both histograms must share the exact bucket geometry — same base
        (growth factor) and same offset (first bound).  Anything else
        would silently misattribute counts, so it is a hard error.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket geometry: "
                f"base {self.growth:g} vs {other.growth:g}, offset "
                f"{self.bounds[0]:g} vs {other.bounds[0]:g}, "
                f"{len(self.bounds)} vs {len(other.bounds)} bounds"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max

    # -- queries -----------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` would land in."""
        return bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    def quantile(self, q: float) -> float:
        """Rank-based quantile estimate (q in [0, 100]).

        Returns the upper edge of the bucket holding the
        ``ceil(q/100 * count)``-th smallest sample, clamped to the observed
        maximum — so the estimate is always within one bucket boundary of
        the exact empirical (nearest-rank) quantile.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return float(self._max)
                return min(self.bounds[i], self._max)
        return float(self._max)  # pragma: no cover - rank <= count

    def percentiles(self) -> dict[str, float]:
        """The monitoring trio, ready for a status report."""
        return {
            "p50": self.quantile(50.0),
            "p90": self.quantile(90.0),
            "p99": self.quantile(99.0),
        }

    def summary(self) -> dict:
        """Flat dict for tables / JSON summaries."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self._min if self._min is not None else float("nan"),
            "max": self._max if self._max is not None else float("nan"),
            **self.percentiles(),
        }

    def cumulative(self) -> Iterator[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, Prometheus-style, ending
        with the (+inf, count) overflow entry."""
        cum = 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            yield bound, cum
        yield float("inf"), self.count

    def nonzero_buckets(self) -> Iterable[tuple[int, int]]:
        """(bucket_index, count) for buckets holding samples."""
        return [(i, c) for i, c in enumerate(self.counts) if c]

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.count = 0
        self.total = 0.0
        self._min = None
        self._max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogHistogram count={self.count} "
            f"range=[{self.bounds[0]:g}, {self.bounds[-1]:g}] "
            f"buckets={len(self.counts)}>"
        )
