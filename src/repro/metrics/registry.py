"""Counters, gauges and invocation-outcome accounting.

Ilúvatar tracks all internal/external function metrics itself rather than
relying on external monitoring services (Section 5.1).  This registry is
the equivalent: a single consistent view of counts, levels and per-function
outcome tallies that every component writes to and every experiment reads.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from .histograms import LogHistogram

__all__ = ["Outcome", "InvocationRecord", "MetricsRegistry", "LATENCY_HISTOGRAMS"]

# Histogram names recorded at invocation completion once
# :meth:`MetricsRegistry.enable_latency_histograms` opts in (telemetry).
LATENCY_HISTOGRAMS = ("e2e_seconds", "queue_seconds", "overhead_seconds")


class Outcome(str, Enum):
    """Terminal state of an invocation."""

    WARM = "warm"
    COLD = "cold"
    DROPPED = "dropped"
    TIMEOUT = "timeout"  # killed after exceeding its execution limit
    BYPASSED = "bypass"  # ran, but skipped the queue (still warm or cold)


@dataclass(frozen=True)
class InvocationRecord:
    """One finished (or dropped) invocation, as the experiments consume it."""

    function: str
    arrival: float
    outcome: Outcome
    exec_time: float = 0.0
    e2e_time: float = 0.0
    queue_time: float = 0.0
    overhead: float = 0.0
    cold: bool = False
    worker: Optional[str] = None
    # Joins the record to its spans (span tag = str(invocation_id)) for
    # the telemetry overhead decomposition; 0 = unknown/synthetic.
    invocation_id: int = 0

    @property
    def stretch(self) -> float:
        """Normalized end-to-end latency (paper's 'stretch')."""
        if self.exec_time <= 0:
            return float("nan")
        return self.e2e_time / self.exec_time


@dataclass
class MetricsRegistry:
    """Registry of counters, gauges, and completed invocation records."""

    clock: Callable[[], float] = lambda: 0.0
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    gauges: dict[str, float] = field(default_factory=dict)
    records: list[InvocationRecord] = field(default_factory=list)
    histograms: dict[str, LogHistogram] = field(default_factory=dict)
    # When set (telemetry opt-in), the (e2e, queue, overhead) histograms
    # observed at completion.  ``None`` keeps record_invocation on its
    # original path: one attribute load and a branch, no allocation.
    _latency_hists: Optional[tuple] = field(default=None, repr=False)
    # When set (health opt-in), called with every finished record — the
    # streaming health collector's feed.  Same cost discipline as
    # ``_latency_hists``: one attribute load and a branch when off.
    record_sink: Optional[Callable[[InvocationRecord], None]] = field(
        default=None, repr=False
    )

    # -- counters / gauges ----------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- histograms -------------------------------------------------------
    def histogram(self, name: str, **kwargs) -> LogHistogram:
        """Get or lazily create the named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogHistogram(**kwargs)
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name).observe(value)

    def enable_latency_histograms(self) -> None:
        """Opt in to distribution tracking of e2e / queue / overhead at
        invocation completion (the telemetry pipeline's switch)."""
        self._latency_hists = tuple(self.histogram(n) for n in LATENCY_HISTOGRAMS)

    @property
    def latency_histograms_enabled(self) -> bool:
        return self._latency_hists is not None

    # -- invocation records ----------------------------------------------
    def record_invocation(self, record: InvocationRecord) -> None:
        self.records.append(record)
        self.incr(f"invocations.{record.outcome.value}")
        if record.outcome not in (Outcome.DROPPED, Outcome.TIMEOUT):
            self.incr("invocations.completed")
            self.incr("invocations.cold" if record.cold else "invocations.warm_start")
            hists = self._latency_hists
            if hists is not None:
                hists[0].observe(record.e2e_time)
                hists[1].observe(record.queue_time)
                hists[2].observe(record.overhead)
        sink = self.record_sink
        if sink is not None:
            sink(record)

    # -- rollups -----------------------------------------------------------
    def outcomes(self) -> dict[Outcome, int]:
        tally: dict[Outcome, int] = {o: 0 for o in Outcome}
        for rec in self.records:
            tally[rec.outcome] += 1
        return tally

    def outcomes_by_function(self) -> dict[str, dict[str, int]]:
        """Per-function {warm, cold, dropped} counts (Fig 7's breakdown)."""
        table: dict[str, dict[str, int]] = defaultdict(
            lambda: {"warm": 0, "cold": 0, "dropped": 0}
        )
        for rec in self.records:
            row = table[rec.function]
            if rec.outcome in (Outcome.DROPPED, Outcome.TIMEOUT):
                row["dropped"] += 1
            elif rec.cold:
                row["cold"] += 1
            else:
                row["warm"] += 1
        return dict(table)

    def completed(self) -> list[InvocationRecord]:
        return [
            r for r in self.records
            if r.outcome not in (Outcome.DROPPED, Outcome.TIMEOUT)
        ]

    def overheads(self) -> list[float]:
        """Control-plane overhead samples (e2e minus execution), completed only."""
        return [r.overhead for r in self.completed()]

    def cold_ratio(self) -> float:
        done = self.completed()
        if not done:
            return float("nan")
        return sum(1 for r in done if r.cold) / len(done)

    def drop_ratio(self) -> float:
        if not self.records:
            return float("nan")
        dropped = sum(1 for r in self.records if r.outcome is Outcome.DROPPED)
        return dropped / len(self.records)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.records.clear()
        self.histograms.clear()
        if self._latency_hists is not None:
            self.enable_latency_histograms()
