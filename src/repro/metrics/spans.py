"""Span-based component tracing, modelled on Ilúvatar's use of the Rust
``tracing`` crate (Section 5.1).

Every worker component wraps its work in a named span; spans record the
simulated (or wall-clock) duration and are grouped by name.  Table 2 of the
paper — the per-component latency breakdown of a single warm invocation —
is regenerated directly from these spans.

Two recording APIs exist:

* ``with recorder.span("name"):`` — the ergonomic context manager, for
  call sites off the hot path.
* ``handle = recorder.begin("name")`` / ``recorder.end(handle)`` — the
  fast-path pair.  Handles are pooled and reused, so steady-state
  recording allocates nothing; when the recorder is disabled ``begin``
  returns ``None`` and ``end(None)`` returns immediately, making a
  disabled recorder a true no-op (the Ilúvatar design point: tracing must
  cost nothing when it is off).
"""

from __future__ import annotations

import json
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from .stats import LatencySummary, summarize

__all__ = [
    "Span",
    "SpanRecorder",
    "SPAN_GROUPS",
    "load_spans_jsonl",
    "dump_spans_jsonl",
]

# Paper Table 2 grouping of worker components.
SPAN_GROUPS: dict[str, str] = {
    "invoke": "Ingestion & Queuing",
    "sync_invoke": "Ingestion & Queuing",
    "enqueue_invocation": "Ingestion & Queuing",
    "add_item_to_q": "Ingestion & Queuing",
    "spawn_worker": "Container Operations",
    "dequeue": "Container Operations",
    "acquire_container": "Container Operations",
    "try_lock_container": "Container Operations",
    "cold_create": "Container Operations",
    "prepare_invoke": "Agent Communication",
    "call_container": "Agent Communication",
    "download_result": "Agent Communication",
    "return_container": "Returning",
    "return_results": "Returning",
}


@dataclass
class Span:
    """One completed span: a named interval with optional invocation tag.

    ``shard`` is the owning shard index on sharded runs (stamped by the
    shard process when tracing is enabled, so merged run directories can
    be sliced per shard); ``None`` — and absent from the JSONL form — on
    single-process runs, keeping serial and sharded exports byte-equal.
    """

    name: str
    start: float
    end: float
    tag: Optional[str] = None
    shard: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _SpanHandle:
    """An open span returned by :meth:`SpanRecorder.begin`.

    Mutable and pooled: after :meth:`SpanRecorder.end` the handle goes back
    to the recorder's free list for reuse, so ``name`` is nulled to catch
    double-``end``.
    """

    __slots__ = ("name", "start", "tag")

    def __init__(self, name: str, start: float, tag: Optional[str]):
        self.name = name
        self.start = start
        self.tag = tag


@dataclass
class SpanRecorder:
    """Collects spans; ``clock`` supplies the current time.

    The recorder is deliberately tolerant of high volume: per-span storage
    is an append to a per-name list, and all reduction is deferred.
    """

    clock: Callable[[], float]
    enabled: bool = True
    _durations: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))
    _spans: list[Span] = field(default_factory=list)
    keep_spans: bool = False
    _handle_pool: list[_SpanHandle] = field(default_factory=list, repr=False)

    # -- recording ---------------------------------------------------------
    def begin(self, name: str, tag: Optional[str] = None) -> Optional[_SpanHandle]:
        """Open a span; returns a handle to pass to :meth:`end`.

        Returns ``None`` when the recorder is disabled — the caller passes
        it straight back to ``end``, which makes the disabled pair two
        attribute loads and two calls, with zero allocation.
        """
        if not self.enabled:
            return None
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle.name = name
            handle.start = self.clock()
            handle.tag = tag
            return handle
        return _SpanHandle(name, self.clock(), tag)

    def end(self, handle: Optional[_SpanHandle]) -> None:
        """Close a span opened by :meth:`begin` and record its duration."""
        if handle is None:
            return
        name = handle.name
        if name is None:
            raise ValueError("span handle already ended (double end())")
        now = self.clock()
        self._durations[name].append(now - handle.start)
        if self.keep_spans:
            self._spans.append(
                Span(name=name, start=handle.start, end=now, tag=handle.tag)
            )
        handle.name = None  # poison against double-end
        pool = self._handle_pool
        if len(pool) < 64:
            pool.append(handle)

    @contextmanager
    def span(self, name: str, tag: Optional[str] = None) -> Iterator[None]:
        """Context manager timing a component by the recorder's clock.

        Implemented on the begin/end pair; prefer begin/end directly on
        hot paths (a contextmanager costs a generator per use).
        """
        handle = self.begin(name, tag)
        try:
            yield
        finally:
            self.end(handle)

    def emit(
        self, name: str, start: float, end: float, tag: Optional[str] = None
    ) -> None:
        """Record a completed span with explicit times.

        The batch-emission path for callers that already know both
        endpoints (the cluster-shard coordinator accounts a whole epoch of
        ``lb_pick``/``lb_rpc`` spans after the fact instead of toggling a
        virtual clock per arrival).  Equivalent to ``begin``/``end`` under
        a clock that returned ``start`` then ``end`` — the duration is the
        same ``end - start`` float operation — without touching the clock
        or allocating a handle.
        """
        if not self.enabled:
            return
        self._durations[name].append(end - start)
        if self.keep_spans:
            self._spans.append(Span(name=name, start=start, end=end, tag=tag))

    def record(self, name: str, duration: float, tag: Optional[str] = None) -> None:
        """Record an externally measured duration under ``name``."""
        if not self.enabled:
            return
        if duration < 0:
            raise ValueError(f"negative span duration: {duration}")
        self._durations[name].append(duration)
        if self.keep_spans:
            now = self.clock()
            self._spans.append(Span(name=name, start=now - duration, end=now, tag=tag))

    def record_span(
        self, name: str, start: float, end: float, tag: Optional[str] = None
    ) -> None:
        """Append a raw interval to the retained span log *without* touching
        the aggregate durations.

        Used for intervals that are context, not control-plane components —
        e.g. the function-execution window the telemetry decomposition
        subtracts — so aggregate reports (Table 2) stay component-only.
        No-op unless both ``enabled`` and ``keep_spans`` are set.
        """
        if not (self.enabled and self.keep_spans):
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self._spans.append(Span(name=name, start=start, end=end, tag=tag))

    # -- reporting ---------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._durations)

    def durations(self, name: str) -> list[float]:
        return list(self._durations.get(name, []))

    def summary(self, name: str) -> LatencySummary:
        return summarize(self._durations.get(name, []))

    def mean(self, name: str) -> float:
        values = self._durations.get(name)
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def spans(self) -> list[Span]:
        return list(self._spans)

    def breakdown_table(self, scale: float = 1.0) -> list[dict]:
        """Rows in the shape of paper Table 2: group, name, mean time.

        ``scale`` converts the clock unit into the reporting unit (e.g.
        1000.0 for seconds → milliseconds).
        """
        rows = []
        for name in SPAN_GROUPS:
            if name in self._durations:
                rows.append(
                    {
                        "group": SPAN_GROUPS[name],
                        "function": name,
                        "time": self.mean(name) * scale,
                    }
                )
        # Components outside the canonical table come last, alphabetically.
        for name in sorted(set(self._durations) - set(SPAN_GROUPS)):
            rows.append(
                {
                    "group": "Other",
                    "function": name,
                    "time": self.mean(name) * scale,
                }
            )
        return rows

    def reset(self) -> None:
        self._durations.clear()
        self._spans.clear()

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """Write retained spans as JSON lines (one span per line), the
        fine-grained logging the paper's ``tracing`` instrumentation
        provides for offline analysis.  Requires ``keep_spans``.
        Returns the number of spans written."""
        if not self.keep_spans:
            raise ValueError(
                "dump_jsonl requires keep_spans=True; this recorder only "
                "aggregated durations, so there are no spans to write"
            )
        return dump_spans_jsonl(self._spans, path)


def dump_spans_jsonl(spans: Iterable[Span], path: Union[str, Path]) -> int:
    """Write spans as JSON lines (the :meth:`SpanRecorder.dump_jsonl`
    format); also used to dump spans merged from several recorders.
    ``spans`` may be any iterable — a lazy stream is written through
    without being materialized.  Returns the number of spans written."""
    dumps = json.dumps
    count = 0
    with open(path, "w") as fh:
        for s in spans:
            row = {"name": s.name, "start": s.start, "end": s.end,
                   "tag": s.tag}
            if s.shard is not None:
                row["shard"] = s.shard
            fh.write(dumps(row))
            fh.write("\n")
            count += 1
    return count


def load_spans_jsonl(path: Union[str, Path]) -> list[Span]:
    """Read spans written by :meth:`SpanRecorder.dump_jsonl`."""
    spans: list[Span] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            spans.append(Span(name=data["name"], start=data["start"],
                              end=data["end"], tag=data.get("tag"),
                              shard=data.get("shard")))
    return spans
