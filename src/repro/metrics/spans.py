"""Span-based component tracing, modelled on Ilúvatar's use of the Rust
``tracing`` crate (Section 5.1).

Every worker component wraps its work in a named span; spans record the
simulated (or wall-clock) duration and are grouped by name.  Table 2 of the
paper — the per-component latency breakdown of a single warm invocation —
is regenerated directly from these spans.
"""

from __future__ import annotations

import json
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .stats import LatencySummary, summarize

__all__ = ["Span", "SpanRecorder", "SPAN_GROUPS", "load_spans_jsonl"]

# Paper Table 2 grouping of worker components.
SPAN_GROUPS: dict[str, str] = {
    "invoke": "Ingestion & Queuing",
    "sync_invoke": "Ingestion & Queuing",
    "enqueue_invocation": "Ingestion & Queuing",
    "add_item_to_q": "Ingestion & Queuing",
    "spawn_worker": "Container Operations",
    "dequeue": "Container Operations",
    "acquire_container": "Container Operations",
    "try_lock_container": "Container Operations",
    "prepare_invoke": "Agent Communication",
    "call_container": "Agent Communication",
    "download_result": "Agent Communication",
    "return_container": "Returning",
    "return_results": "Returning",
}


@dataclass
class Span:
    """One completed span: a named interval with optional invocation tag."""

    name: str
    start: float
    end: float
    tag: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SpanRecorder:
    """Collects spans; ``clock`` supplies the current time.

    The recorder is deliberately tolerant of high volume: per-span storage
    is an append to a per-name list, and all reduction is deferred.
    """

    clock: Callable[[], float]
    enabled: bool = True
    _durations: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))
    _spans: list[Span] = field(default_factory=list)
    keep_spans: bool = False

    @contextmanager
    def span(self, name: str, tag: Optional[str] = None) -> Iterator[None]:
        """Context manager timing a component by the recorder's clock."""
        if not self.enabled:
            yield
            return
        start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self._durations[name].append(end - start)
            if self.keep_spans:
                self._spans.append(Span(name=name, start=start, end=end, tag=tag))

    def record(self, name: str, duration: float, tag: Optional[str] = None) -> None:
        """Record an externally measured duration under ``name``."""
        if not self.enabled:
            return
        if duration < 0:
            raise ValueError(f"negative span duration: {duration}")
        self._durations[name].append(duration)
        if self.keep_spans:
            now = self.clock()
            self._spans.append(Span(name=name, start=now - duration, end=now, tag=tag))

    # -- reporting ---------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._durations)

    def durations(self, name: str) -> list[float]:
        return list(self._durations.get(name, []))

    def summary(self, name: str) -> LatencySummary:
        return summarize(self._durations.get(name, []))

    def mean(self, name: str) -> float:
        values = self._durations.get(name)
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def spans(self) -> list[Span]:
        return list(self._spans)

    def breakdown_table(self, scale: float = 1.0) -> list[dict]:
        """Rows in the shape of paper Table 2: group, name, mean time.

        ``scale`` converts the clock unit into the reporting unit (e.g.
        1000.0 for seconds → milliseconds).
        """
        rows = []
        for name in SPAN_GROUPS:
            if name in self._durations:
                rows.append(
                    {
                        "group": SPAN_GROUPS[name],
                        "function": name,
                        "time": self.mean(name) * scale,
                    }
                )
        # Components outside the canonical table come last, alphabetically.
        for name in sorted(set(self._durations) - set(SPAN_GROUPS)):
            rows.append(
                {
                    "group": "Other",
                    "function": name,
                    "time": self.mean(name) * scale,
                }
            )
        return rows

    def reset(self) -> None:
        self._durations.clear()
        self._spans.clear()

    def dump_jsonl(self, path: Union[str, Path]) -> int:
        """Write retained spans as JSON lines (one span per line), the
        fine-grained logging the paper's ``tracing`` instrumentation
        provides for offline analysis.  Requires ``keep_spans``.
        Returns the number of spans written."""
        spans = self._spans
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps({
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "tag": span.tag,
                }) + "\n")
        return len(spans)


def load_spans_jsonl(path: Union[str, Path]) -> list[Span]:
    """Read spans written by :meth:`SpanRecorder.dump_jsonl`."""
    spans: list[Span] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            spans.append(Span(name=data["name"], start=data["start"],
                              end=data["end"], tag=data.get("tag")))
    return spans
