"""Vectorized summary statistics for latency samples and timeseries.

All heavy computation is NumPy-based: experiments accumulate raw samples in
Python lists (cheap appends on the hot path) and reduce them here once at
reporting time, following the profile-then-vectorize workflow from the
HPC-Python guides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["LatencySummary", "summarize", "percentile", "bin_timeseries", "OnlineStats"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample, all values in the sample's own unit."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }


_EMPTY = LatencySummary(0, float("nan"), float("nan"), float("nan"),
                        float("nan"), float("nan"), float("nan"), float("nan"))


def summarize(samples: Iterable[float]) -> LatencySummary:
    """Reduce a sample of latencies to a :class:`LatencySummary`."""
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples,
                     dtype=float)
    if arr.size == 0:
        return _EMPTY
    p50, p90, p99 = np.percentile(arr, [50.0, 90.0, 99.0])
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(p50),
        p90=float(p90),
        p99=float(p99),
        maximum=float(arr.max()),
    )


def percentile(samples: Sequence[float], q: float) -> float:
    """Single percentile (q in [0, 100]) of a sample; NaN when empty."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def bin_timeseries(
    timestamps: Sequence[float],
    duration: float,
    bin_width: float = 1.0,
) -> np.ndarray:
    """Count events per time bin — used for invocations/second plots.

    Events beyond ``duration`` fall in the final bin's clamp (they are
    counted; they are not silently dropped).
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    ts = np.asarray(timestamps, dtype=float)
    n_bins = int(np.ceil(duration / bin_width))
    if ts.size == 0:
        return np.zeros(n_bins, dtype=np.int64)
    idx = np.clip((ts / bin_width).astype(np.int64), 0, n_bins - 1)
    return np.bincount(idx, minlength=n_bins).astype(np.int64)


class OnlineStats:
    """Welford's online mean/variance — same algorithm the HIST keep-alive
    policy uses for its coefficient-of-variation estimate (Section 6.1).
    """

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator in (Chan et al.'s parallel combine).

        Lets shard-local running stats reduce like every other telemetry
        structure: mean and M2 combine exactly (up to float rounding) as
        if every sample had been pushed into one accumulator.
        """
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            return
        total = self.n + other.n
        delta = other._mean - self._mean
        self._mean += delta * other.n / total
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self.n = total

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        """Population variance."""
        if self.n == 0:
            return float("nan")
        return self._m2 / self.n

    @property
    def std(self) -> float:
        return self.variance**0.5 if self.n else float("nan")

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean); inf when mean is 0."""
        if self.n == 0:
            return float("nan")
        if self._mean == 0:
            return float("inf")
        return self.std / abs(self._mean)
