"""Parallel experiment execution.

Every paper artifact in this repo is a sweep over *embarrassingly
independent* simulation cells (trace x policy x cache size, workload x
system x seed, ...).  This package fans those cells out over a process
pool while keeping the results bit-identical to a serial run:

* task functions are **top-level** (spawn-safe picklable callables);
* large shared inputs (the NumPy-backed traces) are pickled **once per
  worker** through the pool initializer, never once per task;
* results are keyed by task index, so output order is the submission
  order regardless of completion order;
* ``n_jobs=1`` (the default) runs in-process with zero pool overhead,
  and any pool start-up failure falls back to the same serial path.

The ``n_jobs`` knob threads through every experiment runner, the
``--jobs`` CLI flag, and the ``REPRO_JOBS`` environment variable.
"""

from .pool import (
    ParallelUnavailable,
    effective_jobs,
    last_run_info,
    resolve_jobs,
    run_parallel,
)
from .tasks import (
    cache_size_cell,
    cluster_study_cell,
    keepalive_cell,
    lb_bound_cell,
    lb_policy_cell,
    litmus_cell,
    queue_policy_cell,
)

__all__ = [
    "ParallelUnavailable",
    "effective_jobs",
    "last_run_info",
    "resolve_jobs",
    "run_parallel",
    "keepalive_cell",
    "cache_size_cell",
    "litmus_cell",
    "queue_policy_cell",
    "lb_bound_cell",
    "lb_policy_cell",
    "cluster_study_cell",
]
