"""Process-pool sweep runner.

``run_parallel`` executes one top-level task function over a list of
argument tuples.  The contract that keeps parallel runs interchangeable
with serial ones:

* **Determinism** — results are keyed by task index and returned in
  submission order; completion order never leaks into the output.
* **Pickle-once shipping** — the ``shared`` payload (typically the dict
  of NumPy-backed traces) is serialized a single time in the parent and
  rehydrated once per worker by the pool initializer.  Tasks reference
  it through a module global, so per-task messages carry only small
  argument tuples.
* **Graceful fallback** — ``n_jobs=1`` (or a pool that cannot start:
  missing semaphores, sandboxed /dev/shm, restricted fork) runs the
  exact same task function in-process.

Task functions must be importable top-level callables
(``module.function``), so they survive both ``fork`` and ``spawn``
start methods.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "ParallelUnavailable",
    "resolve_jobs",
    "effective_jobs",
    "run_parallel",
    "last_run_info",
]


class ParallelUnavailable(RuntimeError):
    """Raised internally when a process pool cannot be started."""


# Per-worker state installed by the pool initializer (also set on the
# serial path so task functions see one environment everywhere).
_WORKER_FUNC: Optional[Callable] = None
_WORKER_SHARED: Any = None

# How the most recent run_parallel call actually executed.  Benchmarks
# record this next to their timings: a "parallel" number measured on the
# serial fallback path (sandboxed /dev/shm, missing semaphores) is
# indistinguishable from a real pool run by wall clock alone.
_LAST_RUN: dict = {
    "pool_used": False,
    "jobs": 0,
    "tasks": 0,
    "cpu_count": os.cpu_count() or 1,
    "fallback_reason": None,
}


def last_run_info() -> dict:
    """How the most recent :func:`run_parallel` call executed.

    ``pool_used`` is True only when a process pool genuinely ran the
    tasks; otherwise ``fallback_reason`` says why execution was serial
    (single worker requested, no tasks, or the ``ParallelUnavailable``
    message).  ``cpu_count`` rides along so recorded speedups can be
    judged against the machine they were measured on.
    """
    return dict(_LAST_RUN)


def _note_run(jobs: int, tasks: int, pool_used: bool,
              fallback_reason: Optional[str]) -> None:
    _LAST_RUN.update(
        jobs=jobs,
        tasks=tasks,
        pool_used=pool_used,
        cpu_count=os.cpu_count() or 1,
        fallback_reason=fallback_reason,
    )


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Resolve the worker count: explicit arg > ``REPRO_JOBS`` env > 1.

    ``0`` or a negative value (either source) means "all cores".
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return n_jobs


def effective_jobs(n_jobs: Optional[int], num_tasks: int) -> int:
    """Workers actually worth starting: never more than there are tasks."""
    return max(1, min(resolve_jobs(n_jobs), num_tasks))


def _init_worker(func: Callable, payload: Optional[bytes]) -> None:
    """Pool initializer: rehydrate the shared payload once per worker."""
    global _WORKER_FUNC, _WORKER_SHARED
    _WORKER_FUNC = func
    _WORKER_SHARED = pickle.loads(payload) if payload is not None else None


def _run_cell(item: tuple) -> tuple:
    """Execute one task in a worker; results ride home with their index."""
    index, args = item
    return index, _WORKER_FUNC(_WORKER_SHARED, *args)


def _default_chunksize(num_tasks: int, jobs: int) -> int:
    """~4 chunks per worker: amortize IPC without starving the tail."""
    return max(1, num_tasks // (jobs * 4))


def _run_serial(func: Callable, tasks: Sequence[tuple], shared: Any) -> list:
    global _WORKER_FUNC, _WORKER_SHARED
    prev = (_WORKER_FUNC, _WORKER_SHARED)
    _WORKER_FUNC, _WORKER_SHARED = func, shared
    try:
        return [func(shared, *args) for args in tasks]
    finally:
        _WORKER_FUNC, _WORKER_SHARED = prev


def run_parallel(
    func: Callable,
    tasks: Sequence[tuple],
    n_jobs: Optional[int] = None,
    shared: Any = None,
    chunksize: Optional[int] = None,
    start_method: Optional[str] = None,
) -> list:
    """Run ``func(shared, *args)`` for every args-tuple in ``tasks``.

    Returns the results in task order.  ``n_jobs`` resolves through
    :func:`resolve_jobs`; with one worker (the default) everything runs
    in-process.  ``start_method`` overrides the multiprocessing context
    (``REPRO_MP_START`` env var is the ambient override).
    """
    tasks = [tuple(args) for args in tasks]
    jobs = effective_jobs(n_jobs, len(tasks))
    if jobs <= 1 or not tasks:
        _note_run(jobs, len(tasks), pool_used=False,
                  fallback_reason="no tasks" if not tasks
                  else "single worker requested")
        return _run_serial(func, tasks, shared)

    try:
        result = _run_pool(func, tasks, jobs, shared, chunksize, start_method)
    except ParallelUnavailable as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        _note_run(jobs, len(tasks), pool_used=False, fallback_reason=str(exc))
        return _run_serial(func, tasks, shared)
    _note_run(jobs, len(tasks), pool_used=True, fallback_reason=None)
    return result


def _run_pool(
    func: Callable,
    tasks: list,
    jobs: int,
    shared: Any,
    chunksize: Optional[int],
    start_method: Optional[str],
) -> list:
    import multiprocessing as mp

    method = start_method or os.environ.get("REPRO_MP_START") or None
    try:
        ctx = mp.get_context(method)
        payload = (
            pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
            if shared is not None
            else None
        )
        pool = ctx.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(func, payload),
        )
    except (OSError, ValueError, ImportError, AttributeError, pickle.PicklingError) as exc:
        raise ParallelUnavailable(str(exc)) from exc

    size = chunksize if chunksize is not None else _default_chunksize(len(tasks), jobs)
    out: list = [None] * len(tasks)
    try:
        for index, value in pool.imap_unordered(
            _run_cell, list(enumerate(tasks)), chunksize=size
        ):
            out[index] = value
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    pool.close()
    pool.join()
    return out
