"""Top-level task functions for the experiment sweeps.

One function per sweep-cell kind.  All of them are importable module
attributes (``repro.parallel.tasks.<name>``) so a pool worker can
rehydrate them by reference under either the ``fork`` or ``spawn``
start method.  Every task takes the pool-wide ``shared`` payload as its
first argument — the traces dict for the keep-alive sweep, the
pre-generated trace for the cluster study, ``None`` where a cell is
self-contained.

Experiment modules are imported *inside* the task bodies: the
experiment runners import :mod:`repro.parallel` for the pool, so a
module-level import here would be circular.  The deferred import costs
one dict lookup per call after the first.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "keepalive_cell",
    "cache_size_cell",
    "litmus_cell",
    "queue_policy_cell",
    "lb_bound_cell",
    "lb_policy_cell",
    "dispatch_race_cell",
    "cluster_study_cell",
]


def keepalive_cell(shared: Any, trace_name: str, policy: str, cache_size_mb: float):
    """One Fig-4/5 cell: replay ``shared[trace_name]`` under one policy."""
    from ..keepalive.simulator import simulate

    return trace_name, simulate(shared[trace_name], policy, cache_size_mb)


def cache_size_cell(shared: Any, policy: str, cache_size_mb: float):
    """One cache-size sweep cell over a single shared trace."""
    from ..keepalive.simulator import simulate

    return simulate(shared, policy, cache_size_mb)


def litmus_cell(
    shared: Any,
    workload: str,
    system: str,
    duration: float,
    memory_mb: float,
    cores: int,
    seed: int,
):
    """One Fig-6 cell: one litmus workload x system x seed replay."""
    from ..experiments.fig6_litmus import _run_one

    return _run_one(workload, system, duration, memory_mb, cores, seed)


def queue_policy_cell(shared: Any, policy: str, duration: float, cores: int):
    """One queue-discipline ablation row."""
    from ..experiments.queue_ablation import _queue_policy_row

    return _queue_policy_row(policy, duration, cores)


def lb_bound_cell(
    shared: Any, factor: float, num_workers: int, duration: float, seed: int
):
    """One CH-BL bound-factor ablation row."""
    from ..experiments.lb_ablation import _bound_factor_row

    return _bound_factor_row(factor, num_workers, duration, seed)


def lb_policy_cell(
    shared: Any, policy: str, num_workers: int, duration: float, seed: int
):
    """One LB-policy comparison row."""
    from ..experiments.lb_ablation import _lb_policy_row

    return _lb_policy_row(policy, num_workers, duration, seed)


def dispatch_race_cell(
    shared: Any, policy: str, scenario: str, num_workers: int,
    duration: float, seed: int
):
    """One push-vs-pull dispatch race cell."""
    from ..experiments.lb_ablation import _dispatch_race_row

    return _dispatch_race_row(policy, scenario, num_workers, duration, seed)


def cluster_study_cell(
    shared: Any,
    lb_policy: str,
    num_workers: int,
    cores_per_worker: int,
    memory_per_worker_mb: float,
    target_load_fraction: float,
    duration_cap: float,
):
    """One cluster-study run; ``shared`` is the pre-generated trace."""
    from ..experiments.cluster_study import run_cluster_study

    return run_cluster_study(
        trace=shared,
        num_workers=num_workers,
        cores_per_worker=cores_per_worker,
        memory_per_worker_mb=memory_per_worker_mb,
        target_load_fraction=target_load_fraction,
        duration_cap=duration_cap,
        lb_policy=lb_policy,
    )
