"""cProfile harness for the repro CLI and arbitrary callables.

Usage, mirroring ``python -m repro`` exactly::

    python -m repro.profile table2 --scale small
    python -m repro.profile --profile-sort tottime --profile-top 40 fig4

Everything after the ``--profile-*`` options is handed to
:func:`repro.cli.main` unchanged, so any experiment command can be
profiled without modification.  The stats table prints to stderr after
the command's own output; ``--profile-out`` additionally saves the raw
stats for ``snakeviz``/``pstats`` consumption.

For library use, :func:`profile_call` wraps a single callable and
returns its result alongside the :class:`pstats.Stats`.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import Any, Callable, Optional, Sequence

__all__ = ["profile_call", "main"]


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    sort: str = "cumulative",
    top: int = 30,
    stream=None,
    **kwargs: Any,
) -> tuple[Any, pstats.Stats]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats)`` and prints the top ``top`` entries sorted
    by ``sort`` to ``stream`` (stderr by default; pass ``top=0`` to print
    nothing).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=stream or sys.stderr)
    stats.sort_stats(sort)
    if top > 0:
        stats.print_stats(top)
    return result, stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.profile",
        description="Profile a repro CLI command with cProfile.",
    )
    parser.add_argument(
        "--profile-sort",
        default="cumulative",
        help="pstats sort key (default: cumulative; try tottime)",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=30,
        help="number of stats rows to print (default: 30)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="also dump raw stats for snakeviz / pstats",
    )
    parser.add_argument(
        "cli_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro`",
    )
    args = parser.parse_args(argv)
    from .cli import main as cli_main

    cli_argv = args.cli_args
    if cli_argv and cli_argv[0] == "--":
        cli_argv = cli_argv[1:]

    rc, stats = profile_call(
        cli_main, cli_argv, sort=args.profile_sort, top=args.profile_top
    )
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"profile stats written to {args.profile_out}", file=sys.stderr)
    return int(rc or 0)


if __name__ == "__main__":
    raise SystemExit(main())
