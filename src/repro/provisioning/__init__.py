"""Dynamic resource provisioning via miss-speed control."""

from .controller import MissSpeedController, ProvisioningConfig

__all__ = ["MissSpeedController", "ProvisioningConfig"]
