"""Dynamic vertical cache scaling (the paper's provisioning policy, Fig 8).

The controller keeps the *miss speed* — cold starts per second — near a
pre-specified target by resizing the keep-alive cache, using a
proportional controller that only acts when the relative error exceeds a
tolerance band (the paper uses 30%, chosen conservatively to avoid
memory-size churn and fragmentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ProvisioningConfig", "MissSpeedController"]


@dataclass(frozen=True)
class ProvisioningConfig:
    """Controller parameters (defaults follow the paper's experiment)."""

    target_miss_speed: float = 0.0015     # cold starts / second
    error_tolerance: float = 0.30         # act only beyond +/-30%
    gain: float = 0.5                     # proportional gain (relative)
    min_size_mb: float = 512.0
    max_size_mb: float = 10_000.0         # the static provision it undercuts
    initial_size_mb: float = 10_000.0
    window: float = 300.0                 # miss-speed measurement window (s)

    def __post_init__(self):
        if self.target_miss_speed <= 0:
            raise ValueError("target_miss_speed must be positive")
        if not 0 <= self.error_tolerance:
            raise ValueError("error_tolerance must be non-negative")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if not 0 < self.min_size_mb <= self.initial_size_mb <= self.max_size_mb:
            raise ValueError("need min <= initial <= max cache size")
        if self.window <= 0:
            raise ValueError("window must be positive")


@dataclass
class SizeSample:
    time: float
    size_mb: float
    miss_speed: float
    resized: bool


class MissSpeedController:
    """Proportional controller on the cold-start rate.

    Feed it ``(now, cumulative_cold_starts)`` once per window via
    :meth:`update`; it returns the new cache size (MB).  Designed to be
    wired to :class:`~repro.keepalive.simulator.KeepAliveSimulator` through
    its ``on_tick`` hook, or to a live worker's memory gauge.
    """

    def __init__(self, config: Optional[ProvisioningConfig] = None):
        self.config = config or ProvisioningConfig()
        self.size_mb = self.config.initial_size_mb
        self._last_time: Optional[float] = None
        self._last_cold = 0
        self.history: list[SizeSample] = []

    def update(self, now: float, cumulative_cold_starts: int) -> float:
        """One control step; returns the (possibly resized) cache size."""
        cfg = self.config
        if self._last_time is None:
            self._last_time = now
            self._last_cold = cumulative_cold_starts
            return self.size_mb
        dt = now - self._last_time
        if dt <= 0:
            return self.size_mb
        miss_speed = (cumulative_cold_starts - self._last_cold) / dt
        self._last_time = now
        self._last_cold = cumulative_cold_starts

        error = (miss_speed - cfg.target_miss_speed) / cfg.target_miss_speed
        resized = False
        if abs(error) > cfg.error_tolerance:
            # Misses above target -> grow the cache; below -> shrink.
            self.size_mb *= 1.0 + cfg.gain * error
            self.size_mb = min(max(self.size_mb, cfg.min_size_mb), cfg.max_size_mb)
            resized = True
        self.history.append(
            SizeSample(time=now, size_mb=self.size_mb, miss_speed=miss_speed,
                       resized=resized)
        )
        return self.size_mb

    # -- reporting ---------------------------------------------------------
    @property
    def average_size_mb(self) -> float:
        if not self.history:
            return self.size_mb
        return sum(s.size_mb for s in self.history) / len(self.history)

    def savings_vs_static(self, static_mb: Optional[float] = None) -> float:
        """Fractional memory saving vs a static provision (paper: ~30%)."""
        static = static_mb if static_mb is not None else self.config.max_size_mb
        if static <= 0:
            raise ValueError("static size must be positive")
        return 1.0 - self.average_size_mb / static

    def timeseries(self) -> tuple[list[float], list[float], list[float]]:
        """(times, sizes_mb, miss_speeds) for plotting Figure 8."""
        return (
            [s.time for s in self.history],
            [s.size_mb for s in self.history],
            [s.miss_speed for s in self.history],
        )
