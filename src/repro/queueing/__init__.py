"""Per-worker invocation queueing: disciplines, bypass, regulator."""

from .bypass import BypassPolicy, NoBypass, ShortFunctionBypass
from .policies import (
    QUEUE_POLICY_NAMES,
    EEDFPolicy,
    FCFSPolicy,
    MQFQPolicy,
    QueuePolicy,
    RAREPolicy,
    SJFPolicy,
    make_queue_policy,
)
from .regulator import AIMDConfig, ConcurrencyRegulator, LoadTracker

__all__ = [
    "BypassPolicy",
    "NoBypass",
    "ShortFunctionBypass",
    "QUEUE_POLICY_NAMES",
    "EEDFPolicy",
    "FCFSPolicy",
    "MQFQPolicy",
    "QueuePolicy",
    "RAREPolicy",
    "SJFPolicy",
    "make_queue_policy",
    "AIMDConfig",
    "ConcurrencyRegulator",
    "LoadTracker",
]
