"""Queue-bypass policies (Section 4.1).

Queuing adds waiting time that hurts small functions disproportionately.
The bypass mechanism lets selected invocations skip the queue and run
immediately; the shipped policy is the paper's short-function bypass:
functions whose expected duration is below a threshold bypass, as long as
the system load average is under a limit.
"""

from __future__ import annotations

from ..core.characteristics import CharacteristicsMap
from ..core.function import Invocation
from .regulator import LoadTracker

__all__ = ["BypassPolicy", "NoBypass", "ShortFunctionBypass"]


class BypassPolicy:
    """Decides whether an invocation may skip the queue."""

    name = "base"

    def should_bypass(self, inv: Invocation, warm_available: bool) -> bool:
        raise NotImplementedError


class NoBypass(BypassPolicy):
    """Every invocation goes through the queue."""

    name = "none"

    def should_bypass(self, inv: Invocation, warm_available: bool) -> bool:
        return False


class ShortFunctionBypass(BypassPolicy):
    """Bypass for expected-short functions while the system is lightly loaded."""

    name = "short"

    def __init__(
        self,
        characteristics: CharacteristicsMap,
        load: LoadTracker,
        duration_threshold: float = 0.100,
        load_limit: float = 0.9,
    ):
        if duration_threshold < 0:
            raise ValueError("duration_threshold must be non-negative")
        if load_limit <= 0:
            raise ValueError("load_limit must be positive")
        self.characteristics = characteristics
        self.load = load
        self.duration_threshold = float(duration_threshold)
        self.load_limit = float(load_limit)

    def should_bypass(self, inv: Invocation, warm_available: bool) -> bool:
        stats = self.characteristics.get(inv.function.fqdn())
        if stats.exec_all.count == 0:
            # No execution evidence yet (the arrival may already be
            # recorded); the queue's zero-estimate fast-path prioritizes
            # unseen functions instead — bypassing them would re-create
            # the concurrent-cold-start herd the queue exists to prevent.
            return False
        expected = self.characteristics.expected_exec_time(
            inv.function.fqdn(), warm_available
        )
        if expected <= 0.0:
            # Only cold runs observed so far: fall back to the overall
            # execution history rather than treating the function as
            # instantaneous.
            expected = stats.exec_all.value
        return (
            expected <= self.duration_threshold
            and self.load.normalized < self.load_limit
        )
