"""Invocation-queue disciplines (Section 4.2, "Queuing Policies").

Each policy maps an invocation (plus the worker's learned function
characteristics) to a scalar priority; the per-worker queue is a priority
heap, lowest value dispatched first.

* **FCFS** — arrival order.
* **SJF**  — shortest (expected) job first: reduces short-function waits,
  can starve long functions.
* **EEDF** — earliest effective deadline first (the paper's default):
  deadline = arrival + expected execution, balancing duration and arrival.
* **RARE** — most-unexpected first: prioritizes the largest inter-arrival
  time.
* **MQFQ** — start-time fair queueing over per-function flows (the
  multi-queue fair-queueing design the paper's follow-on GPU work adopts
  from Hedayati et al.): a flooding function cannot starve others,
  because each flow's tags advance with its own consumed service.

SJF and EEDF use the function's moving-window *warm* time when a warm
container is expected, its *cold* time otherwise — which naturally spreads
bursts of one function through the queue and cuts concurrent cold starts.
New, unseen functions estimate 0 and therefore jump the queue.
"""

from __future__ import annotations

from typing import Callable

from ..core.characteristics import CharacteristicsMap
from ..core.function import Invocation

__all__ = [
    "QueuePolicy",
    "FCFSPolicy",
    "SJFPolicy",
    "EEDFPolicy",
    "RAREPolicy",
    "MQFQPolicy",
    "make_queue_policy",
    "QUEUE_POLICY_NAMES",
]


class QueuePolicy:
    """Base queue discipline."""

    name = "base"

    def __init__(self, characteristics: CharacteristicsMap):
        self.characteristics = characteristics

    def expected_exec_time(self, inv: Invocation, warm_available: bool) -> float:
        return self.characteristics.expected_exec_time(
            inv.function.fqdn(), warm_available
        )

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        """Lower dispatches first."""
        raise NotImplementedError

    def on_dispatch(self, inv: Invocation) -> None:
        """Hook: the dispatcher pulled this invocation off the queue."""


class FCFSPolicy(QueuePolicy):
    """First come, first served: priority is arrival time."""

    name = "fcfs"

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        return inv.arrival


class SJFPolicy(QueuePolicy):
    """Shortest (expected) job first."""

    name = "sjf"

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        return self.expected_exec_time(inv, warm_available)


class EEDFPolicy(QueuePolicy):
    """Earliest effective deadline first: arrival + expected execution."""

    name = "eedf"

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        return inv.arrival + self.expected_exec_time(inv, warm_available)


class RAREPolicy(QueuePolicy):
    """Most-unexpected-function-first: highest inter-arrival time wins."""

    name = "rare"

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        stats = self.characteristics.get(inv.function.fqdn())
        # Negative so the largest IAT has the lowest (best) priority.
        return -stats.avg_iat


class MQFQPolicy(QueuePolicy):
    """Start-time fair queueing over per-function flows (MQFQ-style).

    Each function is a flow.  An invocation's start tag is
    ``max(virtual_time, flow's last finish tag)``; its finish tag adds its
    expected service time.  The queue dispatches lowest start tag first,
    and the virtual time advances to each dispatched start tag (the
    worker's dispatcher calls :meth:`on_dispatch`).  A function flooding
    the queue only pushes *its own* tags into the future, so sparse
    functions dispatch promptly — fairness without starving throughput.

    Expected service uses the same warm/cold estimate as SJF/EEDF; new
    functions get a minimal but positive charge so their tags still
    advance under a flood of unknown functions.
    """

    name = "mqfq"

    MIN_SERVICE = 0.001  # tag advance floor (seconds of virtual service)

    def __init__(self, characteristics: CharacteristicsMap):
        super().__init__(characteristics)
        self.virtual_time = 0.0
        self._flow_finish: dict[str, float] = {}
        self._start_tags: dict[int, float] = {}

    def priority(self, inv: Invocation, warm_available: bool) -> float:
        fqdn = inv.function.fqdn()
        service = max(
            self.expected_exec_time(inv, warm_available), self.MIN_SERVICE
        )
        start = max(self.virtual_time, self._flow_finish.get(fqdn, 0.0))
        self._flow_finish[fqdn] = start + service
        self._start_tags[inv.id] = start
        return start

    def on_dispatch(self, inv: Invocation) -> None:
        start = self._start_tags.pop(inv.id, None)
        if start is not None and start > self.virtual_time:
            self.virtual_time = start

    def forget(self, inv: Invocation) -> None:
        """Drop bookkeeping for an invocation that never dispatches."""
        self._start_tags.pop(inv.id, None)


QUEUE_POLICY_NAMES = ("fcfs", "sjf", "eedf", "rare", "mqfq")

_POLICIES: dict[str, Callable[..., QueuePolicy]] = {
    "fcfs": FCFSPolicy,
    "fifo": FCFSPolicy,
    "sjf": SJFPolicy,
    "eedf": EEDFPolicy,
    "rare": RAREPolicy,
    "mqfq": MQFQPolicy,
    "sfq": MQFQPolicy,
}


def make_queue_policy(name: str, characteristics: CharacteristicsMap) -> QueuePolicy:
    cls = _POLICIES.get(name.lower())
    if cls is None:
        raise ValueError(
            f"unknown queue policy {name!r}; choose from {sorted(_POLICIES)}"
        )
    return cls(characteristics)
