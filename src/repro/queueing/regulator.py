"""Concurrency regulator (Section 4.1).

The regulator enforces the concurrency limit — the upper bound on
simultaneously running functions, which is also the CPU-overcommitment
knob (limits above the core count overcommit; cgroup shares still give
proportional allocation).

Two modes:

* **fixed** — a static limit;
* **dynamic (AIMD)** — TCP-like additive-increase/multiplicative-decrease:
  the limit creeps up one slot per adjustment interval until the load
  average crosses a congestion threshold, then is cut multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..sim.core import Environment
from ..sim.resources import Resource

__all__ = ["LoadTracker", "ConcurrencyRegulator", "AIMDConfig"]


class LoadTracker:
    """Exponentially-smoothed 'load average' of running invocations.

    Mirrors the kernel's 1-minute loadavg: sampled periodically, decayed
    with factor exp(-interval/60).
    """

    def __init__(self, cores: float, interval: float = 5.0, horizon: float = 60.0):
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        if interval <= 0 or horizon <= 0:
            raise ValueError("interval and horizon must be positive")
        import math

        self.cores = float(cores)
        self.interval = float(interval)
        self._decay = math.exp(-interval / horizon)
        self.loadavg = 0.0
        self.running = 0

    def on_start(self) -> None:
        self.running += 1

    def on_finish(self) -> None:
        if self.running <= 0:
            raise RuntimeError("on_finish without matching on_start")
        self.running -= 1

    def sample(self) -> float:
        """One sampling step; returns the updated load average."""
        self.loadavg = self.loadavg * self._decay + self.running * (1.0 - self._decay)
        return self.loadavg

    @property
    def normalized(self) -> float:
        """Load average relative to core count (1.0 = fully busy)."""
        return self.loadavg / self.cores

    @property
    def busy_cores(self) -> float:
        """Cores actually occupied right now (running, capped at cores).

        The energy model and the telemetry sampler both read this: running
        invocations above the core count time-share and draw no extra
        power.
        """
        running = self.running
        cores = self.cores
        return float(running) if running < cores else cores

    def sampler(self, env: Environment) -> Generator:
        """Background DES process: keep the load average fresh."""
        while True:
            yield env.timeout(self.interval)
            self.sample()


@dataclass(frozen=True)
class AIMDConfig:
    """Dynamic concurrency-limit controller parameters."""

    min_limit: int = 1
    max_limit: int = 1024
    additive_increase: int = 1
    multiplicative_decrease: float = 0.5
    congestion_threshold: float = 1.0  # normalized load average
    adjust_interval: float = 2.0

    def __post_init__(self):
        if self.min_limit < 1:
            raise ValueError("min_limit must be >= 1")
        if self.max_limit < self.min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not 0 < self.multiplicative_decrease < 1:
            raise ValueError("multiplicative_decrease must be in (0, 1)")
        if self.adjust_interval <= 0:
            raise ValueError("adjust_interval must be positive")


class ConcurrencyRegulator:
    """Owns the concurrency-token resource; optionally self-adjusting."""

    def __init__(
        self,
        env: Environment,
        limit: int,
        load: Optional[LoadTracker] = None,
        aimd: Optional[AIMDConfig] = None,
    ):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.env = env
        self.tokens = Resource(env, capacity=limit)
        self.load = load
        self.aimd = aimd
        self.limit_history: list[tuple[float, int]] = [(env.now, limit)]
        self._running = False

    @property
    def limit(self) -> int:
        return self.tokens.capacity

    @property
    def in_flight(self) -> int:
        return self.tokens.count

    def _set_limit(self, limit: int) -> None:
        limit = max(1, int(limit))
        if limit != self.tokens.capacity:
            self.tokens.set_capacity(limit)
            self.limit_history.append((self.env.now, limit))

    def controller(self) -> Generator:
        """Background AIMD process (requires a LoadTracker and AIMDConfig)."""
        if self.aimd is None or self.load is None:
            raise RuntimeError("dynamic mode needs both aimd config and load tracker")
        cfg = self.aimd
        self._running = True
        while self._running:
            yield self.env.timeout(cfg.adjust_interval)
            if self.load.normalized > cfg.congestion_threshold:
                self._set_limit(
                    max(cfg.min_limit, int(self.limit * cfg.multiplicative_decrease))
                )
            else:
                self._set_limit(min(cfg.max_limit, self.limit + cfg.additive_increase))

    def stop(self) -> None:
        self._running = False
