"""Discrete-event simulation substrate (kernel, resources, distributions)."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Pareto,
    ShiftedExponential,
    Uniform,
    lognormal_from_mean_cv,
    make_rng,
)
from .resources import Gauge, PriorityStore, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Constant",
    "Distribution",
    "Empirical",
    "Exponential",
    "LogNormal",
    "Pareto",
    "ShiftedExponential",
    "Uniform",
    "lognormal_from_mean_cv",
    "make_rng",
    "Gauge",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
]
