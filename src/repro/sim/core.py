"""Discrete-event simulation kernel.

This is the substrate the whole control plane runs on.  It is a small,
SimPy-flavoured kernel: *processes* are generator coroutines that yield
:class:`Event` objects; the :class:`Environment` owns a binary-heap event
calendar and advances virtual time from event to event.

The paper's "in-situ simulation" design (Section 3.4) is the reason this
kernel exists: the same control-plane code runs against a ``null`` container
backend whose operations are pure timeouts on this clock, so an experiment
follows identical code paths whether it models one worker or a large cluster.

The kernel is deterministic: events scheduled at equal times fire in
insertion order (a monotonically increasing sequence number breaks ties),
and all randomness in higher layers flows through seeded
``numpy.random.Generator`` instances.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

# Hot-path aliases: the calendar push/pop run once per event, so the
# module-global lookup beats re-resolving heapq.<attr> every call.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, dead scheduling...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
PENDING = 0
TRIGGERED = 1  # scheduled on the calendar, callbacks not yet run
PROCESSED = 2  # callbacks have run


def _tombstone(event: "Event") -> None:
    """Placeholder left by :meth:`Process.interrupt` in a callback slot.

    Replacing (instead of removing) keeps every other process's recorded
    callback index valid; running it is a no-op.
    """


class Event:
    """A condition that may happen at a point in simulated time.

    Processes wait on events by yielding them.  An event is *triggered* with
    either :meth:`succeed` or :meth:`fail`; once processed its callbacks have
    been invoked and waiting processes resumed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, carrying ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be re-raised in waiters."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._state = TRIGGERED
        env._schedule(self, priority=0)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The process event succeeds with the generator's return value, or fails
    with any uncaught exception (which then propagates out of
    :meth:`Environment.run` unless some other process waits on it).
    """

    __slots__ = ("_generator", "_target", "_target_index", "_resume_cb", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._target_index: Optional[int] = None
        # One bound-method object reused for every wait: saves an
        # allocation per yield and gives interrupt() a stable identity
        # to find in callback lists.
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from the waited-on event by swapping a tombstone into
        # our recorded callback slot — O(1) where ``list.remove`` is
        # O(n) per interrupt (O(n^2) when many waiters on one event all
        # get interrupted).  Valid because callback lists are append-only
        # until the event is processed, so recorded indices never shift.
        target = self._target
        if target is not None:
            index = self._target_index
            callbacks = target.callbacks
            if (
                index is not None
                and index < len(callbacks)
                and callbacks[index] is self._resume_cb
            ):
                callbacks[index] = _tombstone
        event = Event(self.env)
        event.callbacks.append(self._resume_interrupt(cause))
        event.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            if self._state != PENDING:
                return  # terminated before the interrupt was delivered
            self._step(lambda: self._generator.throw(Interrupt(cause)))

        return callback

    def _resume(self, event: Event) -> None:
        if event._ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            self._step(lambda: self._generator.throw(event._value))

    def _step(self, advance: Callable[[], Any]) -> None:
        self._target = None
        self._target_index = None
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as exc:
            self.env._active_process = None
            self.succeed(exc.value)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process with a failure.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            self.env._note_failure(self, exc)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
        if target._state == PROCESSED:
            # Already happened: resume immediately at the current time.
            proxy = Event(self.env)
            proxy.callbacks.append(self._resume_cb)
            proxy.trigger(target)
            self._target_index = None
        else:
            callbacks = target.callbacks
            self._target_index = len(callbacks)
            callbacks.append(self._resume_cb)
        self._target = target


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._state == PROCESSED:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            e: e._value for e in self.events if e._state == PROCESSED and e._ok
        }


class AllOf(_Condition):
    """Fires once every component event has fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any component event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._results())


class Environment:
    """The simulation environment: a clock plus an event calendar.

    ``run(until=...)`` executes events in time order.  Use
    :meth:`process` to start coroutines, :meth:`timeout` to wait, and
    :meth:`event` for manually triggered conditions.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._failures: deque[tuple[Process, BaseException]] = deque()

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in this repo)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        seq = self._seq = self._seq + 1
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = _heappop(self._queue)
        if when < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._state = PROCESSED
        for callback in callbacks:
            callback(event)
        # A failed event with no real waiters (tombstones left by
        # interrupts don't count) propagates — silent failure would
        # corrupt experiments.
        if (
            not event._ok
            and not isinstance(event, Process)
            and all(cb is _tombstone for cb in callbacks)
        ):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or simulated time reaches ``until``.

        Uncaught exceptions in processes that nobody waits on propagate out
        of this call — silent failure would corrupt experiments.
        """
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise ValueError(f"until={limit} lies in the past (now={self._now})")
        queue = self._queue
        step = self.step
        failures = self._failures
        while queue and queue[0][0] <= limit:
            step()
            while failures:
                process, exc = failures.popleft()
                # A waited-on process delivers the exception to its waiters
                # instead; only orphan failures propagate.
                if not process.callbacks:
                    raise exc
        if self._now < limit and limit != float("inf"):
            self._now = limit

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Start ``generator`` as a process and run until *it* completes
        (or the time limit passes), then return its value.

        Unlike :meth:`run`, this stops at the process's completion even if
        background processes keep the calendar populated indefinitely.
        """
        proc = self.process(generator)
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise ValueError(f"until={limit} lies in the past (now={self._now})")
        queue = self._queue
        step = self.step
        failures = self._failures
        while not proc.triggered and queue and queue[0][0] <= limit:
            step()
            while failures:
                process, exc = failures.popleft()
                if not process.callbacks:
                    raise exc
        if not proc.triggered:
            raise SimulationError("process did not finish before the time limit")
        if not proc.ok:
            raise proc.value
        return proc.value
