"""Discrete-event simulation kernel.

This is the substrate the whole control plane runs on.  It is a small,
SimPy-flavoured kernel: *processes* are generator coroutines that yield
:class:`Event` objects; the :class:`Environment` owns a binary-heap event
calendar and advances virtual time from event to event.

The paper's "in-situ simulation" design (Section 3.4) is the reason this
kernel exists: the same control-plane code runs against a ``null`` container
backend whose operations are pure timeouts on this clock, so an experiment
follows identical code paths whether it models one worker or a large cluster.

The kernel is deterministic: events scheduled at equal times fire in
insertion order (a monotonically increasing sequence number breaks ties),
and all randomness in higher layers flows through seeded
``numpy.random.Generator`` instances.

Fast-path design (the per-invocation cost of the kernel itself):

* **Event pooling** — processed :class:`Timeout` and :class:`Initialize`
  events are recycled through per-environment free lists instead of being
  reallocated.  Recycling is gated on the CPython reference count: an event
  is only returned to the pool when nothing outside the dispatch loop still
  holds it, so user code that keeps a timeout (e.g. inside an ``AnyOf``)
  keeps exactly the object it was given.
* **Single-waiter slot** — the overwhelmingly common wait shape is one
  process yielding one fresh timeout.  That waiter is stored in a dedicated
  ``_waiter`` slot instead of the callbacks list, skipping the per-event
  list append and the replacement-list allocation at dispatch.
* **Lambda-free stepping** — a process's ``send``/``throw`` are bound once
  at creation and passed with the value to ``_step``, instead of allocating
  a closure per resume.
"""

from __future__ import annotations

import sys
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

# Pools are CPython-only: without a true reference count we can never prove
# an event is unreachable, so the fallback count disables recycling.
_getrefcount = getattr(sys, "getrefcount", lambda _obj: sys.maxsize)

# Free-list bound: big enough to absorb any realistic number of in-flight
# timeouts between dispatches, small enough to cap idle memory.
_POOL_CAP = 1024

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, dead scheduling...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
PENDING = 0
TRIGGERED = 1  # scheduled on the calendar, callbacks not yet run
PROCESSED = 2  # callbacks have run


def _tombstone(event: "Event") -> None:
    """Placeholder left by :meth:`Process.interrupt` in a callback slot.

    Replacing (instead of removing) keeps every other process's recorded
    callback index valid; running it is a no-op.
    """


class Event:
    """A condition that may happen at a point in simulated time.

    Processes wait on events by yielding them.  An event is *triggered* with
    either :meth:`succeed` or :meth:`fail`; once processed its callbacks have
    been invoked and waiting processes resumed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_waiter")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state: int = PENDING
        # Fast-path slot for the single-waiter case (see module docstring);
        # holds the waiting Process, resumed before ``callbacks`` run.
        self._waiter: Optional["Process"] = None

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, carrying ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be re-raised in waiters."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._waiter = process
        self._ok = True
        self._state = TRIGGERED
        env._schedule(self, priority=0)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The process event succeeds with the generator's return value, or fails
    with any uncaught exception (which then propagates out of
    :meth:`Environment.run` unless some other process waits on it).
    """

    __slots__ = (
        "_generator",
        "_send",
        "_throw",
        "_target",
        "_target_index",
        "_resume_cb",
        "name",
    )

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # Bind the generator's entry points once: every resume otherwise
        # pays a bound-method (or closure) allocation on the hot path.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Index of our callback in the target's list, or -1 when we sit in
        # the target's single-waiter slot instead.
        self._target_index: Optional[int] = None
        # One bound-method object reused for every wait: saves an
        # allocation per yield and gives interrupt() a stable identity
        # to find in callback lists.
        self._resume_cb = self._resume
        env._start_process(self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        # Detach from the waited-on event by swapping a tombstone into
        # our recorded callback slot — O(1) where ``list.remove`` is
        # O(n) per interrupt (O(n^2) when many waiters on one event all
        # get interrupted).  Valid because callback lists are append-only
        # until the event is processed, so recorded indices never shift.
        target = self._target
        if target is not None:
            index = self._target_index
            if index == -1:
                if target._waiter is self:
                    target._waiter = None
            elif index is not None:
                callbacks = target.callbacks
                if index < len(callbacks) and callbacks[index] is self._resume_cb:
                    callbacks[index] = _tombstone
        event = Event(self.env)
        event.callbacks.append(self._resume_interrupt(cause))
        event.succeed()

    def _resume_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            if self._state != PENDING:
                return  # terminated before the interrupt was delivered
            self._step(self._throw, Interrupt(cause))

        return callback

    def _resume(self, event: Event) -> None:
        if event._ok:
            self._step(self._send, event._value)
        else:
            self._step(self._throw, event._value)

    def _step(self, advance: Callable[[Any], Any], arg: Any) -> None:
        self._target = None
        self._target_index = None
        env = self.env
        env._active_process = self
        try:
            target = advance(arg)
        except StopIteration as exc:
            env._active_process = None
            self.succeed(exc.value)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process with a failure.
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            env._note_failure(self, exc)
            return
        env._active_process = None
        if type(target) is Timeout and target._state == TRIGGERED:
            # Fast path: a pending timeout with no other waiters takes us
            # in its single-waiter slot — no callback-list churn.
            if target._waiter is None and not target.callbacks:
                target._waiter = self
                self._target_index = -1
                self._target = target
                return
        elif not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
        if target._state == PROCESSED:
            # Already happened: resume immediately at the current time.
            proxy = Event(self.env)
            proxy.callbacks.append(self._resume_cb)
            proxy.trigger(target)
            self._target_index = None
        else:
            callbacks = target.callbacks
            self._target_index = len(callbacks)
            callbacks.append(self._resume_cb)
        self._target = target


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._state == PROCESSED:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            e: e._value for e in self.events if e._state == PROCESSED and e._ok
        }


class AllOf(_Condition):
    """Fires once every component event has fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any component event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._results())


class Environment:
    """The simulation environment: a clock plus an event calendar.

    ``run(until=...)`` executes events in time order.  Use
    :meth:`process` to start coroutines, :meth:`timeout` to wait, and
    :meth:`event` for manually triggered conditions.
    """

    def __init__(self, initial_time: float = 0.0):
        # ``now`` is a plain attribute (not a property): it is read on
        # every clock sample across the whole control plane, and the
        # descriptor indirection is measurable.  Only the kernel writes it.
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._failures: deque[tuple[Process, BaseException]] = deque()
        # Free lists of processed, unreferenced events (see module docstring).
        self._timeout_pool: list[Timeout] = []
        self._init_pool: list[Initialize] = []

    # -- clock -----------------------------------------------------------
    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay!r}")
            event = pool.pop()
            event.delay = delay
            event._ok = True
            event._value = value
            event._state = TRIGGERED
            seq = self._seq = self._seq + 1
            _heappush(self._queue, (self.now + delay, 1, seq, event))
            return event
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """A timeout firing at an *absolute* simulated time.

        ``env.timeout(t - env.now)`` lands at ``now + (t - now)``, which is
        not always bit-equal to ``t`` in floating point; schedulers that must
        hit an exact precomputed instant (e.g. a polling grid) use this.
        """
        when = float(when)
        if when < self.now:
            raise ValueError(f"timeout_at({when}) lies in the past (now={self.now})")
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
            event._waiter = None
        event.delay = when - self.now
        event._ok = True
        event._value = value
        event._state = TRIGGERED
        seq = self._seq = self._seq + 1
        _heappush(self._queue, (when, 1, seq, event))
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        seq = self._seq = self._seq + 1
        _heappush(self._queue, (self.now + delay, priority, seq, event))

    def _start_process(self, process: Process) -> None:
        """Schedule the immediate event that starts a new process."""
        pool = self._init_pool
        if pool:
            event = pool.pop()
            event._ok = True
            event._state = TRIGGERED
            event._waiter = process
            seq = self._seq = self._seq + 1
            _heappush(self._queue, (self.now, 0, seq, event))
        else:
            Initialize(self, process)

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's waiter/callbacks and recycle it.

        The caller has already advanced the clock.  Mirrored inline inside
        :meth:`run` — keep the two in sync.
        """
        event._state = PROCESSED
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            if event._ok:
                waiter._step(waiter._send, event._value)
            else:
                waiter._step(waiter._throw, event._value)
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for callback in callbacks:
                callback(event)
            # A failed event with no real waiters (tombstones left by
            # interrupts don't count) propagates — silent failure would
            # corrupt experiments.
            if (
                waiter is None
                and not event._ok
                and not isinstance(event, Process)
                and all(cb is _tombstone for cb in callbacks)
            ):
                raise event._value
        elif waiter is None and not event._ok and not isinstance(event, Process):
            raise event._value
        # Recycle: only when nothing outside this frame still references
        # the event (2 == the local + getrefcount's argument).
        cls = type(event)
        if cls is Timeout:
            pool = self._timeout_pool
            if len(pool) < _POOL_CAP and _getrefcount(event) <= 2:
                event._value = None
                pool.append(event)
        elif cls is Initialize:
            pool = self._init_pool
            if len(pool) < _POOL_CAP and _getrefcount(event) <= 2:
                event._value = None
                pool.append(event)

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = _heappop(self._queue)
        if when < self.now:  # pragma: no cover - internal invariant
            raise SimulationError("event scheduled in the past")
        self.now = when
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or simulated time reaches ``until``.

        Uncaught exceptions in processes that nobody waits on propagate out
        of this call — silent failure would corrupt experiments.
        """
        limit = float("inf") if until is None else float(until)
        if limit < self.now:
            raise ValueError(f"until={limit} lies in the past (now={self.now})")
        if type(self).step is not Environment.step:
            # Subclasses (e.g. RealtimeEnvironment) hook step(); honour it.
            self._run_via_step(limit)
            return
        # The dispatch body is inlined (instead of calling self.step) —
        # this loop runs once per event and the call/attribute overhead is
        # measurable at cluster scale.  Mirror of _dispatch.
        queue = self._queue
        failures = self._failures
        timeout_pool = self._timeout_pool
        init_pool = self._init_pool
        while queue and queue[0][0] <= limit:
            when, _prio, _seq, event = _heappop(queue)
            self.now = when
            event._state = PROCESSED
            waiter = event._waiter
            if waiter is not None:
                event._waiter = None
                if event._ok:
                    waiter._step(waiter._send, event._value)
                else:
                    waiter._step(waiter._throw, event._value)
            callbacks = event.callbacks
            if callbacks:
                event.callbacks = []
                for callback in callbacks:
                    callback(event)
                if (
                    waiter is None
                    and not event._ok
                    and not isinstance(event, Process)
                    and all(cb is _tombstone for cb in callbacks)
                ):
                    raise event._value
            elif waiter is None and not event._ok and not isinstance(event, Process):
                raise event._value
            cls = type(event)
            if cls is Timeout:
                if len(timeout_pool) < _POOL_CAP and _getrefcount(event) <= 2:
                    event._value = None
                    timeout_pool.append(event)
            elif cls is Initialize:
                if len(init_pool) < _POOL_CAP and _getrefcount(event) <= 2:
                    event._value = None
                    init_pool.append(event)
            if failures:
                while failures:
                    process, exc = failures.popleft()
                    # A waited-on process delivers the exception to its
                    # waiters instead; only orphan failures propagate.
                    if not process.callbacks:
                        raise exc
        if self.now < limit and limit != float("inf"):
            self.now = limit

    def _run_via_step(self, limit: float) -> None:
        """run() body for subclasses that override step()."""
        queue = self._queue
        step = self.step
        failures = self._failures
        while queue and queue[0][0] <= limit:
            step()
            while failures:
                process, exc = failures.popleft()
                if not process.callbacks:
                    raise exc
        if self.now < limit and limit != float("inf"):
            self.now = limit

    def run_process(self, generator: Generator, until: Optional[float] = None) -> Any:
        """Start ``generator`` as a process and run until *it* completes
        (or the time limit passes), then return its value.

        Unlike :meth:`run`, this stops at the process's completion even if
        background processes keep the calendar populated indefinitely.
        """
        proc = self.process(generator)
        limit = float("inf") if until is None else float(until)
        if limit < self.now:
            raise ValueError(f"until={limit} lies in the past (now={self.now})")
        queue = self._queue
        step = self.step
        failures = self._failures
        while not proc.triggered and queue and queue[0][0] <= limit:
            step()
            while failures:
                process, exc = failures.popleft()
                if not process.callbacks:
                    raise exc
        if not proc.triggered:
            raise SimulationError("process did not finish before the time limit")
        if not proc.ok:
            raise proc.value
        return proc.value
