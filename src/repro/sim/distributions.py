"""Random-variate helpers used across the simulator.

Every distribution object is constructed around an explicit
``numpy.random.Generator`` so experiments are reproducible bit-for-bit from
a seed.  Sampling is vectorized where workloads need many variates at once
(trace generation), with scalar conveniences for per-event draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Constant",
    "Exponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Empirical",
    "ShiftedExponential",
    "lognormal_from_mean_cv",
    "make_rng",
]


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a seeded generator (PCG64); ``None`` gives an OS-seeded one."""
    return np.random.default_rng(seed)


class Distribution:
    """Base class: a non-negative random variate source."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Generic fallback; subclasses override with vectorized draws.
        return np.array([self.sample(rng) for _ in range(int(n))])

    @property
    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution — always ``value``."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(int(n), self.value)

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (classic Poisson inter-arrivals)."""

    mean_value: float

    def __post_init__(self):
        if self.mean_value <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_value}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size=int(n))

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class ShiftedExponential(Distribution):
    """``shift + Exp(mean_tail)`` — a floor latency plus exponential tail.

    This is the workhorse latency model: component latencies have a hard
    minimum (the shift) and a contention-driven tail.
    """

    shift: float
    mean_tail: float

    def __post_init__(self):
        if self.shift < 0 or self.mean_tail < 0:
            raise ValueError("shift and mean_tail must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        if self.mean_tail == 0:
            return self.shift
        return self.shift + float(rng.exponential(self.mean_tail))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.mean_tail == 0:
            return np.full(int(n), self.shift)
        return self.shift + rng.exponential(self.mean_tail, size=int(n))

    @property
    def mean(self) -> float:
        return self.shift + self.mean_tail


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by the *underlying* normal's mu/sigma."""

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=int(n))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


def lognormal_from_mean_cv(mean: float, cv: float) -> LogNormal:
    """Build a LogNormal with the requested mean and coefficient of variation.

    Serverless execution times are well described by log-normals; traces
    report mean and CV, so this inversion is used by the trace generator.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    sigma2 = float(np.log1p(cv**2))
    mu = float(np.log(mean) - sigma2 / 2.0)
    return LogNormal(mu=mu, sigma=float(np.sqrt(sigma2)))


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (heavy tail) with scale ``xm`` and shape ``alpha``."""

    xm: float
    alpha: float

    def __post_init__(self):
        if self.xm <= 0 or self.alpha <= 0:
            raise ValueError("xm and alpha must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.xm * (1.0 + rng.pareto(self.alpha)))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, size=int(n)))

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return float("inf")
        return self.xm * self.alpha / (self.alpha - 1.0)


@dataclass(frozen=True)
class Uniform(Distribution):
    low: float
    high: float

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError(f"high < low: {self.high} < {self.low}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=int(n))

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class Empirical(Distribution):
    """Samples from an empirical CDF via inverse-transform on quantiles.

    Built from observed values (e.g. a function's historical IATs).  The
    ``scale`` knob implements the paper's IAT-CDF scaling used to hit a
    target load level (Section 5.1): all variates are multiplied by it.
    """

    def __init__(self, values: Sequence[float], scale: float = 1.0):
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("empirical distribution needs at least one value")
        if np.any(arr < 0):
            raise ValueError("empirical values must be non-negative")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._sorted = np.sort(arr)
        self.scale = float(scale)

    def with_scale(self, scale: float) -> "Empirical":
        clone = Empirical.__new__(Empirical)
        clone._sorted = self._sorted
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        clone.scale = float(scale)
        return clone

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_n(rng, 1)[0])

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size=int(n))
        # Linear interpolation between order statistics.
        positions = u * (self._sorted.size - 1)
        return self.scale * np.interp(
            positions, np.arange(self._sorted.size), self._sorted
        )

    @property
    def mean(self) -> float:
        return float(self.scale * self._sorted.mean())

    @property
    def values(self) -> np.ndarray:
        """The sorted underlying sample (unscaled); a view, do not mutate."""
        return self._sorted
