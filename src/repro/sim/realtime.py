"""Wall-clock execution of the DES calendar ("live" mode).

The paper's central methodological claim is that the same control-plane
code runs in-situ (simulated) and for real.  This module provides the
other half of that claim for the Python reproduction: a
:class:`RealtimeEnvironment` executes the identical event calendar, but
synchronizes event firing to the wall clock (scaled by ``factor``), so a
demo or soak test can run against real time — and real external callers —
without changing a line of control-plane code.

Events that fall behind the wall clock are executed immediately; the
``strict`` flag turns sustained lag into an error instead, which is how a
soak test detects that the host cannot keep up.
"""

from __future__ import annotations

import time
from typing import Optional

from .core import Environment, SimulationError

__all__ = ["RealtimeEnvironment"]


class RealtimeEnvironment(Environment):
    """An Environment whose ``run`` sleeps until each event's wall time.

    ``factor`` maps simulated seconds to wall seconds (0.1 runs 10x faster
    than real time).  ``tolerance`` is the lag (in wall seconds) permitted
    before ``strict`` mode raises.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        factor: float = 1.0,
        strict: bool = False,
        tolerance: float = 0.5,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        super().__init__(initial_time)
        self.factor = float(factor)
        self.strict = strict
        self.tolerance = float(tolerance)
        self._sleep = sleep
        self._clock = clock
        self._wall_start: Optional[float] = None
        self._sim_start = self.now
        self.max_lag = 0.0

    def sync(self) -> None:
        """(Re)anchor simulated time to the wall clock."""
        self._wall_start = self._clock()
        self._sim_start = self.now

    def _wall_deadline(self, sim_time: float) -> float:
        assert self._wall_start is not None
        return self._wall_start + (sim_time - self._sim_start) * self.factor

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no more events")
        if self._wall_start is None:
            self.sync()
        event_time = self._queue[0][0]
        deadline = self._wall_deadline(event_time)
        now_wall = self._clock()
        delay = deadline - now_wall
        if delay > 0:
            self._sleep(delay)
        else:
            lag = -delay
            if lag > self.max_lag:
                self.max_lag = lag
            if self.strict and lag > self.tolerance:
                raise SimulationError(
                    f"realtime run fell {lag:.3f}s behind the wall clock "
                    f"(tolerance {self.tolerance}s)"
                )
        super().step()
