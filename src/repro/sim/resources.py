"""Shared-resource primitives built on the DES kernel.

The control plane needs three coordination shapes:

* :class:`Resource` — capacity-limited slots (the concurrency regulator,
  per-worker CPU tokens);
* :class:`Store` / :class:`PriorityStore` — producer/consumer queues (the
  invocation queue, the namespace pool);
* :class:`Gauge` — a mutable level with waiters (free-memory accounting
  in the keep-alive pool).

All of them are FIFO-fair by default; `PriorityStore` orders items by a key
so the queueing disciplines of Section 4 can be expressed as key functions.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "PriorityStore", "Gauge"]


class Request(Event):
    """A pending claim on a :class:`Resource`; use as a context token."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """Capacity-limited resource with FIFO queuing.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # holding one unit
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self._users: list[Request] = []
        self._waiting: list[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def set_capacity(self, capacity: int) -> None:
        """Grow or shrink capacity; shrinking never preempts holders."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._grant()

    def request(self) -> Request:
        req = Request(self)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiting:
            # Cancelling a never-granted request is allowed.
            self._waiting.remove(request)
        else:
            raise SimulationError("releasing a request that was never granted")
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            req = self._waiting.pop(0)
            self._users.append(req)
            req.succeed()

    def acquire(self) -> Generator:
        """Generator helper: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """Unbounded-or-bounded FIFO store of Python objects."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        return self._items

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        self._dispatch()
        if self._items and not self._getters:
            return True, self._pop_item()
        return False, None

    def _pop_item(self) -> Any:
        return self._items.pop(0)

    def _insert_item(self, item: Any) -> None:
        self._items.append(item)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                self.capacity is None or len(self._items) < self.capacity
            ):
                event, item = self._putters.pop(0)
                self._insert_item(item)
                event.succeed()
                progressed = True
            while self._getters and self._items:
                event = self._getters.pop(0)
                event.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store):
    """A store whose ``get`` returns the lowest-key item.

    The ordering key is supplied per item at ``put`` time; ties break by
    insertion order, preserving FIFO within a priority class.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list:
        return [entry[2] for entry in sorted(self._heap)]

    def put(self, item: Any, priority: Any = 0) -> Event:
        event = Event(self.env)
        self._putters.append((event, (priority, next(self._counter), item)))
        self._dispatch()
        return event

    def _insert_item(self, entry: Any) -> None:
        heapq.heappush(self._heap, entry)

    def _pop_item(self) -> Any:
        return heapq.heappop(self._heap)[2]

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and (
                self.capacity is None or len(self._heap) < self.capacity
            ):
                event, entry = self._putters.pop(0)
                self._insert_item(entry)
                event.succeed()
                progressed = True
            while self._getters and self._heap:
                event = self._getters.pop(0)
                event.succeed(self._pop_item())
                progressed = True

    def remove(self, predicate: Callable[[Any], bool]) -> list:
        """Remove and return all queued items matching ``predicate``."""
        kept, removed = [], []
        for entry in self._heap:
            (removed if predicate(entry[2]) else kept).append(entry)
        heapq.heapify(kept)
        self._heap = kept
        return [entry[2] for entry in removed]


class Gauge:
    """A bounded numeric level with blocking ``take`` semantics.

    Used for memory accounting: ``take(mb)`` blocks until that much is free,
    ``give(mb)`` returns capacity.  Waiters are served FIFO to avoid
    starvation of large requests.
    """

    def __init__(self, env: Environment, capacity: float, initial: Optional[float] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(capacity if initial is None else initial)
        if not 0 <= self._level <= self._capacity:
            raise ValueError("initial level outside [0, capacity]")
        self._waiting: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def in_use(self) -> float:
        return self._capacity - self._level

    def set_capacity(self, capacity: float) -> None:
        """Resize; the available level shifts by the capacity delta.

        Shrinking below current usage leaves a negative level, meaning no
        new takes succeed until enough is given back — mirroring how a
        cache-size reduction takes effect only as containers are evicted.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        delta = float(capacity) - self._capacity
        self._capacity = float(capacity)
        self._level += delta
        self._grant()

    def can_take(self, amount: float) -> bool:
        return amount <= self._level and not self._waiting

    def try_take(self, amount: float) -> bool:
        """Non-blocking take; only succeeds if no one is queued ahead."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self.can_take(amount):
            self._level -= amount
            return True
        return False

    def take(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self._capacity:
            raise ValueError(
                f"cannot take {amount} from a gauge of capacity {self._capacity}"
            )
        event = Event(self.env)
        self._waiting.append((event, float(amount)))
        self._grant()
        return event

    def give(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._level = min(self._level + amount, self._capacity)
        self._grant()

    def _grant(self) -> None:
        while self._waiting and self._waiting[0][1] <= self._level:
            event, amount = self._waiting.pop(0)
            self._level -= amount
            event.succeed()
