"""Opt-in observability for the simulated control plane.

The paper's worker is self-monitoring (Section 5.1): it traces every
component with spans, keeps its own metrics, and publishes periodic
status.  This package reproduces that stack for the simulator —

* :class:`TelemetrySampler` — a DES process snapshotting per-worker
  gauges (queue depth, containers, memory, cores, energy) on a simulated
  -time grid into columnar :class:`Timeseries`;
* latency histograms — recorded into each worker's
  :class:`~repro.metrics.registry.MetricsRegistry` at completion;
* span-derived overhead :mod:`~repro.telemetry.decomposition` — the
  per-phase critical-path breakdown behind the paper's Table 2;
* :mod:`~repro.telemetry.exporters` + ``repro inspect`` — JSONL/CSV/
  Prometheus artifacts and the CLI that reads them back.

Everything is opt-in: experiments pass ``--telemetry DIR`` (or set the
``REPRO_TELEMETRY`` environment variable) to construct a
:class:`Telemetry` object; without one, none of this code runs and the
control plane's behavior and timing are bit-identical.
"""

from .decomposition import (
    EXEC_SPAN,
    PHASE_OF_SPAN,
    PHASES,
    InvocationBreakdown,
    aggregate_phases,
    breakdown_rows,
    decompose,
    decompose_contexts,
    match_records,
)
from .exporters import (
    dump_timeseries_csv,
    dump_timeseries_jsonl,
    escape_label_value,
    render_health_prometheus,
    render_prometheus,
    write_health_prometheus,
    write_prometheus,
)
from .runs import (
    RUN_FILES,
    Telemetry,
    build_manifest,
    build_summary,
    inspect_report,
    load_run,
    write_run_dir,
)
from .sampler import (
    ENERGY_COLUMNS,
    WORKER_COLUMNS,
    TelemetryConfig,
    TelemetrySampler,
    Timeseries,
)

__all__ = [
    "EXEC_SPAN",
    "PHASES",
    "PHASE_OF_SPAN",
    "InvocationBreakdown",
    "aggregate_phases",
    "breakdown_rows",
    "decompose",
    "decompose_contexts",
    "match_records",
    "dump_timeseries_csv",
    "dump_timeseries_jsonl",
    "escape_label_value",
    "render_health_prometheus",
    "render_prometheus",
    "write_health_prometheus",
    "write_prometheus",
    "RUN_FILES",
    "Telemetry",
    "build_manifest",
    "build_summary",
    "inspect_report",
    "load_run",
    "write_run_dir",
    "ENERGY_COLUMNS",
    "WORKER_COLUMNS",
    "TelemetryConfig",
    "TelemetrySampler",
    "Timeseries",
    "TELEMETRY_ENV_VAR",
]

# Environment-variable fallback for the CLI's --telemetry flag.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"
