"""Overhead decomposition (the paper's Table 2, per run).

The primary source is the invocation-lifecycle pipeline itself: when
telemetry is attached, each completed
:class:`~repro.core.lifecycle.InvocationContext` carries the component
intervals of its critical path, and :func:`decompose_contexts` reads the
phase boundaries directly off those contexts.  :func:`decompose` derives
the same breakdowns by reconstructing invocations from tagged spans — the
independent cross-check ``repro inspect`` runs against exported span
streams.  Both paths feed the identical per-invocation arithmetic, so
their outputs are bit-for-bit interchangeable.

The control-plane overhead (everything that is not function code) splits
into phases:

* ``queue``       — ingestion components + time waiting in the invocation
                    queue + dispatch components;
* ``acquire``     — warm-container acquisition (lookup + lock);
* ``cold_create`` — the cold-path detour: memory admission + sandbox
                    creation (zero for warm invocations);
* ``exec_comm``   — agent communication around execution (HTTP prepare /
                    call / result download);
* ``post``        — returning the container and the results;
* ``other``       — any spans outside the canonical mapping (forward
                    compatibility; normally zero).

Pull-dispatch runs add one conditional phase, ``claim_wait`` — the time
an offer sat on the shared logical queue before a worker claimed it.
It is deliberately *not* part of :data:`PHASES`: push runs never emit
the span, their breakdowns carry exactly the canonical six keys, and
the golden fixture stays byte-stable.  Aggregations include the extra
phase only when at least one breakdown carries it.

Per invocation, the phase durations plus the queue-wait gap telescope to
exactly the recorded end-to-end time minus the execution window, so the
phase sum equals the invocation's recorded ``overhead`` up to float
rounding — asserted by :func:`match_records` and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..metrics.spans import Span

__all__ = [
    "PHASES",
    "CLAIM_WAIT_PHASE",
    "PHASE_OF_SPAN",
    "EXEC_SPAN",
    "InvocationBreakdown",
    "decompose",
    "decompose_contexts",
    "aggregate_phases",
    "breakdown_rows",
    "match_records",
]

EXEC_SPAN = "exec"

PHASES = ("queue", "acquire", "cold_create", "exec_comm", "post", "other")

# Conditional phase: present only in pull-dispatch runs (see module doc).
CLAIM_WAIT_PHASE = "claim_wait"

PHASE_OF_SPAN: dict[str, str] = {
    "claim_wait": CLAIM_WAIT_PHASE,
    "invoke": "queue",
    "sync_invoke": "queue",
    "enqueue_invocation": "queue",
    "add_item_to_q": "queue",
    "dequeue": "queue",
    "spawn_worker": "queue",
    "acquire_container": "acquire",
    "try_lock_container": "acquire",
    "cold_create": "cold_create",
    "prepare_invoke": "exec_comm",
    "http_client_create": "exec_comm",
    "call_container": "exec_comm",
    "download_result": "exec_comm",
    "return_container": "post",
    "return_results": "post",
}


@dataclass(frozen=True)
class InvocationBreakdown:
    """One invocation's critical path, phase by phase (seconds)."""

    tag: str                       # span tag == str(invocation_id)
    phases: Mapping[str, float]
    exec_time: float
    cold: bool
    start: float                   # first span start (≈ arrival)
    end: float                     # last span end (≈ completion)

    @property
    def overhead(self) -> float:
        """Control-plane time: the sum of all phases."""
        return sum(self.phases.values())

    @property
    def invocation_id(self) -> Optional[int]:
        return int(self.tag) if self.tag.isdigit() else None


def _breakdown(tag: str, intervals: Sequence[tuple]) -> Optional[InvocationBreakdown]:
    """One invocation's breakdown from ``(name, start, end)`` intervals.

    The single arithmetic both decomposition paths share: intervals must
    arrive in recording order (they do — the lifecycle appends them as the
    span recorder retains them), and the queue-wait gap is added after the
    loop, so span-derived and context-derived sums accumulate in the same
    float order and agree bit-for-bit.  ``None`` when the invocation has
    no execution window (dropped / timed out / not an invocation).
    """
    if not any(name == EXEC_SPAN for name, _start, _end in intervals):
        return None
    phases = dict.fromkeys(PHASES, 0.0)
    exec_time = 0.0
    add_item_end: Optional[float] = None
    dequeue_start: Optional[float] = None
    first_start = min(start for _name, start, _end in intervals)
    last_end = max(end for _name, _start, end in intervals)
    cold = False
    for name, start, end in intervals:
        if name == EXEC_SPAN:
            exec_time += end - start
            continue
        if name == "cold_create":
            cold = True
        phase = PHASE_OF_SPAN.get(name, "other")
        bucket = phases.get(phase)
        # Conditional phases (claim_wait) materialize on first use; the
        # canonical six accumulate in place, float-order unchanged.
        phases[phase] = (end - start) if bucket is None else bucket + (end - start)
        if name == "add_item_to_q":
            add_item_end = end
        elif name == "dequeue":
            dequeue_start = start
    if add_item_end is not None and dequeue_start is not None:
        # The only instrumentation gap on the critical path: waiting in
        # the invocation queue between insertion and dispatch.
        phases["queue"] += max(dequeue_start - add_item_end, 0.0)
    return InvocationBreakdown(
        tag=tag,
        phases=phases,
        exec_time=exec_time,
        cold=cold,
        start=first_start,
        end=last_end,
    )


_SORT_KEY = lambda b: (b.invocation_id is None, b.invocation_id, b.tag)  # noqa: E731


def decompose(spans: Iterable[Span]) -> list[InvocationBreakdown]:
    """Reconstruct per-invocation phase breakdowns from tagged spans.

    Only groups containing an execution window (i.e. invocations that ran
    to completion) are decomposable; load-balancer spans (tagged with
    fqdns), dropped and timed-out invocations are skipped.  Results are
    ordered by invocation id.
    """
    groups: dict[str, list[tuple]] = {}
    for s in spans:
        if s.tag is not None:
            groups.setdefault(s.tag, []).append((s.name, s.start, s.end))

    out: list[InvocationBreakdown] = []
    for tag, group in groups.items():
        b = _breakdown(tag, group)
        if b is not None:
            out.append(b)
    out.sort(key=_SORT_KEY)
    return out


def decompose_contexts(contexts: Iterable) -> list[InvocationBreakdown]:
    """Phase breakdowns read directly off lifecycle contexts.

    ``contexts`` are completed
    :class:`~repro.core.lifecycle.InvocationContext` objects whose
    ``intervals`` were collected (telemetry attached); each context *is*
    one invocation, so no tag-join is needed.  Contexts without an
    execution window (dropped / timed out) or without collected intervals
    are skipped.  Results are ordered by invocation id, and values are
    bit-identical to :func:`decompose` over the same run's spans.
    """
    out: list[InvocationBreakdown] = []
    for ctx in contexts:
        intervals = ctx.intervals
        if not intervals:
            continue
        tag = ctx.tag if ctx.tag is not None else str(ctx.inv.id)
        b = _breakdown(tag, intervals)
        if b is not None:
            out.append(b)
    out.sort(key=_SORT_KEY)
    return out


def _phase_names(breakdowns: Sequence[InvocationBreakdown]) -> tuple[str, ...]:
    """Canonical phases, plus ``claim_wait`` when any breakdown has it."""
    if any(CLAIM_WAIT_PHASE in b.phases for b in breakdowns):
        return PHASES + (CLAIM_WAIT_PHASE,)
    return PHASES


def aggregate_phases(breakdowns: Sequence[InvocationBreakdown]) -> dict[str, dict]:
    """Per-phase statistics over a run: mean / p99 / total / share of
    overhead (share in [0, 1])."""
    if not breakdowns:
        return {}
    names = _phase_names(breakdowns)
    totals = {
        p: np.array([b.phases.get(p, 0.0) for b in breakdowns]) for p in names
    }
    grand_total = float(sum(arr.sum() for arr in totals.values()))
    out: dict[str, dict] = {}
    for p in names:
        arr = totals[p]
        total = float(arr.sum())
        out[p] = {
            "mean": float(arr.mean()),
            "p99": float(np.percentile(arr, 99.0)),
            "total": total,
            "share": total / grand_total if grand_total > 0 else 0.0,
        }
    return out


def breakdown_rows(
    breakdowns: Sequence[InvocationBreakdown], scale: float = 1000.0
) -> list[dict]:
    """Table-2-style rows (one per phase + a total), times scaled by
    ``scale`` (default seconds → milliseconds)."""
    stats = aggregate_phases(breakdowns)
    rows = [
        {
            "phase": p,
            "mean": stats[p]["mean"] * scale,
            "p99": stats[p]["p99"] * scale,
            "share_pct": stats[p]["share"] * 100.0,
        }
        for p in PHASES + (CLAIM_WAIT_PHASE,)
        if p in stats
    ]
    if rows:
        overheads = np.array([b.overhead for b in breakdowns])
        rows.append(
            {
                "phase": "total_overhead",
                "mean": float(overheads.mean()) * scale,
                "p99": float(np.percentile(overheads, 99.0)) * scale,
                "share_pct": 100.0,
            }
        )
    return rows


def match_records(
    breakdowns: Sequence[InvocationBreakdown],
    records: Iterable,
    tolerance: float = 1e-9,
) -> tuple[int, int]:
    """Cross-check phase sums against recorded per-invocation overheads.

    ``records`` supplies objects (or dicts) with ``invocation_id`` and
    ``overhead``.  Returns ``(matched, compared)`` — a breakdown counts as
    matched when its phase sum equals the record's overhead within
    ``tolerance`` (absolute, plus 1e-9 relative slack for long runs).
    """
    by_id: dict[int, float] = {}
    for r in records:
        if isinstance(r, Mapping):
            rid, overhead = r.get("invocation_id"), r.get("overhead")
        else:
            rid, overhead = getattr(r, "invocation_id", None), getattr(r, "overhead", None)
        if rid:
            by_id[int(rid)] = float(overhead)
    matched = compared = 0
    for b in breakdowns:
        rid = b.invocation_id
        if rid is None or rid not in by_id:
            continue
        compared += 1
        expected = by_id[rid]
        if abs(b.overhead - expected) <= tolerance + 1e-9 * abs(expected):
            matched += 1
    return matched, compared
