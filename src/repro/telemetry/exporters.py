"""Exporters: timeseries → JSONL/CSV, metrics → Prometheus text format.

Ilúvatar keeps metrics in-process and exposes them on demand (Section
5.1); these writers are the on-demand part.  JSONL is the machine-readable
run artifact (one row per line, ``series`` column identifying the worker),
CSV is for spreadsheets/pandas, and the Prometheus text exposition format
makes the registry's counters, gauges and histograms scrapeable by the
standard ecosystem without any client library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Union

from ..metrics.registry import MetricsRegistry
from .sampler import Timeseries

__all__ = [
    "dump_timeseries_jsonl",
    "dump_timeseries_csv",
    "escape_label_value",
    "render_prometheus",
    "write_prometheus",
    "render_health_prometheus",
    "write_health_prometheus",
]


def dump_timeseries_jsonl(
    series: Mapping[str, Timeseries], path: Union[str, Path]
) -> int:
    """Write every series' rows as JSON lines, tagged with a ``series``
    key.  Returns the number of rows written."""
    dumps = json.dumps
    count = 0
    with open(path, "w") as fh:
        for name in sorted(series):
            for row in series[name].rows():
                fh.write(dumps({"series": name, **row}))
                fh.write("\n")
                count += 1
    return count


def dump_timeseries_csv(ts: Timeseries, path: Union[str, Path]) -> int:
    """Write one series as CSV with a header row.  Returns the row count."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(ts.columns)
        writer.writerows(zip(*(ts.column(c) for c in ts.columns)))
    return len(ts)


def _metric_name(name: str, suffix: str = "") -> str:
    """Registry name → Prometheus metric name (``repro_`` namespace,
    dots and dashes become underscores)."""
    return "repro_" + name.replace(".", "_").replace("-", "_") + suffix


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line feed are the three specials."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _help_text(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and line feed)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(metrics: MetricsRegistry, help_text: bool = True) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix, gauges are emitted as-is, and each
    histogram becomes the conventional ``_bucket{le=...}`` /  ``_sum`` /
    ``_count`` family (cumulative buckets, closing with ``le="+Inf"``).
    """
    lines: list[str] = []
    for name in sorted(metrics.counters):
        metric = _metric_name(name, "_total")
        if help_text:
            lines.append(
                f"# HELP {metric} "
                + _help_text(f"Counter {name!r} from the repro registry.")
            )
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {metrics.counters[name]}")
    for name in sorted(metrics.gauges):
        metric = _metric_name(name)
        if help_text:
            lines.append(
                f"# HELP {metric} "
                + _help_text(f"Gauge {name!r} from the repro registry.")
            )
            lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(metrics.gauges[name])}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        metric = _metric_name(name)
        if help_text:
            lines.append(
                f"# HELP {metric} "
                + _help_text(f"Histogram {name!r} from the repro registry.")
            )
            lines.append(f"# TYPE {metric} histogram")
        for bound, cum in hist.cumulative():
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    lines.append("")
    return "\n".join(lines)


def write_prometheus(
    metrics: MetricsRegistry, path: Union[str, Path], help_text: bool = True
) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_prometheus(metrics, help_text=help_text))


def _labeled(metric: str, labels: dict, value) -> str:
    pairs = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in labels.items()
    )
    return f"{metric}{{{pairs}}} {value}"


def render_health_prometheus(health: Mapping) -> str:
    """Render a ``health.json`` dict as labeled Prometheus families.

    Per-function SLO accounting and per-worker control-plane quantiles,
    with every label value escaped — function names come from trace data
    and may contain arbitrary characters.
    """
    lines: list[str] = []

    def family(metric: str, kind: str, doc: str) -> None:
        lines.append(f"# HELP {metric} {_help_text(doc)}")
        lines.append(f"# TYPE {metric} {kind}")

    totals = health.get("totals", {})
    family("repro_health_invocations_total", "counter",
           "Invocations folded into the health collector.")
    lines.append(f"repro_health_invocations_total {totals.get('total', 0)}")
    family("repro_health_alerts_total", "counter",
           "Anomaly alerts raised over the run.")
    lines.append(f"repro_health_alerts_total {totals.get('alert_count', 0)}")

    functions = health.get("functions", {})
    family("repro_health_slo_violating_windows", "gauge",
           "Windows in which the function violated its SLO target.")
    for fn in sorted(functions):
        lines.append(_labeled(
            "repro_health_slo_violating_windows", {"function": fn},
            functions[fn].get("violating_windows", 0),
        ))
    family("repro_health_worst_burn_rate", "gauge",
           "Worst trailing-window error-budget burn rate per function.")
    for fn in sorted(functions):
        lines.append(_labeled(
            "repro_health_worst_burn_rate", {"function": fn},
            _fmt(functions[fn].get("worst_burn_rate", 0.0)),
        ))
    family("repro_health_e2e_seconds", "gauge",
           "Sketch quantiles of end-to-end latency per function.")
    for fn in sorted(functions):
        e2e = functions[fn].get("e2e") or {}
        for q_label, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            value = e2e.get(key)
            if value is not None:
                lines.append(_labeled(
                    "repro_health_e2e_seconds",
                    {"function": fn, "quantile": q_label}, _fmt(value),
                ))

    workers = health.get("workers", {})
    for attr, doc in (
        ("queue", "Sketch quantiles of queue time per worker."),
        ("overhead", "Sketch quantiles of control-plane overhead per worker."),
    ):
        metric = f"repro_health_{attr}_seconds"
        family(metric, "gauge", doc)
        for worker in sorted(workers):
            summary = workers[worker].get(attr) or {}
            for q_label, key in (("0.5", "p50"), ("0.99", "p99")):
                value = summary.get(key)
                if value is not None:
                    lines.append(_labeled(
                        metric, {"worker": worker, "quantile": q_label},
                        _fmt(value),
                    ))
    lines.append("")
    return "\n".join(lines)


def write_health_prometheus(health: Mapping, path: Union[str, Path]) -> None:
    """Write :func:`render_health_prometheus` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_health_prometheus(health))
