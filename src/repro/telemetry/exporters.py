"""Exporters: timeseries → JSONL/CSV, metrics → Prometheus text format.

Ilúvatar keeps metrics in-process and exposes them on demand (Section
5.1); these writers are the on-demand part.  JSONL is the machine-readable
run artifact (one row per line, ``series`` column identifying the worker),
CSV is for spreadsheets/pandas, and the Prometheus text exposition format
makes the registry's counters, gauges and histograms scrapeable by the
standard ecosystem without any client library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Union

from ..metrics.registry import MetricsRegistry
from .sampler import Timeseries

__all__ = [
    "dump_timeseries_jsonl",
    "dump_timeseries_csv",
    "render_prometheus",
    "write_prometheus",
]


def dump_timeseries_jsonl(
    series: Mapping[str, Timeseries], path: Union[str, Path]
) -> int:
    """Write every series' rows as JSON lines, tagged with a ``series``
    key.  Returns the number of rows written."""
    dumps = json.dumps
    count = 0
    with open(path, "w") as fh:
        for name in sorted(series):
            for row in series[name].rows():
                fh.write(dumps({"series": name, **row}))
                fh.write("\n")
                count += 1
    return count


def dump_timeseries_csv(ts: Timeseries, path: Union[str, Path]) -> int:
    """Write one series as CSV with a header row.  Returns the row count."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(ts.columns)
        writer.writerows(zip(*(ts.column(c) for c in ts.columns)))
    return len(ts)


def _metric_name(name: str, suffix: str = "") -> str:
    """Registry name → Prometheus metric name (``repro_`` namespace,
    dots and dashes become underscores)."""
    return "repro_" + name.replace(".", "_").replace("-", "_") + suffix


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def render_prometheus(metrics: MetricsRegistry, help_text: bool = True) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix, gauges are emitted as-is, and each
    histogram becomes the conventional ``_bucket{le=...}`` /  ``_sum`` /
    ``_count`` family (cumulative buckets, closing with ``le="+Inf"``).
    """
    lines: list[str] = []
    for name in sorted(metrics.counters):
        metric = _metric_name(name, "_total")
        if help_text:
            lines.append(f"# HELP {metric} Counter {name!r} from the repro registry.")
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {metrics.counters[name]}")
    for name in sorted(metrics.gauges):
        metric = _metric_name(name)
        if help_text:
            lines.append(f"# HELP {metric} Gauge {name!r} from the repro registry.")
            lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(metrics.gauges[name])}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        metric = _metric_name(name)
        if help_text:
            lines.append(f"# HELP {metric} Histogram {name!r} from the repro registry.")
            lines.append(f"# TYPE {metric} histogram")
        for bound, cum in hist.cumulative():
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cum}')
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    lines.append("")
    return "\n".join(lines)


def write_prometheus(
    metrics: MetricsRegistry, path: Union[str, Path], help_text: bool = True
) -> None:
    """Write :func:`render_prometheus` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_prometheus(metrics, help_text=help_text))
