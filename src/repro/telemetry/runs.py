"""The telemetry pipeline: attach → sample → export → inspect.

:class:`Telemetry` bundles the whole observability stack behind one
opt-in object.  An experiment constructs it, attaches a worker or a
cluster *before* starting the run, and calls :meth:`export` afterwards to
produce a self-contained run directory:

=================  ====================================================
``timeseries.jsonl``  sampled gauge rows, one JSON object per line,
                      ``series`` keying the worker (plus ``lb`` for the
                      status-board load signal)
``spans.jsonl``       merged retained spans (workers + load balancer)
``records.jsonl``     per-invocation records
``metrics.prom``      Prometheus text-format snapshot of the merged
                      registries
``summary.json``      config echo, outcome tallies, latency-histogram
                      summaries and the phase decomposition
=================  ====================================================

``repro inspect <run-dir>`` (see :func:`inspect_report`) renders the
directory back into the paper-style tables.  When no ``Telemetry`` is
constructed nothing here runs — the worker hot path is byte-identical to
a build without this package.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from ..metrics.registry import InvocationRecord, MetricsRegistry, Outcome
from ..metrics.spans import Span, dump_spans_jsonl, load_spans_jsonl
from .decomposition import (
    breakdown_rows,
    decompose,
    decompose_contexts,
    match_records,
)
from .exporters import (
    dump_timeseries_jsonl,
    write_health_prometheus,
    write_prometheus,
)
from .sampler import TelemetryConfig, TelemetrySampler, Timeseries

__all__ = [
    "Telemetry",
    "RUN_FILES",
    "write_run_dir",
    "build_summary",
    "build_manifest",
    "load_run",
    "inspect_report",
]

# Canonical run-directory layout (name → filename).  The first five are
# always written; the rest only when the run produced them ("traces" when
# tracing was enabled, "flight" when the sharded coordinator recorded its
# flight log, "health"/"slo"/"health_prom" when the health layer was on,
# "live" while a health-enabled run is in flight, "manifest" whenever the
# writer supplies provenance).
RUN_FILES = {
    "timeseries": "timeseries.jsonl",
    "spans": "spans.jsonl",
    "records": "records.jsonl",
    "metrics": "metrics.prom",
    "summary": "summary.json",
    "traces": "traces.jsonl",
    "flight": "flight.json",
    "health": "health.json",
    "slo": "slo.jsonl",
    "health_prom": "health.prom",
    "live": "live.jsonl",
    "manifest": "manifest.json",
}
_CORE_FILES = ("timeseries", "spans", "records", "metrics", "summary")


def write_run_dir(
    run_dir: Union[str, Path],
    *,
    series: dict,
    spans,
    records,
    registry: MetricsRegistry,
    summary: dict,
    traces=None,
    flight: Optional[dict] = None,
    health: Optional[dict] = None,
    slo_rows=None,
    manifest: Optional[dict] = None,
) -> dict[str, Path]:
    """Write the canonical run-directory layout from already-merged parts.

    :class:`Telemetry` feeds this from one live pipeline; the cluster-shard
    merge feeds it from per-shard payloads.  Either way the directory is
    identical and ``repro inspect`` reads it back the same.  ``spans``,
    ``records``, and ``traces`` may be any single-pass iterables (each is
    walked exactly once, straight onto disk) — the cluster-shard merge
    hands over lazy k-way-merged streams.  The optional artifacts are
    written (and included in the returned paths) only when supplied, so a
    tracing-off export stays byte-identical to earlier layouts apart from
    the provenance manifest.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    paths = {k: run_dir / RUN_FILES[k] for k in _CORE_FILES}

    dump_timeseries_jsonl(series, paths["timeseries"])
    dump_spans_jsonl(spans, paths["spans"])

    with open(paths["records"], "w") as fh:
        for r in records:
            fh.write(json.dumps({
                "function": r.function,
                "arrival": r.arrival,
                "outcome": r.outcome.value,
                "exec_time": r.exec_time,
                "e2e_time": r.e2e_time,
                "queue_time": r.queue_time,
                "overhead": r.overhead,
                "cold": r.cold,
                "worker": r.worker,
                "invocation_id": r.invocation_id,
            }))
            fh.write("\n")

    write_prometheus(registry, paths["metrics"])

    with open(paths["summary"], "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")

    if traces is not None:
        from ..tracing.events import dump_trace_jsonl

        paths["traces"] = run_dir / RUN_FILES["traces"]
        dump_trace_jsonl(traces, paths["traces"])
    if flight is not None:
        paths["flight"] = run_dir / RUN_FILES["flight"]
        with open(paths["flight"], "w") as fh:
            json.dump(flight, fh, indent=2)
            fh.write("\n")
    if health is not None:
        paths["health"] = run_dir / RUN_FILES["health"]
        with open(paths["health"], "w") as fh:
            json.dump(health, fh, indent=2)
            fh.write("\n")
        paths["slo"] = run_dir / RUN_FILES["slo"]
        with open(paths["slo"], "w") as fh:
            for row in (slo_rows or ()):
                fh.write(json.dumps(row, separators=(",", ":")))
                fh.write("\n")
        paths["health_prom"] = run_dir / RUN_FILES["health_prom"]
        write_health_prometheus(health, paths["health_prom"])
    if manifest is not None:
        paths["manifest"] = run_dir / RUN_FILES["manifest"]
        with open(paths["manifest"], "w") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")
    return paths


def build_summary(
    config: TelemetryConfig,
    worker_names: list,
    samples: int,
    records: list,
    merged: MetricsRegistry,
    breakdowns: list,
    dispatch: Optional[dict] = None,
) -> dict:
    """The ``summary.json`` structure from already-merged run parts."""
    outcomes: dict[str, int] = {}
    for r in records:
        outcomes[r.outcome.value] = outcomes.get(r.outcome.value, 0) + 1
    matched, compared = match_records(breakdowns, records)
    cfg = {
        "interval": config.interval,
        "sample_energy": config.sample_energy,
        "keep_spans": config.keep_spans,
        "histograms": config.histograms,
    }
    # Only present when enabled, so a health-off summary.json stays
    # byte-identical to exports from before the health layer existed.
    health = getattr(config, "health", None)
    if health is not None:
        cfg["health"] = health.describe()
    out = {
        "config": cfg,
        "workers": list(worker_names),
        "samples": samples,
        "invocations": len(records),
        "outcomes": outcomes,
        "histograms": {
            name: merged.histograms[name].summary()
            for name in sorted(merged.histograms)
        },
        "decomposition": {
            "invocations": len(breakdowns),
            "matched_records": matched,
            "compared_records": compared,
            "rows": breakdown_rows(breakdowns),
        },
    }
    # Only present for cluster runs (the telemetry pipeline learned the
    # active policy from attach_cluster); worker-only runs and run dirs
    # from before the dispatch layer simply lack the key.
    if dispatch is not None:
        out["dispatch"] = dict(dispatch)
    return out


def build_manifest(
    config: TelemetryConfig,
    worker_names: list,
    shards: int = 1,
) -> dict:
    """The ``manifest.json`` provenance record for a run directory.

    Deliberately free of wall-clock timestamps: two runs of the same
    configuration produce the same manifest (``shards`` aside), so the
    serial-vs-sharded byte-identity gates only have to exclude this one
    file — and can still assert ``config_hash`` equality across it.
    """
    cfg = {
        "interval": config.interval,
        "sample_energy": config.sample_energy,
        "keep_spans": config.keep_spans,
        "histograms": config.histograms,
        "trace": getattr(config, "trace", False),
    }
    health = getattr(config, "health", None)
    if health is not None:
        cfg["health"] = health.describe()
    payload = json.dumps({"config": cfg, "workers": list(worker_names)},
                         sort_keys=True)
    from .. import __version__

    return {
        "schema": 1,
        "version": __version__,
        "config_hash": hashlib.sha256(payload.encode()).hexdigest()[:16],
        "config": cfg,
        "workers": list(worker_names),
        "shards": int(shards),
        "cpu_count": os.cpu_count() or 1,
    }


class Telemetry:
    """One run's telemetry: sampler + span retention + latency histograms.

    Attach targets before ``start()``; attaching flips the retained-span
    and histogram switches on the target's existing recorder/registry, so
    the instrumentation already woven through the worker starts keeping
    data — no new callbacks enter the invocation path.
    """

    def __init__(self, env, config: Optional[TelemetryConfig] = None):
        self.env = env
        self.config = config or TelemetryConfig()
        self.sampler = TelemetrySampler(
            env,
            interval=self.config.interval,
            sample_energy=self.config.sample_energy,
        )
        self._workers: list = []
        self._extra_recorders: list = []  # LB span recorders, merged on export
        self.tracer = None
        if self.config.trace:
            # Deferred: the tracing package only loads when a run opts in.
            from ..tracing import TraceCollector

            self.tracer = TraceCollector()
        self.health = None
        if self.config.health is not None:
            self.health = self.config.health.collector()
        # Active dispatch policy description; set by attach_cluster
        # (worker-only pipelines have no placement layer to describe).
        self.dispatch_info = None
        self._live_writer = None
        self._live_running = False

    # -- wiring ------------------------------------------------------------
    def attach_worker(self, worker) -> None:
        self.sampler.attach_worker(worker)
        if self.config.keep_spans:
            worker.spans.keep_spans = True
            # Retain completed lifecycle contexts: the decomposition reads
            # phase boundaries directly off them (spans stay the
            # independent cross-check `repro inspect` recomputes from).
            lifecycle = getattr(worker, "lifecycle", None)
            if lifecycle is not None:
                lifecycle.keep_contexts = True
        if self.config.histograms:
            worker.metrics.enable_latency_histograms()
        if self.tracer is not None:
            self.tracer.attach_worker(worker)
        if self.health is not None:
            worker.metrics.record_sink = self.health.observe_record
        self._workers.append(worker)

    def attach_cluster(self, cluster) -> None:
        for worker in cluster.workers.values():
            self.attach_worker(worker)
        if self.config.keep_spans:
            cluster.spans.keep_spans = True
            self._extra_recorders.append(cluster.spans)
        if self.tracer is not None:
            # The cluster reports its pick/rpc spans into the collector;
            # worker stage chains hang under whichever LB span is last.
            cluster.tracer = self.tracer
            self.tracer.root = (
                "lb_rpc" if cluster.rpc_latency > 0 else "lb_pick"
            )
        # Record the load values the balancer actually acted on.
        cluster.status_board.publish = self.sampler.record_lb_load
        info = getattr(cluster, "dispatch_info", None)
        if info is not None:
            self.dispatch_info = info()

    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        self.sampler.stop()
        self._live_running = False

    # -- live heartbeat ----------------------------------------------------
    def enable_live(self, path) -> None:
        """Stream windowed health snapshots to ``path`` (JSON lines) while
        the run executes — the feed ``repro watch`` tails.  Requires
        health to be enabled; probes are read-only, so the heartbeat
        process cannot perturb the schedule."""
        if self.health is None:
            raise RuntimeError(
                "live heartbeats need health enabled: TelemetryConfig(health=...)"
            )
        if self._live_writer is not None:
            raise RuntimeError("live heartbeat already enabled")
        from ..health.live import LiveWriter

        self._live_writer = LiveWriter(path)
        self._live_running = True
        self.env.process(self._live_loop(), name="health-live-heartbeat")

    def _live_snapshot(self) -> dict:
        totals = self.health.totals()
        queue_depth = sum(len(w.queue) for w in self._workers)
        running = sum(w.load.running for w in self._workers)
        indices = sorted(self.health.overall.sketches)
        p99 = None
        if indices:
            value = self.health.overall.sketches[indices[-1]].quantile(99.0)
            p99 = value if value == value else None
        return {
            "t": self.env.now,
            "engine": "serial",
            **totals,
            "queue_depth": queue_depth,
            "running": running,
            "e2e_p99": p99,
        }

    def _live_loop(self):
        interval = self.config.health.heartbeat_interval()
        writer = self._live_writer
        while self._live_running:
            yield self.env.timeout(interval)
            writer.heartbeat(self._live_snapshot())

    def _finish_live(self) -> None:
        if self._live_writer is None:
            return
        self._live_running = False
        final = self._live_snapshot()
        final["done"] = True
        self._live_writer.heartbeat(final)
        self._live_writer.close()
        self._live_writer = None

    # -- views -------------------------------------------------------------
    @property
    def series(self) -> dict[str, Timeseries]:
        return self.sampler.series

    def spans(self) -> list[Span]:
        """All retained spans across workers and the LB, in start order."""
        out: list[Span] = []
        for w in self._workers:
            out.extend(w.spans.spans())
        for rec in self._extra_recorders:
            out.extend(rec.spans())
        out.sort(key=lambda s: (s.start, s.end, s.name))
        return out

    def records(self) -> list[InvocationRecord]:
        out: list[InvocationRecord] = []
        for w in self._workers:
            out.extend(w.metrics.records)
        out.sort(key=lambda r: (r.arrival, r.invocation_id))
        return out

    def breakdowns(self):
        """Per-invocation phase breakdowns, read off lifecycle contexts.

        Falls back to span-tag reconstruction when any attached worker has
        no lifecycle context store (or retention was never enabled), so
        the result is the same either way — bit-identical, in fact, which
        :meth:`breakdowns_from_spans` lets callers assert.
        """
        contexts: list = []
        for w in self._workers:
            lifecycle = getattr(w, "lifecycle", None)
            if lifecycle is None or not lifecycle.keep_contexts:
                return self.breakdowns_from_spans()
            contexts.extend(lifecycle.contexts)
        return decompose_contexts(contexts)

    def breakdowns_from_spans(self):
        """The span-tag reconstruction of :meth:`breakdowns` (cross-check)."""
        return decompose(self.spans())

    def trace_events(self) -> list:
        """Collected causal trace events in ``(trace_id, seq)`` order;
        empty unless ``config.trace`` enabled the collector."""
        if self.tracer is None:
            return []
        return self.tracer.trace_events()

    def merged_metrics(self) -> MetricsRegistry:
        """Counters summed, histograms merged, gauges worker-prefixed."""
        merged = MetricsRegistry()
        for w in self._workers:
            m = w.metrics
            for name, v in m.counters.items():
                merged.incr(name, v)
            for name, v in m.gauges.items():
                merged.set_gauge(f"{w.name}.{name}", v)
            for name, hist in m.histograms.items():
                target = merged.histograms.get(name)
                if target is None:
                    # Clone the first worker's shape so merge() accepts the
                    # rest (all workers share the default shape anyway).
                    merged.histograms[name] = copy.deepcopy(hist)
                else:
                    target.merge(hist)
        return merged

    # -- export ------------------------------------------------------------
    def export(self, run_dir: Union[str, Path]) -> dict[str, Path]:
        """Write the run directory; returns {kind: path}."""
        self._finish_live()
        series = dict(self.sampler.series)
        if len(self.sampler.lb_loads):
            series["lb"] = self.sampler.lb_loads
        health = slo_rows = None
        if self.health is not None:
            from ..health.slo import evaluate_health

            report = evaluate_health(
                self.health, series=series, config=self.config.health
            )
            health, slo_rows = report.health, report.rows
        return write_run_dir(
            run_dir,
            series=series,
            spans=self.spans(),
            records=self.records(),
            registry=self.merged_metrics(),
            summary=self.summary(),
            traces=self.trace_events() if self.tracer is not None else None,
            health=health,
            slo_rows=slo_rows,
            manifest=build_manifest(
                self.config, [w.name for w in self._workers]
            ),
        )

    def summary(self) -> dict:
        return build_summary(
            self.config,
            [w.name for w in self._workers],
            self.sampler.samples,
            self.records(),
            self.merged_metrics(),
            self.breakdowns(),
            dispatch=self.dispatch_info,
        )


# ---------------------------------------------------------------- inspect
def load_run(run_dir: Union[str, Path]) -> dict:
    """Read a telemetry run directory back into memory.

    Returns ``{"summary", "records", "spans", "timeseries", "metrics_text",
    "manifest", "flight", "traces", "health", "slo"}`` with missing files
    mapped to empty values, so partially exported directories still
    inspect cleanly.
    """
    run_dir = Path(run_dir)
    out: dict = {
        "summary": {},
        "records": [],
        "spans": [],
        "timeseries": [],
        "metrics_text": "",
        "manifest": {},
        "flight": {},
        "traces": [],
        "health": {},
        "slo": [],
    }
    health_path = run_dir / RUN_FILES["health"]
    if health_path.exists():
        out["health"] = json.loads(health_path.read_text())
    slo_path = run_dir / RUN_FILES["slo"]
    if slo_path.exists():
        with open(slo_path) as fh:
            out["slo"] = [json.loads(line) for line in fh if line.strip()]
    summary_path = run_dir / RUN_FILES["summary"]
    if summary_path.exists():
        out["summary"] = json.loads(summary_path.read_text())
    records_path = run_dir / RUN_FILES["records"]
    if records_path.exists():
        with open(records_path) as fh:
            out["records"] = [json.loads(line) for line in fh if line.strip()]
    spans_path = run_dir / RUN_FILES["spans"]
    if spans_path.exists():
        out["spans"] = load_spans_jsonl(spans_path)
    ts_path = run_dir / RUN_FILES["timeseries"]
    if ts_path.exists():
        with open(ts_path) as fh:
            out["timeseries"] = [json.loads(line) for line in fh if line.strip()]
    prom_path = run_dir / RUN_FILES["metrics"]
    if prom_path.exists():
        out["metrics_text"] = prom_path.read_text()
    manifest_path = run_dir / RUN_FILES["manifest"]
    if manifest_path.exists():
        out["manifest"] = json.loads(manifest_path.read_text())
    flight_path = run_dir / RUN_FILES["flight"]
    if flight_path.exists():
        out["flight"] = json.loads(flight_path.read_text())
    traces_path = run_dir / RUN_FILES["traces"]
    if traces_path.exists():
        from ..tracing.events import load_trace_jsonl

        out["traces"] = load_trace_jsonl(traces_path)
    return out


def _table(rows: list[dict], columns: list[tuple[str, str]]) -> list[str]:
    """Minimal fixed-width text table: columns = [(key, header), ...]."""
    def fmt(v):
        return f"{v:.3f}" if isinstance(v, float) else str(v)

    widths = {
        key: max(len(header), *(len(fmt(r.get(key, ""))) for r in rows))
        for key, header in columns
    } if rows else {key: len(header) for key, header in columns}
    header = "  ".join(h.ljust(widths[k]) for k, h in columns)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(fmt(r.get(k, "")).ljust(widths[k]) for k, _ in columns))
    return lines


def inspect_report(run_dir: Union[str, Path]) -> str:
    """Render a telemetry run directory as a human-readable report:
    run overview, outcome tallies, latency percentiles, the Table-2-style
    overhead decomposition, and a timeseries digest."""
    run_dir = Path(run_dir)
    data = load_run(run_dir)
    summary = data["summary"]
    lines: list[str] = [f"telemetry run: {run_dir}", ""]

    manifest = data["manifest"]
    if manifest:
        lines.append(
            f"manifest: version={manifest.get('version')}  "
            f"config_hash={manifest.get('config_hash')}  "
            f"shards={manifest.get('shards')}  "
            f"cpu_count={manifest.get('cpu_count')}"
        )
        lines.append("")

    if summary:
        cfg = summary.get("config", {})
        lines.append(
            f"interval={cfg.get('interval')}s  samples={summary.get('samples')}  "
            f"workers={len(summary.get('workers', []))}  "
            f"invocations={summary.get('invocations')}"
        )
        outcomes = summary.get("outcomes", {})
        if outcomes:
            tally = "  ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
            lines.append(f"outcomes: {tally}")
        lines.append("")

        hists = summary.get("histograms", {})
        if hists:
            lines.append("latency distributions (seconds):")
            rows = [
                {"metric": name, **{k: s[k] for k in ("count", "mean", "p50", "p90", "p99")}}
                for name, s in sorted(hists.items())
            ]
            lines.extend(_table(rows, [
                ("metric", "metric"), ("count", "count"), ("mean", "mean"),
                ("p50", "p50"), ("p90", "p90"), ("p99", "p99"),
            ]))
            lines.append("")

    # Dispatch section: silently absent for run dirs that predate the
    # dispatch layer or never attached a cluster (worker-only pipelines).
    dispatch = (summary or {}).get("dispatch")
    if dispatch:
        line = (
            f"dispatch: policy={dispatch.get('policy')}  "
            f"kind={dispatch.get('kind')}"
        )
        if "claim_latency" in dispatch:
            line += f"  claim_latency={dispatch['claim_latency']}s"
        lines.append(line)
        claim = (summary or {}).get("histograms", {}).get("claim_wait_seconds")
        if claim:
            lines.append(
                "claim wait (seconds): "
                f"count={claim.get('count')}  mean={claim.get('mean'):.6f}  "
                f"p50={claim.get('p50'):.6f}  p99={claim.get('p99'):.6f}"
            )
        lines.append("")

    # Recompute the decomposition from the spans on disk so inspect works
    # even on directories whose summary predates this report format.
    breakdowns = decompose(data["spans"])
    if breakdowns:
        matched, compared = match_records(breakdowns, data["records"])
        lines.append(
            f"overhead decomposition ({len(breakdowns)} invocations; "
            f"phase sums match {matched}/{compared} records):"
        )
        lines.extend(_table(breakdown_rows(breakdowns), [
            ("phase", "phase"), ("mean", "mean_ms"),
            ("p99", "p99_ms"), ("share_pct", "share_%"),
        ]))
        lines.append("")

    flight = data["flight"]
    if flight:
        seam = flight.get("seam_stats") or {}
        totals = flight.get("totals") or {}
        if seam:
            lines.append(
                "sharded seam: "
                f"epochs={seam.get('epochs')}  "
                f"sync_points={seam.get('sync_points')}  "
                f"messages_per_shard={seam.get('messages_per_shard')}  "
                f"chunk_size={seam.get('chunk_size')}"
            )
        if totals:
            eff = totals.get("overlap_efficiency", 0.0)
            lines.append(
                "flight recorder: "
                f"stall={totals.get('stall_s', 0.0):.3f}s  "
                f"overlap={totals.get('overlap_s', 0.0):.3f}s "
                f"(efficiency {100.0 * eff:.1f}%)  "
                f"payload={totals.get('payload_bytes', 0) / 1e6:.2f}MB  "
                f"merge={totals.get('merge_s', 0.0):.3f}s  "
                f"wall={totals.get('wall_s', 0.0):.3f}s"
            )
        lines.append("")

    traces = data["traces"]
    if traces:
        ids = {e.trace_id for e in traces}
        lines.append(
            f"causal traces: {len(traces)} events over {len(ids)} "
            f"invocations (render with `repro trace {run_dir}`)"
        )
        lines.append("")

    from ..health.report import health_section

    lines.extend(health_section(run_dir))
    if data["health"]:
        lines.append(f"  (full report: `repro health {run_dir}`)")
    lines.append("")

    ts = data["timeseries"]
    if ts:
        per_series: dict[str, int] = {}
        for row in ts:
            per_series[row.get("series", "?")] = per_series.get(row.get("series", "?"), 0) + 1
        digest = "  ".join(f"{k}:{v}" for k, v in sorted(per_series.items()))
        lines.append(f"timeseries rows: {len(ts)}  ({digest})")
        worker_rows = [r for r in ts if "queue_depth" in r]
        if worker_rows:
            depth = [r["queue_depth"] for r in worker_rows]
            running = [r["running"] for r in worker_rows]
            lines.append(
                f"mean queue depth {sum(depth) / len(depth):.3f}, "
                f"mean running {sum(running) / len(running):.3f}, "
                f"peak queue depth {max(depth)}"
            )
    if not (summary or breakdowns or ts):
        lines.append("(no telemetry artifacts found)")
    return "\n".join(lines).rstrip() + "\n"
