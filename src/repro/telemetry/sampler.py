"""Sim-time telemetry sampling: periodic gauge snapshots into timeseries.

Ilúvatar's worker monitors itself — queue depth, container counts, memory,
energy — and publishes periodic status snapshots that feed the load
balancer and the paper's overhead/energy plots (Section 5.1, §6).  The
:class:`TelemetrySampler` is that loop for the simulated control plane: a
DES process that wakes on a fixed simulated-time grid and appends one row
per worker to an in-memory columnar :class:`Timeseries`.

Observation must not perturb the schedule.  Every probe is read-only
(point-in-time gauge reads, no RNG, no state mutation), so a run with the
sampler attached produces bit-identical invocation records to one without
— pinned by ``tests/test_telemetry_determinism.py``.  When telemetry is
not attached, no sampler process exists and the worker's hot path is
untouched: a true no-op, per the paper's "tracing must cost nothing when
off" design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterator, Optional, Sequence

__all__ = [
    "TelemetryConfig",
    "Timeseries",
    "TelemetrySampler",
    "WORKER_COLUMNS",
    "ENERGY_COLUMNS",
]

# Per-worker gauges snapshotted every tick.
WORKER_COLUMNS = (
    "t",
    "queue_depth",
    "running",
    "warm_containers",
    "in_use_containers",
    "memory_used_mb",
    "busy_cores",
)
# Appended when energy sampling is enabled (default-off).
ENERGY_COLUMNS = ("power_w", "energy_j")


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the telemetry pipeline (everything here is opt-in: the
    pipeline itself only exists when an experiment constructs it)."""

    interval: float = 1.0          # sampling period, simulated seconds
    sample_energy: bool = False    # add power/energy columns (default-off)
    keep_spans: bool = True        # retain spans for the decomposition
    histograms: bool = True        # e2e/queue/overhead latency histograms
    trace: bool = False            # collect causal trace trees (repro.tracing)
    # Streaming health/SLO layer (repro.health): None/False = off,
    # True = defaults, or a repro.health.HealthConfig.  Normalized to a
    # HealthConfig (or None) at construction.
    health: Optional[object] = None

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.health is not None:
            from ..health.slo import normalize_health

            object.__setattr__(self, "health", normalize_health(self.health))


class Timeseries:
    """A columnar in-memory timeseries: named parallel lists.

    Columns are fixed at construction; :meth:`append` takes one value per
    column.  Column storage keeps the per-sample cost to N list appends
    and lets reductions run vectorized afterwards.
    """

    __slots__ = ("columns", "_data")

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("a timeseries needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names: {columns}")
        self.columns = tuple(columns)
        self._data: dict[str, list] = {c: [] for c in self.columns}

    def append(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values ({self.columns}), "
                f"got {len(values)}"
            )
        data = self._data
        for c, v in zip(self.columns, values):
            data[c].append(v)

    def column(self, name: str) -> list:
        return self._data[name]

    def __len__(self) -> int:
        return len(self._data[self.columns[0]])

    def rows(self) -> Iterator[dict]:
        """Row-oriented view (for JSONL export and tests)."""
        cols = self.columns
        data = [self._data[c] for c in cols]
        for values in zip(*data):
            yield dict(zip(cols, values))


class TelemetrySampler:
    """Periodic sampler of attached workers, driven by the DES kernel.

    ``attach_worker`` builds a read-only probe closure over the worker's
    gauges; ``start`` launches the sampling process.  All probes fire at
    the same instants, so rows across workers share timestamps.
    """

    def __init__(self, env, interval: float = 1.0, sample_energy: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = float(interval)
        self.sample_energy = bool(sample_energy)
        self.series: dict[str, Timeseries] = {}
        # Load values the status board published to the balancer (staleness
        # -aware LB signal), kept separately from the gauge grid.
        self.lb_loads = Timeseries(("t", "worker", "load"))
        self._probes: list[Callable[[], None]] = []
        self._running = False
        self.samples = 0

    # -- wiring ------------------------------------------------------------
    def attach_worker(self, worker) -> Timeseries:
        """Register a worker; returns its (initially empty) timeseries."""
        name = worker.name
        if name in self.series:
            raise ValueError(f"worker {name!r} already attached")
        columns = WORKER_COLUMNS + (ENERGY_COLUMNS if self.sample_energy else ())
        ts = self.series[name] = Timeseries(columns)
        env = self.env
        queue = worker.queue
        load = worker.load
        pool = worker.pool
        memory = worker.memory
        energy = worker.energy

        if self.sample_energy:
            def probe() -> None:
                now = env.now
                ts.append(
                    now,
                    len(queue),
                    load.running,
                    pool.available_count(),
                    pool.in_use_count(),
                    memory.in_use,
                    load.busy_cores,
                    energy.power,
                    energy.joules_at(now),
                )
        else:
            def probe() -> None:
                ts.append(
                    env.now,
                    len(queue),
                    load.running,
                    pool.available_count(),
                    pool.in_use_count(),
                    memory.in_use,
                    load.busy_cores,
                )
        self._probes.append(probe)
        return ts

    def record_lb_load(self, worker: str, t: float, value: float) -> None:
        """StatusBoard publish hook: one balancer-visible load reading."""
        self.lb_loads.append(t, worker, value)

    # -- sampling ----------------------------------------------------------
    def sample_once(self) -> None:
        """Snapshot every attached worker at the current simulated time."""
        for probe in self._probes:
            probe()
        self.samples += 1

    def _run(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.interval)
            self.sample_once()

    def start(self) -> None:
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self.env.process(self._run(), name="telemetry-sampler")

    def stop(self) -> None:
        self._running = False
