"""Workload traces: synthetic Azure-like generation, sampling, replay."""

from .analysis import (
    iat_percentiles,
    invocations_per_minute,
    invocations_per_second,
    popularity_skew,
    trace_table,
)
from .azure import AzureDataset, AzureTraceConfig, generate_dataset
from .model import Trace, TraceFunction
from .replay import expand_dataset, expand_minute_bucket
from .sampling import (
    sample_random,
    sample_rare,
    sample_representative,
    standard_samples,
)
from .scaling import expected_concurrency, little_load, scale_to_load, scale_trace_iats

__all__ = [
    "iat_percentiles",
    "invocations_per_minute",
    "invocations_per_second",
    "popularity_skew",
    "trace_table",
    "AzureDataset",
    "AzureTraceConfig",
    "generate_dataset",
    "Trace",
    "TraceFunction",
    "expand_dataset",
    "expand_minute_bucket",
    "sample_random",
    "sample_rare",
    "sample_representative",
    "standard_samples",
    "expected_concurrency",
    "little_load",
    "scale_to_load",
    "scale_trace_iats",
]
