"""Trace analysis helpers: the appendix timeseries and skew diagnostics."""

from __future__ import annotations

import numpy as np

from ..metrics.stats import bin_timeseries
from .model import Trace

__all__ = [
    "invocations_per_second",
    "invocations_per_minute",
    "popularity_skew",
    "iat_percentiles",
    "trace_table",
]


def invocations_per_second(trace: Trace) -> np.ndarray:
    """The appendix figures' series: invocations per one-second bin."""
    return bin_timeseries(trace.timestamps, max(trace.duration, 1.0), 1.0)


def invocations_per_minute(trace: Trace) -> np.ndarray:
    return bin_timeseries(trace.timestamps, max(trace.duration, 60.0), 60.0)


def popularity_skew(trace: Trace, top_fraction: float = 0.01) -> float:
    """Fraction of invocations produced by the top ``top_fraction`` of
    functions (Azure: ~1% of functions ≈ 90% of invocations)."""
    if not 0 < top_fraction <= 1:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    counts = np.sort(trace.invocation_counts())[::-1]
    if counts.sum() == 0:
        return float("nan")
    k = max(1, int(np.ceil(top_fraction * counts.size)))
    return float(counts[:k].sum() / counts.sum())


def iat_percentiles(trace: Trace, qs=(50.0, 95.0)) -> dict[float, float]:
    """Percentiles of *per-function mean* inter-arrival times (seconds)."""
    means = []
    for i in range(len(trace.functions)):
        ts = trace.timestamps[trace.function_idx == i]
        if ts.size >= 2:
            means.append(float(np.diff(ts).mean()))
    if not means:
        return {q: float("nan") for q in qs}
    arr = np.asarray(means)
    return {q: float(np.percentile(arr, q)) for q in qs}


def trace_table(traces) -> list[dict]:
    """Paper Table 3: one stats row per trace."""
    return [t.stats_row() for t in traces]
