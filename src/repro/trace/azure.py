"""Synthetic Azure-Functions-like dataset generator.

The paper evaluates keep-alive on samples of the 2019 Azure Functions
trace, which we cannot redistribute; this module generates a dataset with
the statistical properties the paper's results depend on:

* extreme popularity skew — a tiny fraction of functions produce the vast
  majority of invocations (Azure: ~1% of functions ≈ 90% of invocations),
  while over half of all functions have inter-arrival times beyond 30
  minutes (guaranteed cold under a 10-minute TTL);
* minute-bucket invocation counts over a day, with a diurnal wave;
* app-level memory allocations split evenly across an app's functions;
* heterogeneous execution times (seconds scale, log-normal) with the
  cold-start overhead estimated as ``maximum - average`` runtime.

The output is an :class:`AzureDataset` of per-function minute buckets;
:func:`expand_dataset` (in :mod:`repro.trace.replay`) turns buckets into
timestamps using the paper's injection rule (single invocation at the
start of the minute, multiple invocations equally spaced).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cache import CacheLike, cache_key, resolve_cache
from ..sim.distributions import make_rng

__all__ = ["AzureTraceConfig", "AzureDataset", "generate_dataset"]

MINUTES_PER_DAY = 1440
SECONDS_PER_MINUTE = 60.0

# Bump when the generation algorithm changes: invalidates cached datasets.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs for the synthetic dataset.

    Defaults produce a dataset whose *samples* behave like the paper's
    (Table 3): a heavy-hitting head, a long cold tail, diurnal load.
    """

    num_functions: int = 4000
    duration_minutes: int = MINUTES_PER_DAY
    # Popularity: per-function mean requests/minute ~ exp(Normal(mu, sigma)).
    # A wide sigma yields the Azure-like skew across ~6 orders of magnitude.
    rate_log_mu: float = -4.0
    rate_log_sigma: float = 2.8
    max_rate_per_minute: float = 2000.0
    # Diurnal modulation of all rates (fraction of the mean).
    diurnal_amplitude: float = 0.35
    diurnal_phase_minutes: float = 480.0  # trough at 8h before peak
    # Applications: memory is allocated at app level, split across functions.
    functions_per_app_mean: float = 2.0
    app_memory_log_mu: float = 5.6   # exp(5.6) ≈ 270 MB
    app_memory_log_sigma: float = 0.9
    min_function_memory_mb: float = 16.0
    max_function_memory_mb: float = 4096.0
    # Execution times: avg runtime lognormal; max = avg * (1 + overhead).
    runtime_log_mu: float = -0.7     # exp(-0.7) ≈ 0.5 s median
    runtime_log_sigma: float = 1.4
    min_runtime: float = 0.01
    max_runtime: float = 120.0
    # Initialization overhead factor: init = factor * avg, factor lognormal.
    init_factor_log_mu: float = 0.3  # median ≈ 1.35x of avg runtime
    init_factor_log_sigma: float = 0.8
    max_init_cost: float = 30.0
    seed: int = 0xFAA5

    def __post_init__(self):
        if self.num_functions < 1:
            raise ValueError("num_functions must be >= 1")
        if self.duration_minutes < 1:
            raise ValueError("duration_minutes must be >= 1")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


@dataclass
class AzureDataset:
    """Per-function minute-bucket counts plus profiles.

    ``counts`` is a dict mapping function index -> (minute_indices, counts)
    sparse pairs; dense 2-D storage would be ~num_functions x 1440 and is
    avoided deliberately.
    """

    config: AzureTraceConfig
    names: list[str]
    apps: list[str]
    memory_mb: np.ndarray        # per function
    avg_runtime: np.ndarray      # seconds
    max_runtime: np.ndarray      # seconds
    counts: dict[int, tuple[np.ndarray, np.ndarray]] = field(repr=False, default_factory=dict)

    @property
    def num_functions(self) -> int:
        return len(self.names)

    @property
    def duration_seconds(self) -> float:
        return self.config.duration_minutes * SECONDS_PER_MINUTE

    def total_invocations(self, fn: Optional[int] = None) -> int:
        if fn is not None:
            pair = self.counts.get(fn)
            return int(pair[1].sum()) if pair else 0
        return sum(int(pair[1].sum()) for pair in self.counts.values())

    def invocations_per_function(self) -> np.ndarray:
        out = np.zeros(self.num_functions, dtype=np.int64)
        for fn, (_minutes, counts) in self.counts.items():
            out[fn] = counts.sum()
        return out

    def init_cost(self) -> np.ndarray:
        """Cold-start overhead estimate: max - average runtime (paper rule)."""
        return self.max_runtime - self.avg_runtime

    def fingerprint(self) -> str:
        """Content digest of the dataset, used to key derived artifacts.

        Hashes the actual array contents (not just the config) so derived
        caches stay correct even for hand-built or mutated datasets.
        """
        h = hashlib.sha256()
        h.update(repr((GENERATOR_VERSION, self.config)).encode("utf-8"))
        h.update(repr(self.names[:4] + self.apps[:4]).encode("utf-8"))
        h.update(np.ascontiguousarray(self.memory_mb).tobytes())
        h.update(np.ascontiguousarray(self.avg_runtime).tobytes())
        h.update(np.ascontiguousarray(self.max_runtime).tobytes())
        for fn in sorted(self.counts):
            minutes, counts = self.counts[fn]
            h.update(str(fn).encode("ascii"))
            h.update(np.ascontiguousarray(minutes).tobytes())
            h.update(np.ascontiguousarray(counts).tobytes())
        return h.hexdigest()


def generate_dataset(
    config: Optional[AzureTraceConfig] = None, cache: CacheLike = None
) -> AzureDataset:
    """Generate a synthetic day of Azure-like function invocations.

    ``cache`` (an :class:`~repro.cache.ArtifactCache`, a directory path, or
    the ambient ``$REPRO_CACHE`` default when ``None``) memoizes the
    generated dataset on disk keyed by the config and generator version;
    the pickled round-trip is bit-identical to a fresh generation.
    """
    cfg = config or AzureTraceConfig()
    store = resolve_cache(cache)
    if store is not None:
        key = cache_key("azure-dataset", repr(cfg), code_version=GENERATOR_VERSION)
        return store.get_or_create(key, lambda: _generate_dataset(cfg))
    return _generate_dataset(cfg)


def _generate_dataset(cfg: AzureTraceConfig) -> AzureDataset:
    rng = make_rng(cfg.seed)
    n = cfg.num_functions

    # --- applications and memory -----------------------------------------
    # Draw app sizes until functions are covered (geometric-ish app sizes).
    app_sizes: list[int] = []
    remaining = n
    while remaining > 0:
        size = 1 + rng.geometric(1.0 / cfg.functions_per_app_mean)
        size = int(min(size, remaining))
        app_sizes.append(size)
        remaining -= size
    apps: list[str] = []
    memory_mb = np.empty(n)
    pos = 0
    for a, size in enumerate(app_sizes):
        app_name = f"app-{a:05d}"
        app_mem = float(
            np.clip(
                rng.lognormal(cfg.app_memory_log_mu, cfg.app_memory_log_sigma),
                cfg.min_function_memory_mb * size,
                cfg.max_function_memory_mb * size,
            )
        )
        # Paper rule: split the application allocation evenly.
        per_fn = app_mem / size
        for _ in range(size):
            apps.append(app_name)
            memory_mb[pos] = per_fn
            pos += 1

    names = [f"fn-{i:05d}" for i in range(n)]

    # --- execution times -----------------------------------------------------
    avg_runtime = np.clip(
        rng.lognormal(cfg.runtime_log_mu, cfg.runtime_log_sigma, size=n),
        cfg.min_runtime,
        cfg.max_runtime,
    )
    init_factor = rng.lognormal(
        cfg.init_factor_log_mu, cfg.init_factor_log_sigma, size=n
    )
    init_cost = np.minimum(init_factor * avg_runtime, cfg.max_init_cost)
    max_runtime = avg_runtime + init_cost

    # --- invocation rates (heavy-tailed) + diurnal wave ---------------------
    rate_per_minute = np.clip(
        rng.lognormal(cfg.rate_log_mu, cfg.rate_log_sigma, size=n),
        0.0,
        cfg.max_rate_per_minute,
    )
    minutes = np.arange(cfg.duration_minutes)
    diurnal = 1.0 + cfg.diurnal_amplitude * np.sin(
        2.0 * np.pi * (minutes - cfg.diurnal_phase_minutes) / MINUTES_PER_DAY
    )

    counts: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    # Vectorize per function over minutes: Poisson(lambda_f * diurnal).
    for i in range(n):
        lam = rate_per_minute[i]
        expected_total = lam * cfg.duration_minutes
        if expected_total < 0.5:
            # Sparse regime: draw the total, then place uniformly — far
            # cheaper than 1440 Poisson draws that are almost all zero.
            total = rng.poisson(expected_total)
            if total == 0:
                continue
            chosen = rng.integers(0, cfg.duration_minutes, size=total)
            uniq, cnt = np.unique(chosen, return_counts=True)
            counts[i] = (uniq.astype(np.int64), cnt.astype(np.int64))
        else:
            per_minute = rng.poisson(lam * diurnal)
            nz = np.nonzero(per_minute)[0]
            if nz.size == 0:
                continue
            counts[i] = (nz.astype(np.int64), per_minute[nz].astype(np.int64))

    # Paper rule: drop functions that are never reused (fewer than two
    # invocations on the day).
    dataset = AzureDataset(
        config=cfg,
        names=names,
        apps=apps,
        memory_mb=memory_mb,
        avg_runtime=avg_runtime,
        max_runtime=max_runtime,
        counts=counts,
    )
    keep = {fn for fn, (_m, c) in counts.items() if int(c.sum()) >= 2}
    dataset.counts = {fn: counts[fn] for fn in sorted(keep)}
    return dataset
