"""Azure Functions 2019 dataset CSV interchange.

The paper replays the public Azure Functions trace
(``AzureFunctionsDataset2019``), which ships as three CSVs per day:

* ``invocations_per_function`` — owner/app/function hashes, trigger, and
  1440 per-minute invocation-count columns;
* ``function_durations_percentiles`` — per-function average/min/max
  execution times (milliseconds);
* ``app_memory_percentiles`` — per-app allocated memory (MB).

This module writes our synthetic :class:`~repro.trace.azure.AzureDataset`
in that schema and loads datasets from it — so anyone holding the real
trace can feed day files straight into every experiment in this repo,
and synthetic datasets round-trip losslessly (at minute/count
granularity).  The paper's adaptation rules are applied on load: memory
split evenly across an app's functions, cold-start cost estimated as
``maximum - average`` runtime, functions with fewer than two invocations
dropped.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .azure import MINUTES_PER_DAY, AzureDataset, AzureTraceConfig

__all__ = [
    "INVOCATIONS_CSV",
    "DURATIONS_CSV",
    "MEMORY_CSV",
    "write_azure_csvs",
    "load_azure_csvs",
]

INVOCATIONS_CSV = "invocations_per_function.csv"
DURATIONS_CSV = "function_durations_percentiles.csv"
MEMORY_CSV = "app_memory_percentiles.csv"


def write_azure_csvs(dataset: AzureDataset, directory: Union[str, Path]) -> Path:
    """Write the dataset in the Azure trace schema; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    minutes = dataset.config.duration_minutes

    with open(directory / INVOCATIONS_CSV, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction", "Trigger"]
            + [str(m) for m in range(1, minutes + 1)]
        )
        for fn in sorted(dataset.counts):
            mins, counts = dataset.counts[fn]
            dense = np.zeros(minutes, dtype=np.int64)
            dense[mins] = counts
            writer.writerow(
                ["owner", dataset.apps[fn], dataset.names[fn], "http"]
                + dense.tolist()
            )

    with open(directory / DURATIONS_CSV, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction",
             "Average", "Count", "Minimum", "Maximum"]
        )
        for fn in sorted(dataset.counts):
            writer.writerow(
                [
                    "owner",
                    dataset.apps[fn],
                    dataset.names[fn],
                    f"{dataset.avg_runtime[fn] * 1000.0:.3f}",  # ms
                    dataset.total_invocations(fn),
                    f"{dataset.avg_runtime[fn] * 1000.0:.3f}",
                    f"{dataset.max_runtime[fn] * 1000.0:.3f}",
                ]
            )

    # Memory is application-level (the paper splits it evenly on load).
    # Sum only over the functions actually exported, so the even split on
    # load recovers the per-function allocation exactly.
    app_mem: dict[str, float] = {}
    app_size: dict[str, int] = {}
    for fn in dataset.counts:
        app = dataset.apps[fn]
        app_mem[app] = app_mem.get(app, 0.0) + float(dataset.memory_mb[fn])
        app_size[app] = app_size.get(app, 0) + 1
    with open(directory / MEMORY_CSV, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["HashOwner", "HashApp", "SampleCount",
                         "AverageAllocatedMb"])
        for app in sorted(app_mem):
            writer.writerow(["owner", app, app_size[app], f"{app_mem[app]:.3f}"])

    return directory


def load_azure_csvs(
    directory: Union[str, Path],
    default_memory_mb: float = 170.0,
    min_invocations: int = 2,
) -> AzureDataset:
    """Load an Azure-schema day directory into an :class:`AzureDataset`.

    ``default_memory_mb`` covers apps missing from the memory file (the
    real dataset's memory table only samples a subset; 170 MB is near its
    median).  Functions with fewer than ``min_invocations`` are dropped,
    per the paper.
    """
    directory = Path(directory)

    # --- durations -----------------------------------------------------
    avg_ms: dict[str, float] = {}
    max_ms: dict[str, float] = {}
    with open(directory / DURATIONS_CSV, newline="") as fh:
        for row in csv.DictReader(fh):
            name = row["HashFunction"]
            avg_ms[name] = float(row["Average"])
            max_ms[name] = float(row["Maximum"])

    # --- app memory ------------------------------------------------------
    app_total_mb: dict[str, float] = {}
    with open(directory / MEMORY_CSV, newline="") as fh:
        for row in csv.DictReader(fh):
            app_total_mb[row["HashApp"]] = float(row["AverageAllocatedMb"])

    # --- invocations -----------------------------------------------------
    names: list[str] = []
    apps: list[str] = []
    raw_counts: list[tuple[np.ndarray, np.ndarray]] = []
    n_minutes = 0
    with open(directory / INVOCATIONS_CSV, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        minute_cols = header[4:]
        n_minutes = len(minute_cols)
        for row in reader:
            counts = np.array([int(float(v or 0)) for v in row[4:]],
                              dtype=np.int64)
            if counts.sum() < min_invocations:
                continue
            names.append(row[2])
            apps.append(row[1])
            nz = np.nonzero(counts)[0]
            raw_counts.append((nz, counts[nz]))

    if not names:
        raise ValueError(f"no reusable functions found in {directory}")

    # App memory split evenly across each app's functions (paper rule).
    app_fn_count: dict[str, int] = {}
    for app in apps:
        app_fn_count[app] = app_fn_count.get(app, 0) + 1
    memory_mb = np.array(
        [
            app_total_mb.get(app, default_memory_mb * app_fn_count[app])
            / app_fn_count[app]
            for app in apps
        ]
    )

    avg_runtime = np.array([avg_ms.get(n, 1000.0) / 1000.0 for n in names])
    max_runtime = np.array(
        [max(max_ms.get(n, 1000.0) / 1000.0, avg_ms.get(n, 1000.0) / 1000.0)
         for n in names]
    )

    config = AzureTraceConfig(
        num_functions=len(names),
        duration_minutes=n_minutes or MINUTES_PER_DAY,
    )
    return AzureDataset(
        config=config,
        names=names,
        apps=apps,
        memory_mb=memory_mb,
        avg_runtime=avg_runtime,
        max_runtime=max_runtime,
        counts={i: raw_counts[i] for i in range(len(names))},
    )
