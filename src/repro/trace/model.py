"""Workload-trace data model.

A :class:`Trace` is the replayable form of a FaaS workload: a sorted array
of invocation timestamps, a parallel array of function indices, and the
per-function profile table.  Arrays are NumPy so sampling, scaling and
analysis are vectorized; the event loop of the keep-alive simulator
iterates them directly without object-per-invocation overhead.

Per the paper's Azure-trace adaptation: a function's *warm* execution time
is the trace's average runtime, the *cold-start overhead* is estimated as
``maximum - average`` runtime, and memory is the application allocation
split evenly across the application's functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["TraceFunction", "Trace"]


@dataclass(frozen=True)
class TraceFunction:
    """Profile of one function appearing in a trace."""

    name: str
    memory_mb: float
    warm_time: float  # average runtime (seconds)
    cold_time: float  # maximum runtime = warm + init overhead (seconds)
    app: str = ""     # owning application (memory is app-level in Azure)

    def __post_init__(self):
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.warm_time < 0:
            raise ValueError(f"warm_time must be non-negative, got {self.warm_time}")
        if self.cold_time < self.warm_time:
            raise ValueError("cold_time must be >= warm_time")

    @property
    def init_cost(self) -> float:
        """Cold-start overhead: max - average runtime (paper's estimator)."""
        return self.cold_time - self.warm_time


class Trace:
    """A replayable invocation trace.

    ``timestamps`` (seconds, sorted ascending) and ``function_idx`` are
    parallel arrays; ``functions[function_idx[i]]`` is invocation *i*'s
    function.
    """

    def __init__(
        self,
        functions: Sequence[TraceFunction],
        timestamps: np.ndarray,
        function_idx: np.ndarray,
        duration: Optional[float] = None,
        name: str = "trace",
    ):
        self.functions: tuple[TraceFunction, ...] = tuple(functions)
        ts = np.ascontiguousarray(timestamps, dtype=np.float64)
        idx = np.ascontiguousarray(function_idx, dtype=np.int64)
        if ts.shape != idx.shape:
            raise ValueError(
                f"timestamps {ts.shape} and function_idx {idx.shape} must match"
            )
        if ts.size and np.any(np.diff(ts) < 0):
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            idx = idx[order]
        if ts.size:
            if ts[0] < 0:
                raise ValueError("timestamps must be non-negative")
            if idx.min() < 0 or idx.max() >= len(self.functions):
                raise ValueError("function_idx out of range")
        self.timestamps = ts
        self.function_idx = idx
        self.duration = float(
            duration if duration is not None else (ts[-1] if ts.size else 0.0)
        )
        if self.duration < (ts[-1] if ts.size else 0.0):
            raise ValueError("duration shorter than the last invocation")
        self.name = name

    # -- basic stats (paper Table 3) ---------------------------------------
    def __len__(self) -> int:
        return int(self.timestamps.size)

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def requests_per_second(self) -> float:
        if self.duration <= 0:
            return float("nan")
        return len(self) / self.duration

    @property
    def avg_iat(self) -> float:
        """Mean inter-arrival time across the whole trace (seconds)."""
        if len(self) < 2:
            return float("nan")
        return float(np.diff(self.timestamps).mean())

    def invocation_counts(self) -> np.ndarray:
        """Per-function invocation counts (aligned with ``functions``)."""
        return np.bincount(self.function_idx, minlength=len(self.functions))

    def stats_row(self) -> dict:
        """Row in the shape of paper Table 3."""
        return {
            "trace": self.name,
            "num_functions": self.num_functions,
            "num_invocations": len(self),
            "reqs_per_sec": self.requests_per_second,
            "avg_iat_ms": self.avg_iat * 1000.0,
        }

    # -- transforms -----------------------------------------------------------
    def subset(self, function_indices: Iterable[int], name: str = "") -> "Trace":
        """Restrict the trace to the given functions, renumbering indices."""
        wanted = sorted(set(int(i) for i in function_indices))
        for i in wanted:
            if not 0 <= i < len(self.functions):
                raise ValueError(f"function index {i} out of range")
        remap = {old: new for new, old in enumerate(wanted)}
        mask = np.isin(self.function_idx, wanted)
        new_idx = np.array(
            [remap[int(i)] for i in self.function_idx[mask]], dtype=np.int64
        )
        return Trace(
            functions=[self.functions[i] for i in wanted],
            timestamps=self.timestamps[mask],
            function_idx=new_idx,
            duration=self.duration,
            name=name or f"{self.name}-subset",
        )

    def clipped(self, duration: float, name: str = "") -> "Trace":
        """Keep only invocations in [0, duration)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        mask = self.timestamps < duration
        used = sorted(set(self.function_idx[mask].tolist()))
        remap = {old: new for new, old in enumerate(used)}
        new_idx = np.array([remap[int(i)] for i in self.function_idx[mask]],
                           dtype=np.int64)
        return Trace(
            functions=[self.functions[i] for i in used],
            timestamps=self.timestamps[mask],
            function_idx=new_idx,
            duration=duration,
            name=name or f"{self.name}-clip",
        )

    @staticmethod
    def merge(traces: Sequence["Trace"], name: str = "merged") -> "Trace":
        """Layer several traces into one (paper: 'generate larger traces by
        layering, and merging the traces from multiple smaller workloads')."""
        if not traces:
            raise ValueError("need at least one trace to merge")
        functions: list[TraceFunction] = []
        ts_parts, idx_parts = [], []
        offset = 0
        for k, tr in enumerate(traces):
            renamed = [
                TraceFunction(
                    name=f"{f.name}@{k}" if len(traces) > 1 else f.name,
                    memory_mb=f.memory_mb,
                    warm_time=f.warm_time,
                    cold_time=f.cold_time,
                    app=f.app,
                )
                for f in tr.functions
            ]
            functions.extend(renamed)
            ts_parts.append(tr.timestamps)
            idx_parts.append(tr.function_idx + offset)
            offset += len(tr.functions)
        ts = np.concatenate(ts_parts)
        idx = np.concatenate(idx_parts)
        order = np.argsort(ts, kind="stable")
        return Trace(
            functions=functions,
            timestamps=ts[order],
            function_idx=idx[order],
            duration=max(t.duration for t in traces),
            name=name,
        )
