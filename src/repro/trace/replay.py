"""Minute-bucket expansion into concrete invocation timestamps.

Implements the paper's injection rule for the Azure dataset: if a minute
bucket holds one invocation it is injected at the beginning of the minute;
multiple invocations are equally spaced throughout the minute.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..cache import CacheLike, cache_key, resolve_cache
from .azure import SECONDS_PER_MINUTE, AzureDataset
from .model import Trace, TraceFunction

__all__ = ["expand_minute_bucket", "expand_dataset"]

# Bump when the expansion rule changes: invalidates cached traces.
EXPANSION_VERSION = 1


def expand_minute_bucket(minute: int, count: int) -> np.ndarray:
    """Timestamps (seconds) for ``count`` invocations in minute ``minute``.

    One invocation lands at the start of the minute; k invocations are
    spaced ``60/k`` seconds apart starting at the minute boundary.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if minute < 0:
        raise ValueError(f"minute must be non-negative, got {minute}")
    base = minute * SECONDS_PER_MINUTE
    if count == 1:
        return np.array([base])
    return base + np.arange(count) * (SECONDS_PER_MINUTE / count)


def expand_dataset(
    dataset: AzureDataset,
    function_indices: Optional[Sequence[int]] = None,
    name: str = "azure-synth",
    cache: CacheLike = None,
) -> Trace:
    """Expand (a subset of) the dataset into a sorted :class:`Trace`.

    ``function_indices`` selects which dataset functions to include (the
    sampler output); ``None`` expands everything that survived the
    at-least-two-invocations filter.  ``cache`` memoizes the expanded trace
    on disk keyed by the dataset's content fingerprint plus the selection.
    """
    store = resolve_cache(cache)
    if store is not None:
        sel = (
            None
            if function_indices is None
            else tuple(sorted(set(int(i) for i in function_indices)))
        )
        key = cache_key(
            "trace-expansion",
            (dataset.fingerprint(), sel, name),
            code_version=EXPANSION_VERSION,
        )
        return store.get_or_create(
            key, lambda: _expand_dataset(dataset, function_indices, name)
        )
    return _expand_dataset(dataset, function_indices, name)


def _expand_dataset(
    dataset: AzureDataset,
    function_indices: Optional[Sequence[int]] = None,
    name: str = "azure-synth",
) -> Trace:
    if function_indices is None:
        selected: Iterable[int] = sorted(dataset.counts)
    else:
        selected = sorted(set(int(i) for i in function_indices))
        for i in selected:
            if not 0 <= i < dataset.num_functions:
                raise ValueError(f"function index {i} out of dataset range")

    functions: list[TraceFunction] = []
    ts_parts: list[np.ndarray] = []
    idx_parts: list[np.ndarray] = []
    init = dataset.init_cost()

    for new_idx, fn in enumerate(selected):
        pair = dataset.counts.get(fn)
        functions.append(
            TraceFunction(
                name=dataset.names[fn],
                memory_mb=float(dataset.memory_mb[fn]),
                warm_time=float(dataset.avg_runtime[fn]),
                cold_time=float(dataset.avg_runtime[fn] + init[fn]),
                app=dataset.apps[fn],
            )
        )
        if pair is None:
            continue
        minutes, counts = pair
        # Vectorized expansion: for each bucket generate its spaced offsets.
        total = int(counts.sum())
        ts = np.empty(total)
        pos = 0
        for m, c in zip(minutes.tolist(), counts.tolist()):
            ts[pos : pos + c] = expand_minute_bucket(m, c)
            pos += c
        ts_parts.append(ts)
        idx_parts.append(np.full(total, new_idx, dtype=np.int64))

    if ts_parts:
        timestamps = np.concatenate(ts_parts)
        function_idx = np.concatenate(idx_parts)
        order = np.argsort(timestamps, kind="stable")
        timestamps = timestamps[order]
        function_idx = function_idx[order]
    else:
        timestamps = np.empty(0)
        function_idx = np.empty(0, dtype=np.int64)

    return Trace(
        functions=functions,
        timestamps=timestamps,
        function_idx=function_idx,
        duration=dataset.duration_seconds,
        name=name,
    )
