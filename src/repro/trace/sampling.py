"""Trace samplers reproducing the paper's three evaluation workloads.

* **RARE** — a random sample of the rarest, most infrequently invoked
  functions (paper: 1000).  These mostly cold-start under a 10-minute TTL.
* **REPRESENTATIVE** — equal-sized samples from each frequency quartile
  (paper: 400 total), yielding high function diversity.
* **RANDOM** — a uniform random sample (paper: 200).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cache import CacheLike
from ..sim.distributions import make_rng
from .azure import AzureDataset
from .model import Trace
from .replay import expand_dataset

__all__ = [
    "sample_rare",
    "sample_representative",
    "sample_random",
    "standard_samples",
]


def _eligible(dataset: AzureDataset) -> np.ndarray:
    """Indices of functions with at least two invocations, by dataset rule."""
    return np.array(sorted(dataset.counts), dtype=np.int64)


def sample_rare(
    dataset: AzureDataset,
    n: int = 1000,
    seed: Optional[int] = 1,
    cache: CacheLike = None,
) -> Trace:
    """The RARE workload: the n least-frequently-invoked functions.

    Following the paper ("a random sample of the rarest functions"), we
    take the 2n rarest and randomly choose n of them, so ties at the
    bottom of the frequency distribution do not bias the sample.
    """
    eligible = _eligible(dataset)
    if eligible.size == 0:
        raise ValueError("dataset has no reusable functions")
    n = min(n, eligible.size)
    freq = dataset.invocations_per_function()[eligible]
    order = np.argsort(freq, kind="stable")
    pool = eligible[order[: min(2 * n, eligible.size)]]
    rng = make_rng(seed)
    chosen = rng.choice(pool, size=n, replace=False)
    return expand_dataset(dataset, sorted(chosen.tolist()), name="rare",
                          cache=cache)


def sample_representative(
    dataset: AzureDataset,
    n: int = 400,
    seed: Optional[int] = 2,
    cache: CacheLike = None,
) -> Trace:
    """The REPRESENTATIVE workload: equal samples per frequency quartile."""
    eligible = _eligible(dataset)
    if eligible.size == 0:
        raise ValueError("dataset has no reusable functions")
    n = min(n, eligible.size)
    freq = dataset.invocations_per_function()[eligible]
    order = np.argsort(freq, kind="stable")
    sorted_fns = eligible[order]
    rng = make_rng(seed)
    per_quartile = n // 4
    chosen: list[int] = []
    quartiles = np.array_split(sorted_fns, 4)
    for q in quartiles:
        k = min(per_quartile, q.size)
        if k > 0:
            chosen.extend(rng.choice(q, size=k, replace=False).tolist())
    # Top up from the whole pool if quartiles were too small / n % 4 != 0.
    shortfall = n - len(chosen)
    if shortfall > 0:
        remaining = np.setdiff1d(eligible, np.array(chosen, dtype=np.int64))
        if remaining.size:
            extra = rng.choice(remaining, size=min(shortfall, remaining.size),
                               replace=False)
            chosen.extend(extra.tolist())
    return expand_dataset(dataset, sorted(chosen), name="representative",
                          cache=cache)


def sample_random(
    dataset: AzureDataset,
    n: int = 200,
    seed: Optional[int] = 3,
    cache: CacheLike = None,
) -> Trace:
    """The RANDOM workload: a uniform sample of reusable functions."""
    eligible = _eligible(dataset)
    if eligible.size == 0:
        raise ValueError("dataset has no reusable functions")
    n = min(n, eligible.size)
    rng = make_rng(seed)
    chosen = rng.choice(eligible, size=n, replace=False)
    return expand_dataset(dataset, sorted(chosen.tolist()), name="random",
                          cache=cache)


def standard_samples(
    dataset: AzureDataset,
    rare_n: int = 1000,
    representative_n: int = 400,
    random_n: int = 200,
    cache: CacheLike = None,
) -> dict[str, Trace]:
    """The paper's three evaluation traces keyed by name."""
    return {
        "representative": sample_representative(
            dataset, representative_n, cache=cache
        ),
        "rare": sample_rare(dataset, rare_n, cache=cache),
        "random": sample_random(dataset, random_n, cache=cache),
    }
