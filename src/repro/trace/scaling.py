"""Load scaling of traces via IAT-CDF manipulation and Little's law.

Section 5.1 of the paper: the load generator computes the expected number
of concurrent invocations per function with Little's law (L = lambda * W),
sums across functions to estimate system load, and scales the individual
function IAT CDFs to hit a target load.  Scaling a function's IATs by a
factor s multiplies its arrival rate by 1/s, so popularity can be tuned
per function for sensitivity experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .model import Trace, TraceFunction

__all__ = [
    "expected_concurrency",
    "little_load",
    "scale_trace_iats",
    "scale_to_load",
]


def expected_concurrency(trace: Trace) -> np.ndarray:
    """Little's-law concurrency per function: lambda_f * warm_time_f."""
    n = len(trace.functions)
    counts = trace.invocation_counts()
    out = np.zeros(n)
    if trace.duration <= 0:
        return out
    for i, f in enumerate(trace.functions):
        lam = counts[i] / trace.duration
        out[i] = lam * f.warm_time
    return out


def little_load(trace: Trace) -> float:
    """Expected total number of concurrently executing invocations."""
    return float(expected_concurrency(trace).sum())


def scale_trace_iats(
    trace: Trace,
    factor: float,
    per_function: Optional[Sequence[float]] = None,
    name: str = "",
) -> Trace:
    """Scale inter-arrival times by ``factor`` (global) and optionally a
    per-function multiplier.

    A global factor < 1 compresses arrivals *and shortens the trace
    duration by the same factor*, so the arrival **rate** (and therefore
    the Little's-law load) rises by 1/factor; a factor > 1 stretches
    arrivals within the original duration and drops invocations pushed
    past its end.  Per-function multipliers shift individual functions'
    popularity without changing the overall duration accounting.

    Scaling is anchored at each function's first arrival (scaled by the
    global factor when compressing) to preserve the workload's phase
    structure.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if per_function is not None and len(per_function) != len(trace.functions):
        raise ValueError("per_function length must match the function table")

    compressing = factor < 1.0
    new_duration = trace.duration * factor if compressing else trace.duration
    new_ts = trace.timestamps.copy()
    idx = trace.function_idx
    for i in range(len(trace.functions)):
        f_factor = factor * (per_function[i] if per_function is not None else 1.0)
        if f_factor <= 0:
            raise ValueError(f"scale factor for function {i} must be positive")
        mask = idx == i
        ts = trace.timestamps[mask]
        if ts.size == 0:
            continue
        # When compressing globally, pull the anchor in too so the whole
        # workload fits the shortened duration; otherwise keep phase.
        anchor = ts[0] * factor if compressing else ts[0]
        new_ts[mask] = anchor + (ts - ts[0]) * f_factor

    keep = new_ts < new_duration
    order = np.argsort(new_ts[keep], kind="stable")
    return Trace(
        functions=trace.functions,
        timestamps=new_ts[keep][order],
        function_idx=idx[keep][order],
        duration=new_duration,
        name=name or f"{trace.name}-x{factor:g}",
    )


def scale_to_load(trace: Trace, target_load: float, name: str = "") -> Trace:
    """Scale the whole trace so its Little's-law load hits ``target_load``.

    E.g. matching 100 expected concurrent invocations to a 12-core server
    would overload it; this finds the IAT stretch that fits the system
    under test (paper Section 5.1).
    """
    if target_load <= 0:
        raise ValueError(f"target_load must be positive, got {target_load}")
    current = little_load(trace)
    if current <= 0:
        raise ValueError("trace has zero load; cannot scale")
    # Load scales with arrival rate = 1/iat-factor.
    factor = current / target_load
    return scale_trace_iats(trace, factor, name=name or f"{trace.name}-load{target_load:g}")
