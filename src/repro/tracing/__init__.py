"""Causal invocation tracing: trace trees, critical paths, flight data.

Every invocation gets a trace tree — LB pick/RPC spans rooting the
lifecycle's stage chain, component intervals hanging off their stages —
collected entirely at terminal-stage hooks, so tracing perturbs nothing
and costs nothing when off (the golden fixture and the serial-vs-sharded
byte-identity gates hold with tracing enabled *or* disabled).

Enable with ``TelemetryConfig(trace=True)`` (CLI:
``repro --telemetry DIR cluster-study --trace``); read back with
``repro trace DIR`` or export to ``ui.perfetto.dev`` via ``--perfetto``.
"""

from .collector import TraceCollector
from .critical_path import (
    CriticalPath,
    PathSegment,
    TraceTree,
    aggregate_rows,
    build_traces,
    critical_path,
    render_critical_path,
    verify_against_breakdowns,
)
from .events import (
    COMPONENT_STAGE,
    TRACE_KEY,
    TraceEvent,
    dump_trace_jsonl,
    load_trace_jsonl,
)
from .perfetto import chrome_trace, dump_chrome_trace, export_perfetto
from .report import trace_report

__all__ = [
    "TraceEvent",
    "TraceCollector",
    "TraceTree",
    "CriticalPath",
    "PathSegment",
    "COMPONENT_STAGE",
    "TRACE_KEY",
    "build_traces",
    "critical_path",
    "aggregate_rows",
    "verify_against_breakdowns",
    "render_critical_path",
    "dump_trace_jsonl",
    "load_trace_jsonl",
    "chrome_trace",
    "dump_chrome_trace",
    "export_perfetto",
    "trace_report",
]
