"""Collecting causal traces off the lifecycle pipeline's existing seams.

The collector adds **no instrumentation to the hot path**.  It registers
:class:`~repro.core.lifecycle.StageHooks` exit callbacks on the three
terminal stages only, and builds each invocation's whole trace tree in
one shot when the invocation ends — from the per-stage ``stage_times``
the tracker already stamps whenever anything observes the pipeline, and
the component ``intervals`` telemetry already retains for decomposition.
Hooks observe simulated state without yielding, so a traced run produces
bit-identical records, spans, and breakdowns to an untraced one (pinned
by ``tests/test_tracing.py`` against the golden fixture).

LB spans enter through :meth:`TraceCollector.record_lb`: the serial
:class:`~repro.loadbalancer.cluster.Cluster` calls it at forward
completion (the invocation id is only known then), the cluster-shard
coordinator synthesizes the identical events from its batched epoch walk.
``root`` names the LB span worker-side stage chains hang under —
``"lb_rpc"`` behind an RPC-forwarding balancer, ``"lb_pick"`` when the
RPC hop is disabled, ``None`` for a standalone worker.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from ..core.lifecycle import TERMINAL_STAGES
from .events import COMPONENT_STAGE, TRACE_KEY, TraceEvent

__all__ = ["TraceCollector"]

# Seq slots 0/1 are reserved for lb_pick/lb_rpc; worker-side events start
# after them whenever the trace is rooted at a load balancer.
_LB_SEQS = 2


class TraceCollector:
    """Accumulates :class:`TraceEvent` rows for one run.

    ``shard`` stamps every collected event with the owning shard index
    (left ``None`` on single-process runs); ``root`` is the parent the
    first worker-side stage links to (``None`` roots the stage chain
    itself).
    """

    def __init__(self, root: Optional[str] = None,
                 shard: Optional[int] = None):
        self.events: list[TraceEvent] = []
        self.root = root
        self.shard = shard

    # -- wiring -------------------------------------------------------------
    def attach_worker(self, worker) -> bool:
        """Hook a worker's lifecycle; returns False when it has none
        (exotic backends keep working, just untraced)."""
        lifecycle = getattr(worker, "lifecycle", None)
        if lifecycle is None:
            return False
        self.attach_tracker(lifecycle, getattr(worker, "name", None))
        return True

    def attach_tracker(self, tracker, worker_name: Optional[str] = None) -> None:
        """Hook a :class:`~repro.core.lifecycle.StageTracker` directly
        (the OpenWhisk baseline shares the tracker substrate)."""
        fn = partial(self._on_terminal, worker_name)
        for stage in TERMINAL_STAGES:
            tracker.hooks.on_exit(stage, fn)
        # Terminal hooks read stage_times *and* intervals; interval
        # collection keys off keep_contexts at context-open time.
        tracker.keep_contexts = True

    # -- LB events ----------------------------------------------------------
    def record_lb(
        self,
        trace_id: int,
        pick_start: float,
        pick_end: float,
        rpc_start: Optional[float] = None,
        rpc_end: Optional[float] = None,
        worker: Optional[str] = None,
    ) -> None:
        """The load balancer's contribution: the pick decision and, when
        the RPC hop is modelled, the forward span it causes."""
        append = self.events.append
        append(TraceEvent(
            trace_id=trace_id, seq=0, name="lb_pick", kind="lb",
            start=pick_start, end=pick_end, shard=self.shard,
        ))
        if rpc_end is not None:
            append(TraceEvent(
                trace_id=trace_id, seq=1, name="lb_rpc", kind="lb",
                start=rpc_start, end=rpc_end, parent="lb_pick",
                worker=worker, shard=self.shard,
            ))

    # -- terminal-stage hook ------------------------------------------------
    def _on_terminal(self, worker_name, stage, ctx) -> None:
        """Build the invocation's whole tree from the closed context.

        Stage events come out in ``stage_times`` insertion order (which is
        stage-enter order); a stage the pipeline never exited — EXECUTE on
        the timeout path — borrows the next stage's enter time as its end,
        falling back to the terminal stamp.  Component events follow in
        recording order, each parented on its owning stage.
        """
        times = ctx.stage_times
        if not times:  # pragma: no cover - hooks imply stamping
            return
        events = self.events
        tid = ctx.inv.id
        shard = self.shard
        parent = self.root
        seq = _LB_SEQS if parent is not None else 0
        items = list(times.items())
        terminal_end = items[-1][1][1]
        for i, (name, (t0, t1)) in enumerate(items):
            if t1 is None:
                nxt = items[i + 1][1][0] if i + 1 < len(items) else terminal_end
                t1 = t0 if nxt is None else nxt
            events.append(TraceEvent(
                trace_id=tid, seq=seq, name=name, kind="stage",
                start=t0, end=t1, parent=parent, worker=worker_name,
                shard=shard,
            ))
            parent = name
            seq += 1
        intervals = ctx.intervals
        if intervals:
            for name, t0, t1 in intervals:
                events.append(TraceEvent(
                    trace_id=tid, seq=seq, name=name, kind="component",
                    start=t0, end=t1, parent=COMPONENT_STAGE.get(name),
                    worker=worker_name, shard=shard,
                ))
                seq += 1

    # -- views --------------------------------------------------------------
    def trace_events(self) -> list[TraceEvent]:
        """All collected events in canonical ``(trace_id, seq)`` order."""
        return sorted(self.events, key=TRACE_KEY)
