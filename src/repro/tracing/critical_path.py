"""Critical-path analysis over causal trace trees.

The critical path of an invocation is its longest causal chain: the LB
spans, the stage spine, and the instrumentation gaps between consecutive
chain spans (queue wait being the canonical one — the time an enqueued
invocation sits between queue insertion and dispatch).  Per-invocation
phase attribution reuses :func:`repro.telemetry.decomposition._breakdown`
over the trace's component events in recording order — the *same* floats
accumulated in the *same* order as ``decompose_contexts``, so the two
pipelines agree bit-for-bit (the acceptance gate this PR pins at 1 and 4
shards).  The one thing the trace adds on top of the breakdown is the LB
seam: pick + RPC time spent before the worker ever saw the invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.lifecycle import DISPATCH
from ..telemetry.decomposition import PHASES, InvocationBreakdown, _breakdown
from .events import TraceEvent

__all__ = [
    "TraceTree",
    "PathSegment",
    "CriticalPath",
    "build_traces",
    "critical_path",
    "aggregate_rows",
    "verify_against_breakdowns",
    "render_critical_path",
]


@dataclass(frozen=True)
class TraceTree:
    """One invocation's events, in ``seq`` order."""

    trace_id: int
    events: tuple

    def chain(self) -> list[TraceEvent]:
        """The causal spine: lb + stage events (components hang off it)."""
        return [e for e in self.events if e.kind != "component"]

    def components(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "component"]

    def rooted(self) -> bool:
        """True when the spine is one unbroken parent chain from a root
        event (``parent is None``) to the terminal stage."""
        chain = self.chain()
        if not chain or chain[0].parent is not None:
            return False
        for prev, e in zip(chain, chain[1:]):
            if e.parent != prev.name:
                return False
        return True


@dataclass(frozen=True)
class PathSegment:
    """One hop of the critical path: a chain span, or a gap between two
    (``kind="wait"``, synthesized — nothing was instrumented there)."""

    name: str
    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CriticalPath:
    """One invocation's attributed end-to-end latency."""

    trace_id: int
    terminal: str                  # complete | drop | timeout
    rooted: bool
    start: float
    end: float
    seam: float                    # LB pick + rpc time (before the worker)
    worker: Optional[str]
    shard: Optional[int]
    segments: tuple
    breakdown: Optional[InvocationBreakdown]   # None for drops/timeouts

    @property
    def span(self) -> float:
        return self.end - self.start


def build_traces(events: Iterable[TraceEvent]) -> list[TraceTree]:
    """Group a flat event stream into per-invocation trees, ``trace_id``
    ascending, events in ``seq`` order within each."""
    grouped: dict[int, list[TraceEvent]] = {}
    for e in events:
        grouped.setdefault(e.trace_id, []).append(e)
    return [
        TraceTree(trace_id=tid, events=tuple(
            sorted(grouped[tid], key=lambda e: e.seq)
        ))
        for tid in sorted(grouped)
    ]


def critical_path(tree: TraceTree) -> CriticalPath:
    """Walk the tree's spine into critical-path segments + a breakdown."""
    chain = tree.chain()
    segments: list[PathSegment] = []
    seam = 0.0
    prev_end: Optional[float] = None
    for e in chain:
        if prev_end is not None and e.start > prev_end:
            # The uninstrumented stretch between two chain spans; before
            # dispatch it is, by construction, time spent queued.
            gap = "queue_wait" if e.name == DISPATCH else "wait"
            segments.append(PathSegment(gap, prev_end, e.start, "wait"))
        segments.append(PathSegment(e.name, e.start, e.end, e.kind))
        if e.kind == "lb":
            seam += e.end - e.start
        prev_end = e.end if prev_end is None else max(prev_end, e.end)
    components = tree.components()
    breakdown = _breakdown(
        str(tree.trace_id),
        [(e.name, e.start, e.end) for e in components],
    ) if components else None
    worker = next((e.worker for e in chain if e.worker is not None), None)
    shard = next((e.shard for e in tree.events if e.shard is not None), None)
    start = min((e.start for e in chain), default=0.0)
    end = max((e.end for e in chain), default=0.0)
    return CriticalPath(
        trace_id=tree.trace_id,
        terminal=chain[-1].name if chain else "?",
        rooted=tree.rooted(),
        start=start,
        end=end,
        seam=seam,
        worker=worker,
        shard=shard,
        segments=tuple(segments),
        breakdown=breakdown,
    )


def aggregate_rows(paths: Sequence[CriticalPath],
                   scale: float = 1000.0) -> list[dict]:
    """Aggregate phase attribution across completed paths, in the shape of
    :func:`repro.telemetry.decomposition.breakdown_rows` plus an ``lb_seam``
    row (share is of total control-plane overhead including the seam)."""
    done = [p for p in paths if p.breakdown is not None]
    if not done:
        return []
    columns = {p: np.array([c.breakdown.phases[p] for c in done])
               for p in PHASES}
    columns["lb_seam"] = np.array([p.seam for p in done])
    total = float(sum(col.sum() for col in columns.values()))
    rows = []
    for phase, col in columns.items():
        rows.append({
            "phase": phase,
            "mean": float(col.mean()) * scale,
            "p99": float(np.percentile(col, 99)) * scale,
            "share_pct": 100.0 * float(col.sum()) / total if total else 0.0,
        })
    exec_col = np.array([p.breakdown.exec_time for p in done])
    rows.append({
        "phase": "(exec)",
        "mean": float(exec_col.mean()) * scale,
        "p99": float(np.percentile(exec_col, 99)) * scale,
        "share_pct": 0.0,
    })
    return rows


def verify_against_breakdowns(paths: Sequence[CriticalPath],
                              breakdowns: Iterable[InvocationBreakdown],
                              ) -> tuple[int, int]:
    """Cross-check trace-derived phase sums against the telemetry
    decomposition: ``(matched, compared)`` where matched counts exact
    float equality on every phase, exec time, and overhead."""
    by_id = {b.invocation_id: b for b in breakdowns
             if b.invocation_id is not None}
    matched = compared = 0
    for p in paths:
        if p.breakdown is None:
            continue
        b = by_id.get(p.trace_id)
        if b is None:
            continue
        compared += 1
        mine = p.breakdown
        if (all(mine.phases[k] == b.phases[k] for k in PHASES)
                and mine.exec_time == b.exec_time
                and mine.overhead == b.overhead):
            matched += 1
    return matched, compared


def render_critical_path(path: CriticalPath, label: Optional[str] = None,
                         scale: float = 1000.0) -> list[str]:
    """Render one critical path as indented text lines (ms)."""
    head = f"trace {path.trace_id}"
    if label:
        head += f"  {label}"
    head += f"  [{path.terminal}]  e2e {path.span * scale:.3f} ms"
    if path.worker is not None:
        head += f"  worker={path.worker}"
    if path.shard is not None:
        head += f"  shard={path.shard}"
    if not path.rooted:
        head += "  (UNROOTED)"
    lines = [head]
    t0 = path.start
    for seg in path.segments:
        marker = {"lb": "seam", "wait": "gap"}.get(seg.kind, "")
        lines.append(
            f"  {seg.name:<14} +{(seg.start - t0) * scale:>10.3f} ms  "
            f"{seg.duration * scale:>10.3f} ms  {marker}".rstrip()
        )
    return lines
