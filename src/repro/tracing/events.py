"""Causal trace events: the one record type the tracing pipeline speaks.

A trace is the set of events sharing an invocation's ``trace_id`` (the
invocation id itself — already globally unique and already stamped on
records, spans, and breakdown tags, so traces join against every other
telemetry artifact for free).  Within a trace, ``seq`` orders events in
causal-emission order and ``parent`` names the event the span causally
hangs under:

* ``lb`` events (``lb_pick`` → ``lb_rpc``) root the trace at the load
  balancer (seq 0 and 1, reserved even when a run has no LB);
* ``stage`` events mirror the lifecycle pipeline's stage walk (admit →
  enqueue → dispatch → acquire → warm/cold_create → execute → terminal),
  each parented on its predecessor so the stage chain *is* the causal
  spine;
* ``component`` events are the fine-grained intervals telemetry already
  decomposes (``exec``, ``cold_create``, ``add_item_to_q``, …), parented
  on their owning stage via :data:`COMPONENT_STAGE`.

Events are frozen and totally ordered by ``(trace_id, seq)`` — the merge
key the cluster-shard seam streams them under, exactly like records and
spans.  The JSONL form omits ``None`` fields, so serial and sharded runs
serialize identically except for the shard attribution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from ..core.lifecycle import (
    ACQUIRE,
    ADMIT,
    COLD_CREATE,
    COMPLETE,
    DISPATCH,
    ENQUEUE,
    EXECUTE,
    WARM,
)

__all__ = [
    "TraceEvent",
    "TRACE_KEY",
    "COMPONENT_STAGE",
    "dump_trace_jsonl",
    "load_trace_jsonl",
]

# Canonical stream/merge order, matching the seam's other telemetry keys.
TRACE_KEY = lambda e: (e.trace_id, e.seq)  # noqa: E731

# Which lifecycle stage owns each component interval (the parent link for
# ``component`` events).  Mirrors the recording sites in core/lifecycle.py.
COMPONENT_STAGE: dict[str, str] = {
    "invoke": ADMIT,
    "sync_invoke": ADMIT,
    "enqueue_invocation": ENQUEUE,
    "add_item_to_q": ENQUEUE,
    "dequeue": DISPATCH,
    "spawn_worker": DISPATCH,
    "acquire_container": ACQUIRE,
    "try_lock_container": WARM,
    "cold_create": COLD_CREATE,
    "prepare_invoke": EXECUTE,
    "http_client_create": EXECUTE,
    "exec": EXECUTE,
    "call_container": EXECUTE,
    "download_result": EXECUTE,
    "return_container": COMPLETE,
    "return_results": COMPLETE,
}


@dataclass(frozen=True)
class TraceEvent:
    """One span of an invocation's causal trace tree."""

    trace_id: int
    seq: int
    name: str
    kind: str                      # "lb" | "stage" | "component"
    start: float
    end: float
    parent: Optional[str] = None   # name of the causally preceding span
    worker: Optional[str] = None   # owning worker (None at the LB)
    shard: Optional[int] = None    # owning shard index (None when serial)

    @property
    def duration(self) -> float:
        return self.end - self.start


def dump_trace_jsonl(events: Iterable[TraceEvent],
                     path: Union[str, Path]) -> int:
    """Write trace events as JSON lines in stream order, omitting ``None``
    fields (serial and sharded runs produce the same bytes for the same
    events, shard attribution aside).  ``events`` may be a lazy stream.
    Returns the number of events written."""
    dumps = json.dumps
    count = 0
    with open(path, "w") as fh:
        for e in events:
            row = {
                "trace_id": e.trace_id,
                "seq": e.seq,
                "name": e.name,
                "kind": e.kind,
                "start": e.start,
                "end": e.end,
            }
            if e.parent is not None:
                row["parent"] = e.parent
            if e.worker is not None:
                row["worker"] = e.worker
            if e.shard is not None:
                row["shard"] = e.shard
            fh.write(dumps(row))
            fh.write("\n")
            count += 1
    return count


def load_trace_jsonl(path: Union[str, Path]) -> list[TraceEvent]:
    """Read events written by :func:`dump_trace_jsonl`."""
    events: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            events.append(TraceEvent(
                trace_id=data["trace_id"],
                seq=data["seq"],
                name=data["name"],
                kind=data["kind"],
                start=data["start"],
                end=data["end"],
                parent=data.get("parent"),
                worker=data.get("worker"),
                shard=data.get("shard"),
            ))
    return events
