"""Chrome trace-event / Perfetto export of causal traces.

Any run directory with a ``traces.jsonl`` opens in ``ui.perfetto.dev``
(or ``chrome://tracing``): one process row per worker plus one for the
load balancer, one thread row per invocation, every trace event a
complete-duration ("X") slice.  Simulated seconds map to microseconds —
the trace-event format's native unit — so durations read directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .events import TraceEvent, load_trace_jsonl

__all__ = ["chrome_trace", "dump_chrome_trace", "export_perfetto"]

_LB_PROCESS = "load-balancer"
_US = 1e6   # simulated seconds -> trace-event microseconds


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the Chrome trace-event JSON document for ``events``."""
    events = list(events)
    # pid 0 is the LB; workers get stable pids in name order.
    workers = sorted({e.worker for e in events if e.worker is not None})
    pid_of = {name: i + 1 for i, name in enumerate(workers)}
    trace_events = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": _LB_PROCESS}},
    ]
    for name, pid in pid_of.items():
        trace_events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
    for e in events:
        args = {"seq": e.seq, "kind": e.kind}
        if e.parent is not None:
            args["parent"] = e.parent
        if e.worker is not None:
            args["worker"] = e.worker
        if e.shard is not None:
            args["shard"] = e.shard
        trace_events.append({
            "ph": "X",
            "name": e.name,
            "cat": e.kind,
            # lb events stay on the LB track even when they name the
            # worker the RPC targets; the target is still in args/worker.
            "pid": 0 if e.kind == "lb" else pid_of.get(e.worker, 0),
            "tid": e.trace_id,
            "ts": e.start * _US,
            "dur": (e.end - e.start) * _US,
            "args": args,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def dump_chrome_trace(events: Iterable[TraceEvent],
                      path: Union[str, Path]) -> int:
    """Write the trace-event document; returns the number of "X" slices."""
    doc = chrome_trace(events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")


def export_perfetto(run_dir: Union[str, Path],
                    out_path: Union[str, Path]) -> int:
    """Convert a run directory's ``traces.jsonl`` into a Perfetto-openable
    JSON file; raises :class:`FileNotFoundError` when the run was not
    traced.  Returns the number of exported slices."""
    traces_path = Path(run_dir) / "traces.jsonl"
    if not traces_path.exists():
        raise FileNotFoundError(
            f"{traces_path} does not exist — re-run with tracing enabled "
            "(e.g. repro --telemetry DIR cluster-study --trace)"
        )
    return dump_chrome_trace(load_trace_jsonl(traces_path), out_path)
