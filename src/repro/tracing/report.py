"""The ``repro trace`` report: aggregate attribution + slowest paths.

Reads a traced run directory (``traces.jsonl`` + ``records.jsonl``) back
into trace trees and renders what the aggregate histograms cannot show:
*where along its causal path* each slow invocation paid its latency —
queue wait vs cold start vs exec vs the LB seam — with a percentile
drill-down into the e2e distribution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .critical_path import (
    aggregate_rows,
    build_traces,
    critical_path,
    render_critical_path,
)
from .events import load_trace_jsonl

__all__ = ["trace_report"]


def _record_labels(run_dir: Path) -> dict[int, str]:
    """``invocation_id -> "function (outcome)"`` from records.jsonl."""
    labels: dict[int, str] = {}
    records_path = run_dir / "records.jsonl"
    if not records_path.exists():
        return labels
    with open(records_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            rid = r.get("invocation_id")
            if rid is not None:
                labels[rid] = f"{r.get('function')} ({r.get('outcome')})"
    return labels


def _nearest_rank(sorted_values: list, pct: float):
    """Nearest-rank percentile over an ascending list."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      round(pct / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def trace_report(run_dir: Union[str, Path], top: int = 5,
                 percentile: Optional[float] = None) -> str:
    """Render the causal-trace report for a run directory."""
    from ..telemetry.runs import _table   # deferred: avoids import-order knots

    run_dir = Path(run_dir)
    traces_path = run_dir / "traces.jsonl"
    if not traces_path.exists():
        return (
            f"no traces.jsonl under {run_dir} — this run was not traced.\n"
            "Re-run with tracing enabled, e.g.:\n"
            "  repro --telemetry DIR cluster-study --trace\n"
        )
    events = load_trace_jsonl(traces_path)
    trees = build_traces(events)
    paths = [critical_path(t) for t in trees]
    labels = _record_labels(run_dir)
    completed = [p for p in paths if p.breakdown is not None]
    rooted = sum(1 for p in paths if p.rooted)

    lines = [
        f"causal traces: {run_dir}",
        f"{len(paths)} traces ({len(completed)} completed, "
        f"{rooted}/{len(paths)} rooted), {len(events)} events",
        "",
    ]

    rows = aggregate_rows(completed)
    if rows:
        lines.append("critical-path attribution (completed invocations):")
        lines.extend(_table(rows, [
            ("phase", "phase"), ("mean", "mean_ms"),
            ("p99", "p99_ms"), ("share_pct", "share_%"),
        ]))
        lines.append("")

    slowest = sorted(paths, key=lambda p: p.span, reverse=True)[:max(top, 0)]
    if slowest:
        lines.append(f"top {len(slowest)} slowest invocations:")
        for p in slowest:
            lines.extend(render_critical_path(p, labels.get(p.trace_id)))
            lines.append("")

    if percentile is not None:
        by_span = sorted(paths, key=lambda p: p.span)
        pick = _nearest_rank(by_span, percentile)
        if pick is not None:
            lines.append(f"p{percentile:g} drill-down "
                         f"(e2e {pick.span * 1000.0:.3f} ms):")
            lines.extend(render_critical_path(pick, labels.get(pick.trace_id)))
            lines.append("")

    return "\n".join(lines).rstrip() + "\n"
