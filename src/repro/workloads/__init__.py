"""Workloads: FunctionBench catalog, lookbusy synthetics, trace mapping."""

from .functionbench import FUNCTIONBENCH, BenchFunction, catalog_table, registration_for
from .lookbusy import lookbusy_function, lookbusy_population
from .mapping import closest_bench_function, map_trace_to_catalog

__all__ = [
    "FUNCTIONBENCH",
    "BenchFunction",
    "catalog_table",
    "registration_for",
    "closest_bench_function",
    "lookbusy_function",
    "lookbusy_population",
    "map_trace_to_catalog",
]
