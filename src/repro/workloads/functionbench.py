"""FunctionBench-derived workload catalog (paper Table 4 and appendix).

The paper's OpenWhisk/FaasCache experiments run real functions from the
FunctionBench suite; their measured characteristics (memory footprint,
total runtime, initialization time) are published in Table 4 and
reproduced here verbatim.  The catalog supplies
:class:`~repro.core.function.FunctionRegistration` objects for the control
plane and (memory, warm, init) triples for the keep-alive analysis.

The convention throughout: ``run time`` in the paper is the *cold* total
(initialization + execution), so ``warm_time = run - init`` and
``cold_time = run``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.function import FunctionRegistration

__all__ = ["BenchFunction", "FUNCTIONBENCH", "registration_for", "catalog_table"]


@dataclass(frozen=True)
class BenchFunction:
    """One catalog application (paper Table 4 row)."""

    key: str
    description: str
    memory_mb: float
    run_time: float   # total (cold) runtime, seconds
    init_time: float  # initialization share of the runtime, seconds

    def __post_init__(self):
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.init_time < 0 or self.run_time < self.init_time:
            raise ValueError("need 0 <= init_time <= run_time")

    @property
    def warm_time(self) -> float:
        return self.run_time - self.init_time

    @property
    def cold_time(self) -> float:
        return self.run_time


# Paper Table 4 ("FaaS workloads are highly diverse...").
FUNCTIONBENCH: dict[str, BenchFunction] = {
    f.key: f
    for f in [
        BenchFunction(
            key="ml_inference",
            description="Image inference using the SqueezeNet CNN (TensorFlow)",
            memory_mb=512.0,
            run_time=6.5,
            init_time=4.5,
        ),
        BenchFunction(
            key="video_encoding",
            description="Download an 11 MB mp4 and convert to grayscale avi (cv2)",
            memory_mb=500.0,
            run_time=56.0,
            init_time=3.0,
        ),
        BenchFunction(
            key="matrix_multiply",
            description="NumPy linalg.solve of a random 20x20 matrix",
            memory_mb=256.0,
            run_time=2.5,
            init_time=2.2,
        ),
        BenchFunction(
            key="disk_bench",
            description="dd: 1000 reads/writes of 128k blocks",
            memory_mb=256.0,
            run_time=2.2,
            init_time=1.8,
        ),
        BenchFunction(
            key="image_manip",
            description="Image manipulation pipeline",
            memory_mb=300.0,
            run_time=9.0,
            init_time=6.0,
        ),
        BenchFunction(
            key="web_serving",
            description="Render a small HTML page with Chameleon",
            memory_mb=64.0,
            run_time=2.4,
            init_time=2.0,
        ),
        BenchFunction(
            key="float_op",
            description="Floating-point trigonometry with the math library",
            memory_mb=128.0,
            run_time=2.0,
            init_time=1.7,
        ),
        # The PyAES microbenchmark used for the Figure 1 overhead study:
        # a short, warm-dominant function.
        BenchFunction(
            key="pyaes",
            description="AES encryption of a small payload (pure Python)",
            memory_mb=128.0,
            run_time=0.60,
            init_time=0.40,
        ),
    ]
}


def registration_for(key: str, version: int = 1) -> FunctionRegistration:
    """Build a control-plane registration from a catalog entry."""
    bench = FUNCTIONBENCH.get(key)
    if bench is None:
        raise KeyError(
            f"unknown FunctionBench key {key!r}; choose from {sorted(FUNCTIONBENCH)}"
        )
    return FunctionRegistration(
        name=bench.key,
        image=f"repro/functionbench-{bench.key}:latest",
        memory_mb=bench.memory_mb,
        warm_time=bench.warm_time,
        cold_time=bench.cold_time,
        version=version,
    )


def catalog_table() -> list[dict]:
    """Rows in the shape of paper Table 4."""
    return [
        {
            "application": b.description,
            "mem_mb": b.memory_mb,
            "run_s": b.run_time,
            "init_s": b.init_time,
        }
        for b in FUNCTIONBENCH.values()
    ]
