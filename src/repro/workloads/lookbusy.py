"""lookbusy-style synthetic functions (Section 5.1).

The paper's load generator can use "custom sized functions that run
lookbusy for generating specific CPU and memory load".  The synthetic
factory here produces registrations with exact requested durations and
footprints — useful for controlled queueing/keep-alive experiments where
FunctionBench's fixed profiles are too coarse.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.function import FunctionRegistration
from ..sim.distributions import Distribution, make_rng

__all__ = ["lookbusy_function", "lookbusy_population"]


def lookbusy_function(
    name: str,
    run_time: float,
    memory_mb: float = 128.0,
    init_time: float = 0.0,
    version: int = 1,
) -> FunctionRegistration:
    """A synthetic function with exactly the requested profile."""
    if run_time <= 0:
        raise ValueError("run_time must be positive")
    if init_time < 0:
        raise ValueError("init_time must be non-negative")
    return FunctionRegistration(
        name=name,
        image=f"repro/lookbusy:{name}",
        memory_mb=memory_mb,
        warm_time=run_time,
        cold_time=run_time + init_time,
        version=version,
    )


def lookbusy_population(
    n: int,
    run_time_dist: Distribution,
    memory_dist: Distribution,
    init_fraction: float = 0.5,
    seed: Optional[int] = 0,
    prefix: str = "lookbusy",
) -> list[FunctionRegistration]:
    """Draw a population of synthetic functions from distributions.

    ``init_fraction`` sets each function's initialization time as a
    fraction of its run time (the paper's workloads have init comparable
    to execution; see Table 4).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if init_fraction < 0:
        raise ValueError("init_fraction must be non-negative")
    rng = make_rng(seed)
    run_times = np.maximum(run_time_dist.sample_n(rng, n), 0.001)
    memories = np.maximum(memory_dist.sample_n(rng, n), 16.0)
    return [
        lookbusy_function(
            name=f"{prefix}-{i:04d}",
            run_time=float(run_times[i]),
            memory_mb=float(memories[i]),
            init_time=float(run_times[i] * init_fraction),
        )
        for i in range(n)
    ]
