"""Trace-function -> benchmark-function mapping (Section 5.1).

"When using real functions from a benchmark-suite like FunctionBench, for
each randomly sampled function, we use its average execution time (from
the full trace), and assign it the closest function in the suite."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trace.model import Trace, TraceFunction
from .functionbench import FUNCTIONBENCH, BenchFunction

__all__ = ["closest_bench_function", "map_trace_to_catalog"]


def closest_bench_function(
    avg_runtime: float, catalog: Sequence[BenchFunction] = tuple(FUNCTIONBENCH.values())
) -> BenchFunction:
    """The catalog entry whose total runtime is nearest ``avg_runtime``."""
    if avg_runtime < 0:
        raise ValueError("avg_runtime must be non-negative")
    if not catalog:
        raise ValueError("catalog must be non-empty")
    runtimes = np.array([b.run_time for b in catalog])
    return catalog[int(np.argmin(np.abs(runtimes - avg_runtime)))]


def map_trace_to_catalog(
    trace: Trace, catalog: Sequence[BenchFunction] = tuple(FUNCTIONBENCH.values())
) -> Trace:
    """Re-profile every trace function with its closest catalog entry.

    Invocation timestamps are untouched; only (memory, warm, cold) change
    to the benchmark function's measured values — making a trace runnable
    with "real" functions, as the paper's OpenWhisk evaluation does.
    """
    mapped = []
    for f in trace.functions:
        bench = closest_bench_function(f.warm_time, catalog)
        mapped.append(
            TraceFunction(
                name=f.name,
                memory_mb=bench.memory_mb,
                warm_time=bench.warm_time,
                cold_time=bench.cold_time,
                app=f.app,
            )
        )
    return Trace(
        functions=mapped,
        timestamps=trace.timestamps,
        function_idx=trace.function_idx,
        duration=trace.duration,
        name=f"{trace.name}-functionbench",
    )
