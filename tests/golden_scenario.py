"""The golden A/B scenario: a small, fully deterministic cluster study.

One fixed workload — three workers behind CH-BL, four functions with
overlapping bursts (cold starts, warm reuse, queueing, and a function
whose execution limit always fires) — replayed with telemetry attached.
:func:`run_scenario` reduces the run to a JSON-stable structure:

* ``records``      — every invocation record, sorted;
* ``spans``        — the merged retained span stream, sorted;
* ``breakdowns``   — per-invocation phase decomposition;
* ``phase_totals`` — the aggregate per-phase sums (the Table-2 numbers).

``tests/data/golden_cluster_study.json`` holds the output captured on the
pre-refactor invocation path (commit 8f4f807); ``tests/test_golden_ab.py``
replays the scenario on the current code and diffs bit-for-bit, pinning
the lifecycle refactor to be behaviour-preserving.

Invocation ids come from a process-global counter, so the scenario
normalizes them to be relative to the smallest id it observes; everything
else is deterministic from the fixed seed and arrival list.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.loadbalancer.cluster import Cluster
from repro.sim.core import Environment
from repro.telemetry import PHASES, Telemetry, TelemetryConfig

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_cluster_study.json"

FUNCTIONS = [
    FunctionRegistration(name="alpha", memory_mb=256, warm_time=0.08, cold_time=0.6),
    FunctionRegistration(name="beta", memory_mb=512, warm_time=0.3, cold_time=1.1),
    FunctionRegistration(name="gamma", memory_mb=128, warm_time=0.02, cold_time=0.25),
    # Always exceeds its execution limit: pins the timeout-kill path.
    FunctionRegistration(
        name="delta", memory_mb=128, warm_time=2.0, cold_time=2.5, timeout=0.5
    ),
]

# (arrival time, function index): bursts that force queueing and cold
# starts, lulls that exercise warm reuse, one timeout per burst.
ARRIVALS = [
    (0.10, 0), (0.12, 1), (0.15, 0), (0.20, 2), (0.22, 3), (0.25, 0),
    (0.30, 1), (0.35, 2), (0.40, 0), (0.45, 1), (0.90, 2), (0.95, 0),
    (1.00, 1), (1.05, 2), (1.10, 0), (1.20, 3), (2.50, 0), (2.55, 1),
    (2.60, 2), (2.65, 0), (2.70, 1), (2.75, 2), (2.80, 0), (4.00, 3),
    (5.00, 0), (5.05, 1), (5.10, 2), (5.15, 0), (5.20, 1), (5.25, 2),
    (8.00, 0), (8.02, 0), (8.04, 0), (8.06, 0), (8.08, 0), (8.10, 0),
    (12.0, 1), (12.1, 2), (12.2, 3), (12.3, 0), (20.0, 0), (20.1, 1),
]


def reduce_run(records, spans, breakdowns) -> dict:
    """Reduce one run's telemetry views to the JSON-stable structure.

    Invocation ids are normalized relative to the smallest id observed in
    the records, so runs that number invocations from a process-global
    counter (single-process) and runs that number them by arrival ordinal
    (the cluster-shard engine) reduce identically.
    """
    base_id = min(r.invocation_id for r in records if r.invocation_id)

    def rel(invocation_id):
        return invocation_id - base_id if invocation_id else invocation_id

    def rel_tag(tag):
        return str(int(tag) - base_id) if tag is not None and tag.isdigit() else tag

    record_rows = sorted(
        [r.function, r.arrival, r.outcome.value, r.exec_time, r.e2e_time,
         r.queue_time, r.overhead, r.cold, r.worker, rel(r.invocation_id)]
        for r in records
    )
    span_rows = sorted(
        [s.name, s.start, s.end, rel_tag(s.tag)] for s in spans
    )
    breakdown_rows = sorted(
        [rel_tag(b.tag), b.exec_time, b.cold, b.start, b.end,
         [b.phases[p] for p in PHASES]]
        for b in breakdowns
    )
    phase_totals = {
        p: sum(b.phases[p] for b in breakdowns) for p in PHASES
    }
    return {
        "invocations": len(records),
        "records": record_rows,
        "spans": span_rows,
        "breakdowns": breakdown_rows,
        "phase_totals": phase_totals,
    }


def run_scenario(telemetry_config: TelemetryConfig = None,
                 return_telemetry: bool = False,
                 live_path=None):
    """Replay the fixed workload; return the JSON-stable reduction.

    ``telemetry_config`` overrides the default pipeline config (tests use
    it to opt the same fixed workload into causal tracing);
    ``return_telemetry`` additionally returns the live :class:`Telemetry`
    object as ``(reduction, telemetry)`` so callers can read views the
    reduction drops (trace events, contexts); ``live_path`` turns on the
    health heartbeat file (requires a health-enabled config).
    """
    env = Environment()
    cluster = Cluster(
        env,
        num_workers=3,
        config=WorkerConfig(cores=2, memory_mb=4096, seed=13, backend="containerd"),
        status_interval=2.0,
    )
    telemetry = Telemetry(
        env,
        telemetry_config or TelemetryConfig(interval=1.0, sample_energy=True),
    )
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    if live_path is not None:
        telemetry.enable_live(live_path)
    cluster.start()
    for reg in FUNCTIONS:
        cluster.register_sync(reg)

    def submit(at, fqdn):
        yield env.timeout(at)
        yield from cluster.invoke(fqdn)

    for at, idx in ARRIVALS:
        env.process(submit(at, FUNCTIONS[idx].fqdn()), name=f"sub-{at}")
    env.run(until=120.0)
    cluster.stop()
    telemetry.stop()

    reduction = reduce_run(
        telemetry.records(), telemetry.spans(), telemetry.breakdowns()
    )
    if return_telemetry:
        return reduction, telemetry
    return reduction


def normalized(data: dict) -> dict:
    """Round-trip through JSON so floats compare bit-for-bit with disk."""
    return json.loads(json.dumps(data))


if __name__ == "__main__":  # pragma: no cover - fixture (re)generation
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(run_scenario(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
