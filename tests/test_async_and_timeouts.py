"""Tests for the cookie-based async API and function execution timeouts."""

import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.core.results import AsyncStatus, ResultStore
from repro.metrics import Outcome


def make_worker(**overrides):
    env = Environment()
    defaults = dict(backend="null", cores=4, memory_mb=2048.0)
    defaults.update(overrides)
    worker = Worker(env, WorkerConfig(**defaults))
    worker.start()
    return env, worker


# ------------------------------------------------------------- result store
def test_result_store_lifecycle():
    clock = {"t": 0.0}
    store = ResultStore(clock=lambda: clock["t"], retention=100.0)
    cookie = store.register()
    assert store.check(cookie).status is AsyncStatus.PENDING
    store.complete(cookie, "result")
    polled = store.check(cookie)
    assert polled.status is AsyncStatus.DONE
    assert polled.invocation == "result"
    # One-shot collection: a second poll misses.
    assert store.check(cookie).status is AsyncStatus.GONE


def test_result_store_peek_without_collect():
    store = ResultStore(clock=lambda: 0.0)
    cookie = store.register()
    store.complete(cookie, "r")
    assert store.check(cookie, collect=False).status is AsyncStatus.DONE
    assert store.check(cookie).status is AsyncStatus.DONE  # still there


def test_result_store_retention_expiry():
    clock = {"t": 0.0}
    store = ResultStore(clock=lambda: clock["t"], retention=10.0)
    cookie = store.register()
    store.complete(cookie, "r")
    clock["t"] = 11.0
    assert store.check(cookie).status is AsyncStatus.GONE
    assert store.expired == 1


def test_result_store_unknown_cookie_and_validation():
    store = ResultStore(clock=lambda: 0.0)
    assert store.check("async-nope").status is AsyncStatus.GONE
    with pytest.raises(KeyError):
        store.complete("async-nope", "r")
    with pytest.raises(ValueError):
        ResultStore(clock=lambda: 0.0, retention=0.0)


# ------------------------------------------------------------- worker async
def test_cookie_async_invocation_round_trip():
    env, worker = make_worker()
    worker.register_sync(FunctionRegistration(name="f", warm_time=0.5,
                                              cold_time=1.0))
    cookie = worker.async_invoke_cookie("f.1")
    assert worker.check_async_invocation(cookie).status is AsyncStatus.PENDING
    env.run(until=30.0)
    polled = worker.check_async_invocation(cookie)
    assert polled.status is AsyncStatus.DONE
    assert polled.invocation.cold
    assert worker.check_async_invocation(cookie).status is AsyncStatus.GONE


def test_cookie_status_in_worker_status():
    env, worker = make_worker()
    worker.register_sync(FunctionRegistration(name="f", warm_time=1.0,
                                              cold_time=2.0))
    worker.async_invoke_cookie("f.1")
    assert worker.status()["async_pending"] == 1
    env.run(until=30.0)
    assert worker.status()["async_pending"] == 0


# ----------------------------------------------------------------- timeouts
def test_registration_timeout_validation():
    with pytest.raises(ValueError):
        FunctionRegistration(name="f", timeout=0.0)


def test_function_killed_after_timeout():
    env, worker = make_worker()
    worker.register_sync(
        FunctionRegistration(name="slow", warm_time=10.0, cold_time=20.0,
                             timeout=2.0)
    )
    inv = env.run_process(worker.invoke("slow.1"))
    assert inv.timed_out
    assert inv.completed_at - inv.arrival < 3.0  # killed promptly
    assert worker.timeouts == 1
    assert worker.metrics.outcomes()[Outcome.TIMEOUT] == 1
    # The zombie container was destroyed, not pooled.
    assert worker.pool.available_count() == 0
    env.run(until=env.now + 5.0)
    assert worker.memory.level == pytest.approx(2048.0)


def test_function_within_timeout_unaffected():
    env, worker = make_worker()
    worker.register_sync(
        FunctionRegistration(name="ok", warm_time=0.5, cold_time=1.0,
                             timeout=30.0)
    )
    inv = env.run_process(worker.invoke("ok.1"))
    assert not inv.timed_out
    assert worker.timeouts == 0
    inv2 = env.run_process(worker.invoke("ok.1"))
    assert not inv2.cold  # container pooled normally


def test_timeout_releases_concurrency_token():
    env, worker = make_worker(cores=1, bypass_enabled=False)
    worker.register_sync(
        FunctionRegistration(name="slow", warm_time=100.0, cold_time=100.0,
                             timeout=1.0)
    )
    worker.register_sync(FunctionRegistration(name="fast", warm_time=0.1,
                                              cold_time=0.2))
    first = worker.async_invoke("slow.1")
    env.run(until=0.5)
    second = worker.async_invoke("fast.1")
    env.run(until=30.0)
    assert first.value.timed_out
    assert second.triggered and not second.value.dropped


def test_timeout_records_overhead_sanely():
    env, worker = make_worker()
    worker.register_sync(
        FunctionRegistration(name="slow", warm_time=10.0, cold_time=10.0,
                             timeout=1.0)
    )
    inv = env.run_process(worker.invoke("slow.1"))
    # exec window closed at the kill: e2e ≈ timeout, not the full 10 s.
    assert inv.e2e_time == pytest.approx(1.0, abs=0.2)
