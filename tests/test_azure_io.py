"""Round-trip tests for the Azure CSV interchange format."""

import csv

import numpy as np
import pytest

from repro.trace.azure import AzureTraceConfig, generate_dataset
from repro.trace.azure_io import (
    DURATIONS_CSV,
    INVOCATIONS_CSV,
    MEMORY_CSV,
    load_azure_csvs,
    write_azure_csvs,
)
from repro.trace.replay import expand_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        AzureTraceConfig(num_functions=300, duration_minutes=120, seed=55)
    )


def test_write_creates_three_files(dataset, tmp_path):
    out = write_azure_csvs(dataset, tmp_path / "day01")
    for name in (INVOCATIONS_CSV, DURATIONS_CSV, MEMORY_CSV):
        assert (out / name).exists()


def test_round_trip_preserves_counts(dataset, tmp_path):
    out = write_azure_csvs(dataset, tmp_path)
    loaded = load_azure_csvs(out)
    assert loaded.total_invocations() == dataset.total_invocations()
    # Per-function counts survive keyed by name.
    orig = {dataset.names[fn]: dataset.total_invocations(fn)
            for fn in dataset.counts}
    for i, name in enumerate(loaded.names):
        assert loaded.total_invocations(i) == orig[name]


def test_round_trip_preserves_profiles(dataset, tmp_path):
    out = write_azure_csvs(dataset, tmp_path)
    loaded = load_azure_csvs(out)
    orig_by_name = {
        dataset.names[fn]: (
            dataset.memory_mb[fn],
            dataset.avg_runtime[fn],
            dataset.max_runtime[fn],
        )
        for fn in dataset.counts
    }
    for i, name in enumerate(loaded.names):
        mem, avg, mx = orig_by_name[name]
        assert loaded.memory_mb[i] == pytest.approx(mem, rel=1e-3)
        assert loaded.avg_runtime[i] == pytest.approx(avg, rel=1e-3)
        assert loaded.max_runtime[i] == pytest.approx(mx, rel=1e-3)


def test_round_trip_expands_identically(dataset, tmp_path):
    out = write_azure_csvs(dataset, tmp_path)
    loaded = load_azure_csvs(out)
    a = expand_dataset(dataset)
    b = expand_dataset(loaded)
    assert len(a) == len(b)
    assert np.allclose(np.sort(a.timestamps), np.sort(b.timestamps))


def test_load_drops_underused_functions(tmp_path):
    # Hand-write a minimal day with one single-invocation function.
    (tmp_path / INVOCATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
        "o,app1,busy,http,2,1,0\n"
        "o,app1,once,http,1,0,0\n"
    )
    (tmp_path / DURATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o,app1,busy,500,3,400,1500\n"
        "o,app1,once,100,1,100,100\n"
    )
    (tmp_path / MEMORY_CSV).write_text(
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
        "o,app1,2,400\n"
    )
    loaded = load_azure_csvs(tmp_path)
    assert loaded.names == ["busy"]
    # Cold-start estimate: max - avg (paper rule) = 1.0 s.
    assert loaded.init_cost()[0] == pytest.approx(1.0)
    # App memory split over the app's *loaded* function count.
    assert loaded.memory_mb[0] == pytest.approx(400.0)


def test_load_missing_memory_uses_default(tmp_path):
    (tmp_path / INVOCATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Trigger,1,2\n"
        "o,appX,f1,http,1,1\n"
    )
    (tmp_path / DURATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o,appX,f1,200,2,150,300\n"
    )
    (tmp_path / MEMORY_CSV).write_text(
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
    )
    loaded = load_azure_csvs(tmp_path, default_memory_mb=128.0)
    assert loaded.memory_mb[0] == pytest.approx(128.0)


def test_load_empty_rejected(tmp_path):
    (tmp_path / INVOCATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Trigger,1\n"
    )
    (tmp_path / DURATIONS_CSV).write_text(
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
    )
    (tmp_path / MEMORY_CSV).write_text(
        "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
    )
    with pytest.raises(ValueError):
        load_azure_csvs(tmp_path)


def test_written_invocations_schema(dataset, tmp_path):
    out = write_azure_csvs(dataset, tmp_path)
    with open(out / INVOCATIONS_CSV, newline="") as fh:
        header = next(csv.reader(fh))
    assert header[:4] == ["HashOwner", "HashApp", "HashFunction", "Trigger"]
    assert header[4] == "1"
    assert len(header) == 4 + dataset.config.duration_minutes
