"""The azure-scale runner: scaling rows, provenance, and the equality gate.

Runs are tiny (tens of functions, minutes of trace) — the point here is
the runner's plumbing, not its numbers: every shard count reduces to the
same summary, the JSON record carries the provenance convention
(``cpu_count``, ``WARNING`` on undersized machines), the CSV-directory
path round-trips, and sharding failures degrade to a recorded fallback
instead of an exception.
"""

import json

import pytest

from repro.experiments.azure_scale import run_azure_scale
from repro.trace.azure import AzureTraceConfig, generate_dataset
from repro.trace.azure_io import write_azure_csvs


def _tiny(**kwargs):
    kwargs.setdefault("num_functions", 30)
    kwargs.setdefault("minutes", 8)
    kwargs.setdefault("num_workers", 4)
    kwargs.setdefault("shard_counts", (1, 2))
    return run_azure_scale(**kwargs)


def test_azure_scale_rows_share_one_summary(tmp_path):
    out = tmp_path / "BENCH_azure_scale.json"
    report = _tiny(out_path=out)
    assert report.summaries_match
    assert [r.shards for r in report.rows] == [1, 2]
    assert report.rows[0].engine == "serial"
    for row in report.rows:
        assert row.summary == report.summary
        assert row.invocations == report.summary["invocations"]
        assert row.invocations > 0
        assert row.wall_s > 0
        assert row.inv_per_sec > 0
    # The sharded row carries the seam's message accounting (unless the
    # sandbox forced a serial fallback, which the row must say).
    sharded = report.rows[1]
    if sharded.fallback_reason is None:
        assert sharded.engine == "sharded"
        stats = sharded.seam_stats
        assert 0 < stats["messages_per_shard"] <= stats["epochs"] + 1


def test_azure_scale_record_provenance(tmp_path):
    out = tmp_path / "bench.json"
    report = _tiny(out_path=out)
    record = json.loads(out.read_text())
    assert record == report.record
    for key in ("benchmark", "dataset", "cpu_count", "rows",
                "summaries_match", "summary", "recorded_at",
                "scaling_meaningful", "rss_note"):
        assert key in record, key
    assert record["dataset"]["source"] == "synthetic"
    assert record["dataset"]["invocations"] == report.summary["invocations"]
    for row in record["rows"]:
        assert row["peak_rss_mb"] >= 0.0
    if record["cpu_count"] < 2:
        assert "WARNING" in record
        assert record["scaling_meaningful"] is False


def test_azure_scale_reads_csv_directory(tmp_path):
    dataset = generate_dataset(AzureTraceConfig(
        num_functions=25, duration_minutes=6, seed=99,
    ))
    data_dir = write_azure_csvs(dataset, tmp_path / "azure")
    out = tmp_path / "bench.json"
    report = run_azure_scale(
        data_dir, num_workers=3, shard_counts=(1,), out_path=out,
    )
    assert report.dataset["source"] == str(data_dir)
    assert report.summaries_match
    assert report.summary["invocations"] > 0


def test_azure_scale_rejects_bad_shard_counts(tmp_path):
    with pytest.raises(ValueError, match="shard counts"):
        _tiny(shard_counts=(0,), out_path=tmp_path / "b.json")


def test_azure_scale_records_fallback(tmp_path, monkeypatch):
    import repro.experiments.azure_scale as mod
    from repro.cluster_shard import ShardingUnavailable

    def boom(*args, **kwargs):
        raise ShardingUnavailable("test: no processes here")

    monkeypatch.setattr(mod, "run_sharded_replay", boom)
    report = _tiny(out_path=tmp_path / "b.json")
    sharded_row = report.rows[1]
    assert sharded_row.engine == "serial"
    assert "no processes here" in sharded_row.fallback_reason
    assert report.summaries_match
