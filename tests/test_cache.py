"""The content-addressed artifact cache: unit behavior and determinism.

The cache's contract is strict: experiment results must be bit-identical
whether the cache is off, cold (populating), or warm (replaying), because
cached artifacts are exact pickled round-trips of what the generators
produce.  The determinism tests here spot-check that contract end to end
on the cluster study and the Figure-6 litmus.
"""

import json
import pickle

import pytest

from repro.cache import (
    CACHE_ENV_VAR,
    ArtifactCache,
    cache_key,
    resolve_cache,
)
from repro.experiments import SMALL, fig6_rows, make_traces, run_cluster_study
from repro.trace.azure import AzureTraceConfig, generate_dataset


# ------------------------------------------------------------------- unit
def test_cache_key_is_stable_and_param_sensitive():
    a = cache_key("kind", {"seed": 1, "n": 10})
    assert a == cache_key("kind", {"n": 10, "seed": 1})  # dict order-free
    assert a != cache_key("kind", {"seed": 2, "n": 10})
    assert a != cache_key("other", {"seed": 1, "n": 10})
    assert a != cache_key("kind", {"seed": 1, "n": 10}, code_version=1)
    assert len(a) == 64


def test_get_or_create_hits_after_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    calls = []

    def factory():
        calls.append(1)
        return {"x": 42}

    key = cache_key("t", {"a": 1})
    assert cache.get_or_create(key, factory) == {"x": 42}
    assert cache.get_or_create(key, factory) == {"x": 42}
    assert calls == [1]
    assert cache.misses == 1 and cache.hits == 1


def test_corrupt_entry_is_a_miss_and_regenerates(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache_key("t", {"a": 1})
    cache.put(key, "good")
    cache.path_for(key).write_bytes(b"not a pickle")
    assert cache.get_or_create(key, lambda: "regenerated") == "regenerated"
    # The regenerated value was re-stored and is now readable.
    assert cache.get(key) == (True, "regenerated")


def test_resolve_cache_forms(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    explicit = ArtifactCache(tmp_path)
    assert resolve_cache(explicit) is explicit
    assert resolve_cache(str(tmp_path)).root == tmp_path
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "ambient"))
    assert resolve_cache(None).root == tmp_path / "ambient"
    assert resolve_cache(False) is None  # False beats the environment
    with pytest.raises(TypeError):
        resolve_cache(123)


def test_dataset_cache_round_trip_is_bit_identical(tmp_path):
    cfg = AzureTraceConfig(num_functions=50, duration_minutes=30, seed=7)
    fresh = generate_dataset(cfg, cache=False)
    cold = generate_dataset(cfg, cache=str(tmp_path))
    warm = generate_dataset(cfg, cache=str(tmp_path))
    assert pickle.dumps(fresh) == pickle.dumps(cold) == pickle.dumps(warm)
    assert fresh.fingerprint() == warm.fingerprint()


def test_make_traces_cached_matches_uncached(tmp_path):
    uncached = make_traces(SMALL, cache=False)
    cold = make_traces(SMALL, cache=str(tmp_path))
    warm = make_traces(SMALL, cache=str(tmp_path))
    assert list(uncached) == list(cold) == list(warm)
    for name in uncached:
        assert (
            pickle.dumps(uncached[name])
            == pickle.dumps(cold[name])
            == pickle.dumps(warm[name])
        ), name
    # The warm run served every artifact from disk: 1 dataset + 3 traces.
    store = ArtifactCache(tmp_path)
    assert sum(1 for _ in store.root.rglob("*.pkl")) == 4


# ----------------------------------------------------------- determinism
def _env_cache(monkeypatch, path):
    if path is None:
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(CACHE_ENV_VAR, str(path))


def test_cluster_study_bit_identical_across_cache_states(tmp_path, monkeypatch):
    outputs = []
    for cache_dir in (None, tmp_path / "c", tmp_path / "c"):  # off, cold, warm
        _env_cache(monkeypatch, cache_dir)
        result = run_cluster_study(SMALL)
        outputs.append(json.dumps(result.as_dict(), sort_keys=True))
    assert outputs[0] == outputs[1] == outputs[2]


def test_fig6_bit_identical_across_cache_states(tmp_path, monkeypatch):
    outputs = []
    for cache_dir in (None, tmp_path / "c", tmp_path / "c"):  # off, cold, warm
        _env_cache(monkeypatch, cache_dir)
        rows = fig6_rows(SMALL, workloads=("skew_frequency",), n_jobs=1)
        outputs.append(json.dumps(rows, sort_keys=True))
    assert outputs[0] == outputs[1] == outputs[2]
