"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table4_command(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "512" in out  # CNN memory


def test_table2_command(capsys):
    assert main(["table2", "--invocations", "20"]) == 0
    out = capsys.readouterr().out
    assert "call_container" in out


def test_table3_command_small(capsys):
    assert main(["--scale", "small", "table3"]) == 0
    out = capsys.readouterr().out
    assert "representative" in out and "rare" in out


def test_ablation_coldpath(capsys):
    assert main(["ablation", "--which", "coldpath"]) == 0
    out = capsys.readouterr().out
    assert "namespace_pool" in out


def test_export_azure_round_trip(tmp_path, capsys):
    assert main([
        "export-azure", "--out", str(tmp_path / "day"),
        "--functions", "100", "--minutes", "60", "--seed", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    from repro.trace.azure_io import load_azure_csvs

    loaded = load_azure_csvs(tmp_path / "day")
    assert loaded.total_invocations() > 0


def test_invalid_scale_rejected():
    with pytest.raises(SystemExit):
        main(["--scale", "galactic", "table4"])


def test_jobs_flag_parses():
    args = build_parser().parse_args(["--jobs", "4", "fig4"])
    assert args.jobs == 4
    args = build_parser().parse_args(["ablation", "--which", "lb"])
    assert args.jobs is None


def test_ablation_queue_with_jobs(capsys):
    assert main(["--jobs", "2", "ablation", "--which", "queue"]) == 0
    out = capsys.readouterr().out
    assert "Queue disciplines" in out
    assert "mqfq" in out


def test_cluster_study_compare_lb_flag_parses():
    args = build_parser().parse_args(["cluster-study", "--compare-lb"])
    assert args.compare_lb is True
