"""The sharded cluster engine must be invisible in the results.

Three layers of evidence:

* **Golden equivalence** — the fixed golden scenario replayed through
  ``run_sharded_replay`` at 1, 2, and 4 shards reduces bit-for-bit to
  ``tests/data/golden_cluster_study.json``, the fixture captured on the
  single-process invocation path.  Records, spans, per-invocation phase
  breakdowns, and the aggregate phase totals all match exactly.
* **Study equivalence** — ``run_cluster_study(shards=2)`` returns the
  same :class:`ClusterStudyResult` as the serial path on a real sampled
  trace (live-load balancing, so every arrival is a sync point).
* **Lookahead contract** — the epoch barrier never delivers a cross-seam
  dispatch earlier than ``pick_time + rpc_latency``; with the golden
  fixture the delivery time is *exactly* that, for every arrival.

Shard processes genuinely fork/spawn here; in sandboxes where they
cannot start the engine raises :class:`ShardingUnavailable` and the
process-backed tests skip (the pure-logic protocol tests still run).
"""

import dataclasses
import json

import numpy as np
import pytest

from tests.golden_scenario import (
    ARRIVALS,
    FUNCTIONS,
    GOLDEN_PATH,
    normalized,
    reduce_run,
)
from repro.cluster_shard import (
    ShardingUnavailable,
    partition_workers,
    resolve_shards,
    run_sharded_replay,
    sync_indices,
)
from repro.core.config import WorkerConfig
from repro.experiments import SMALL
from repro.experiments.cluster_study import run_cluster_study
from repro.loadgen.openloop import InvocationPlan
from repro.telemetry import TelemetryConfig

TINY = dataclasses.replace(SMALL, dataset_functions=400, dataset_minutes=120,
                           representative_n=50)

GOLDEN_CONFIG = WorkerConfig(cores=2, memory_mb=4096, seed=13,
                             backend="containerd")


def golden_plan() -> InvocationPlan:
    ts = np.array([at for at, _ in ARRIVALS])
    fqdns = [FUNCTIONS[idx].fqdn() for _, idx in ARRIVALS]
    return InvocationPlan(ts, fqdns, float(ts[-1]))


def sharded_golden(shards: int, **kwargs):
    try:
        return run_sharded_replay(
            golden_plan(),
            num_workers=3,
            shards=shards,
            registrations=FUNCTIONS,
            config=GOLDEN_CONFIG,
            status_interval=2.0,
            horizon=120.0,
            **kwargs,
        )
    except ShardingUnavailable as exc:  # pragma: no cover - sandbox dependent
        pytest.skip(f"shard processes unavailable here: {exc}")


# ---------------------------------------------------------------- protocol
def test_partition_workers_contiguous_and_balanced():
    assert partition_workers(6, 2) == [range(0, 3), range(3, 6)]
    assert partition_workers(5, 2) == [range(0, 2), range(2, 5)]
    parts = partition_workers(32, 5)
    assert [len(p) for p in parts] == [6, 6, 7, 6, 7]
    assert [i for p in parts for i in p] == list(range(32))


def test_partition_workers_clamps_shards():
    # More shards than workers degrades to one worker per shard; zero or
    # negative shard counts degrade to a single partition.
    assert partition_workers(2, 8) == [range(0, 1), range(1, 2)]
    assert partition_workers(3, 0) == [range(0, 3)]


def test_resolve_shards_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert resolve_shards(None) == 1
    assert resolve_shards(3) == 3
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert resolve_shards(None) == 4
    assert resolve_shards(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_SHARDS", "banana")
    with pytest.raises(ValueError):
        resolve_shards(None)


def test_sync_indices_round_robin_never_syncs():
    ts = np.array([0.1, 0.2, 0.3])
    assert sync_indices(ts, "round_robin", None) == frozenset()


def test_sync_indices_live_syncs_every_arrival():
    ts = np.array([0.1, 0.2, 0.3])
    assert sync_indices(ts, "ch_bl", None) == frozenset({0, 1, 2})


def test_sync_indices_snapshot_refresh_walk():
    # Mirrors StatusBoard's refresh rule: first read snapshots, then a new
    # snapshot only once the interval has elapsed since the *epoch-floored*
    # snapshot time.
    ts = np.array([at for at, _ in ARRIVALS])
    assert sync_indices(ts, "ch_bl", 2.0) == frozenset({0, 16, 23, 30, 36, 40})


def test_rpc_latency_must_be_positive():
    with pytest.raises(ValueError, match="lookahead"):
        run_sharded_replay(
            golden_plan(), num_workers=3, shards=2,
            registrations=FUNCTIONS, config=GOLDEN_CONFIG, rpc_latency=0.0,
        )


# ---------------------------------------------------------------- golden A/B
@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_golden_is_bit_identical(shards, golden):
    """The tentpole contract: N shard processes, same bits out."""
    outcome = sharded_golden(
        shards, telemetry_config=TelemetryConfig(interval=1.0, sample_energy=True)
    )
    tel = outcome.telemetry
    reduced = normalized(
        reduce_run(tel.records(), tel.spans(), tel.breakdowns())
    )
    assert reduced["invocations"] == golden["invocations"]
    assert reduced["phase_totals"] == golden["phase_totals"]
    assert reduced["records"] == golden["records"]
    assert reduced["spans"] == golden["spans"]
    assert reduced["breakdowns"] == golden["breakdowns"]


def test_sharded_golden_summaries_cover_all_arrivals():
    outcome = sharded_golden(2)
    assert [s[0] for s in outcome.summaries] == list(range(len(ARRIVALS)))
    assert outcome.placements == len(ARRIVALS)
    assert sum(outcome.per_worker_records.values()) == sum(
        1 for s in outcome.summaries if not s[1] and s[2]
    )


# ---------------------------------------------------------------- seam budget
def test_coordinator_sends_at_most_one_message_per_shard_per_epoch():
    """The epoch-batching contract, asserted at the protocol level: the
    coordinator's send count never exceeds one message per epoch plus the
    pipeline-priming sync request."""
    outcome = sharded_golden(2)
    stats = outcome.seam_stats
    assert stats is not None
    assert stats["sync_points"] == len(
        sync_indices(golden_plan().timestamps, "ch_bl", 2.0)
    )
    assert stats["epochs"] >= stats["sync_points"]
    assert 0 < stats["messages_per_shard"] <= stats["epochs"] + 1


def test_chunked_epochs_stay_bit_identical():
    """Splitting epochs into tiny chunks must not change a single bit —
    only the message count."""
    whole = sharded_golden(2)
    chunked = sharded_golden(2, chunk_size=4)
    assert chunked.summaries == whole.summaries
    assert chunked.per_worker_records == whole.per_worker_records
    assert chunked.seam_stats["messages_per_shard"] >= (
        whole.seam_stats["messages_per_shard"]
    )


# ---------------------------------------------------------------- seam log
def test_empty_plan_with_collect_seam():
    """Satellite regression: seam-log assembly on a plan with no arrivals
    must return an empty log, not trip over unbound locals."""
    plan = InvocationPlan(np.empty(0), [], 1.0)
    try:
        outcome = run_sharded_replay(
            plan, num_workers=3, shards=2, registrations=FUNCTIONS,
            config=GOLDEN_CONFIG, status_interval=2.0, horizon=5.0,
            collect_seam=True,
        )
    except ShardingUnavailable as exc:  # pragma: no cover - sandbox dependent
        pytest.skip(f"shard processes unavailable here: {exc}")
    assert outcome.summaries == []
    assert outcome.seam_log == []
    assert outcome.placements == 0
    assert outcome.seam_stats["epochs"] == 0


def test_assemble_seam_log_merges_and_orders():
    from repro.cluster_shard.coordinator import _assemble_seam_log

    ts = np.array([1.0, 2.0, 3.0])
    parts = [[(2, 3.5), (0, 1.5)], [], None, [(1, 2.5)]]
    assert _assemble_seam_log(ts, parts) == [
        (0, 1.0, 1.5), (1, 2.0, 2.5), (2, 3.0, 3.5),
    ]
    assert _assemble_seam_log(ts, []) == []
    assert _assemble_seam_log(np.empty(0), [[], []]) == []


# ---------------------------------------------------------------- lookahead
def test_seam_never_beats_the_lookahead():
    """Conservative-epoch soundness: no cross-seam message is delivered
    to a worker earlier than its pick time plus the seam latency."""
    latency = 0.0005
    outcome = sharded_golden(2, rpc_latency=latency, collect_seam=True)
    assert outcome.seam_log, "collect_seam produced no entries"
    assert len(outcome.seam_log) == len(ARRIVALS)
    for k, pick_t, deliver_t in outcome.seam_log:
        assert deliver_t >= pick_t + latency - 1e-12, (
            f"arrival {k} delivered at {deliver_t}, "
            f"before pick {pick_t} + lookahead {latency}"
        )
        # With a frozen-clock seam the delivery is exactly the lookahead.
        assert deliver_t == pytest.approx(pick_t + latency, abs=1e-12)


# ---------------------------------------------------------------- study path
def test_cluster_study_sharded_matches_serial():
    serial = run_cluster_study(TINY, duration_cap=400.0, num_workers=3,
                               cores_per_worker=4, shards=1)
    try:
        sharded = run_cluster_study(TINY, duration_cap=400.0, num_workers=3,
                                    cores_per_worker=4, shards=2)
    except ShardingUnavailable as exc:  # pragma: no cover - sandbox dependent
        pytest.skip(f"shard processes unavailable here: {exc}")
    assert sharded.as_dict() == serial.as_dict()
    assert sharded.per_worker_invocations == serial.per_worker_invocations


def test_cluster_study_shards_fall_back_serially(monkeypatch):
    """When shard processes cannot start the study still answers."""
    import repro.experiments.cluster_study as mod

    def boom(*args, **kwargs):
        raise ShardingUnavailable("test: no processes here")

    monkeypatch.setattr(mod, "run_sharded_replay", boom)
    with pytest.warns(RuntimeWarning, match="sharding unavailable"):
        result = run_cluster_study(TINY, duration_cap=300.0, num_workers=2,
                                   cores_per_worker=4, shards=2)
    assert result.invocations > 0
