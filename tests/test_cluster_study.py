"""Unit tests for the full-stack cluster study experiment."""

import dataclasses

import pytest

from repro.experiments import SMALL, run_cluster_study
from repro.experiments.cluster_study import ClusterStudyResult

TINY = dataclasses.replace(SMALL, dataset_functions=400, dataset_minutes=120,
                           representative_n=50)


@pytest.fixture(scope="module")
def result():
    return run_cluster_study(TINY, duration_cap=400.0, num_workers=3,
                             cores_per_worker=4)


def test_study_completes_workload(result):
    assert result.invocations > 50
    assert result.completed + result.dropped == result.invocations
    assert result.drop_ratio < 0.05


def test_study_hits_load_target(result):
    # 0.6 * 3 workers * 4 cores = 7.2 expected concurrency.
    assert result.total_load == pytest.approx(7.2, abs=0.2)


def test_study_uses_all_workers(result):
    assert len(result.per_worker_invocations) == 3
    assert all(v > 0 for v in result.per_worker_invocations.values())
    assert sum(result.per_worker_invocations.values()) == result.completed


def test_study_keepalive_effective(result):
    assert 0.0 < result.cold_ratio < 0.9


def test_study_row_shape(result):
    row = result.as_dict()
    assert {"invocations", "completed", "dropped", "cold_ratio",
            "e2e_p50_ms", "e2e_p99_ms", "overhead_p50_ms", "forwards",
            "placements", "littles_load"} == set(row)


def test_study_validation():
    with pytest.raises(ValueError):
        run_cluster_study(TINY, target_load_fraction=0.0)


def test_lb_policy_selectable():
    r = run_cluster_study(TINY, duration_cap=300.0, num_workers=2,
                          cores_per_worker=4, lb_policy="round_robin")
    assert isinstance(r, ClusterStudyResult)
    assert r.forwards == 0  # round-robin has no forwarding concept
