"""Unit tests for worker configuration and JSON loading."""

import json

import pytest

from repro.core.config import WorkerConfig, WorkerLatencyProfile, load_config
from repro.errors import ConfigurationError


def test_default_config_valid():
    cfg = WorkerConfig()
    assert cfg.cores == 48
    assert cfg.effective_concurrency == 48


def test_explicit_concurrency_limit():
    cfg = WorkerConfig(concurrency_limit=96)
    assert cfg.effective_concurrency == 96


@pytest.mark.parametrize(
    "overrides",
    [
        {"cores": 0},
        {"memory_mb": 0.0},
        {"concurrency_limit": 0},
        {"queue_max_len": 0},
        {"bypass_duration": -1.0},
        {"memory_wait_timeout": -1.0},
        {"eviction_interval": 0.0},
        {"free_memory_buffer_mb": -1.0},
        {"memory_mb": 100.0, "free_memory_buffer_mb": 200.0},
        {"namespace_pool_size": -1},
        {"load_sample_interval": 0.0},
    ],
)
def test_config_validation(overrides):
    with pytest.raises(ConfigurationError):
        WorkerConfig(**overrides)


def test_with_overrides_returns_new_config():
    base = WorkerConfig()
    derived = base.with_overrides(cores=8, name="w2")
    assert derived.cores == 8
    assert derived.name == "w2"
    assert base.cores == 48  # frozen original untouched


def test_latency_profile_validation():
    with pytest.raises(ConfigurationError):
        WorkerLatencyProfile(invoke=-0.001)


def test_load_config_from_dict():
    cfg = load_config({"cores": 12, "queue_policy": "sjf"})
    assert cfg.cores == 12
    assert cfg.queue_policy == "sjf"


def test_load_config_overrides_win():
    cfg = load_config({"cores": 12}, cores=24)
    assert cfg.cores == 24


def test_load_config_from_json_file(tmp_path):
    path = tmp_path / "worker.json"
    path.write_text(json.dumps({
        "name": "json-worker",
        "cores": 6,
        "latency": {"invoke": 0.001},
    }))
    cfg = load_config(path)
    assert cfg.name == "json-worker"
    assert cfg.cores == 6
    assert cfg.latency.invoke == 0.001


def test_load_config_unknown_key_rejected():
    with pytest.raises(ConfigurationError):
        load_config({"not_a_real_option": 1})


def test_load_config_bad_source_type():
    with pytest.raises(ConfigurationError):
        load_config(42)  # type: ignore[arg-type]


def test_load_config_none_gives_defaults():
    assert load_config() == WorkerConfig()
