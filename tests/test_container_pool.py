"""Unit tests for the worker's container pool."""

import pytest

from repro.containers.backends import NullBackend
from repro.core.container_pool import ContainerPool
from repro.core.function import FunctionRegistration
from repro.keepalive.policies import GreedyDualPolicy, LRUPolicy, TTLPolicy
from repro.sim import Environment, Gauge


REG = FunctionRegistration(name="f", memory_mb=100.0, warm_time=0.1, cold_time=0.5)
REG2 = FunctionRegistration(name="g", memory_mb=100.0, warm_time=0.1, cold_time=0.5)


def make_pool(policy=None, capacity=1000.0, buffer=0.0):
    env = Environment()
    backend = NullBackend(env)
    memory = Gauge(env, capacity=capacity)
    pool = ContainerPool(env, backend, policy or LRUPolicy(), memory,
                         free_buffer_mb=buffer)
    return env, backend, memory, pool


def cold_start(env, memory, pool, reg=REG):
    assert memory.try_take(reg.memory_mb)
    container = env.run_process(pool.backend.create(reg))
    return pool.add_in_use(container, init_cost=reg.init_time)


def test_acquire_returns_none_when_empty():
    env, _b, _m, pool = make_pool()
    assert pool.try_acquire("f.1") is None
    assert not pool.has_available("f.1")


def test_add_return_acquire_cycle():
    env, _b, memory, pool = make_pool()
    entry = cold_start(env, memory, pool)
    assert pool.in_use_count() == 1
    pool.return_entry(entry)
    assert pool.available_count("f.1") == 1
    again = pool.try_acquire("f.1")
    assert again is entry
    assert entry.freq == 2
    assert pool.in_use_count() == 1


def test_return_unknown_entry_raises():
    env, _b, memory, pool = make_pool()
    entry = cold_start(env, memory, pool)
    pool.return_entry(entry)
    with pytest.raises(ValueError):
        pool.return_entry(entry)


def test_evict_for_frees_memory():
    env, _b, memory, pool = make_pool(capacity=200.0)
    e1 = cold_start(env, memory, pool, REG)
    pool.return_entry(e1)
    e2 = cold_start(env, memory, pool, REG2)
    pool.return_entry(e2)
    assert memory.level == 0.0
    freed = pool.evict_for(100.0)
    assert freed == pytest.approx(100.0)
    env.run(until=1.0)  # let async destroy complete
    assert memory.level == pytest.approx(100.0)
    assert pool.evictions == 1


def test_evict_for_skips_in_use():
    env, _b, memory, pool = make_pool(capacity=200.0)
    cold_start(env, memory, pool, REG)  # stays in use
    assert pool.evict_for(100.0) == 0.0
    assert pool.in_use_count() == 1


def test_ttl_expiry_in_sweep():
    env, _b, memory, pool = make_pool(policy=TTLPolicy(ttl=10.0))
    entry = cold_start(env, memory, pool)
    pool.return_entry(entry)
    env.run(until=11.0)
    pool.sweep()
    env.run(until=12.0)
    assert pool.available_count() == 0
    assert pool.expirations == 1
    assert memory.level == pytest.approx(1000.0)


def test_sweep_restores_free_buffer():
    env, _b, memory, pool = make_pool(capacity=300.0, buffer=150.0)
    e1 = cold_start(env, memory, pool, REG)
    pool.return_entry(e1)
    e2 = cold_start(env, memory, pool, REG2)
    pool.return_entry(e2)
    assert memory.level == pytest.approx(100.0)  # below the 150 buffer
    pool.sweep()
    env.run(until=1.0)
    assert memory.level >= 150.0


def test_background_evictor_process():
    env, _b, memory, pool = make_pool(policy=TTLPolicy(ttl=5.0))
    entry = cold_start(env, memory, pool)
    pool.return_entry(entry)
    env.process(pool.evictor())
    env.run(until=10.0)
    pool.stop()
    assert pool.available_count() == 0


def test_expired_entry_reaped_on_acquire():
    env, _b, memory, pool = make_pool(policy=TTLPolicy(ttl=5.0))
    entry = cold_start(env, memory, pool)
    pool.return_entry(entry)
    env.run(until=6.0)
    assert pool.try_acquire("f.1") is None
    assert pool.expirations == 1


def test_gd_policy_orders_victims():
    env, backend, memory, pool = make_pool(policy=GreedyDualPolicy(),
                                           capacity=1000.0)
    cheap = FunctionRegistration(name="cheap", memory_mb=400.0,
                                 warm_time=0.1, cold_time=0.2)
    dear = FunctionRegistration(name="dear", memory_mb=50.0,
                                warm_time=0.1, cold_time=5.0)
    e1 = cold_start(env, memory, pool, cheap)
    pool.return_entry(e1)
    e2 = cold_start(env, memory, pool, dear)
    pool.return_entry(e2)
    pool.evict_for(100.0)
    env.run(until=1.0)
    assert pool.available_count("cheap.1") == 0
    assert pool.available_count("dear.1") == 1


def test_discard_in_use_releases_memory():
    env, _b, memory, pool = make_pool()
    entry = cold_start(env, memory, pool)
    env.run_process(pool.discard_in_use(entry))
    assert pool.in_use_count() == 0
    assert memory.level == pytest.approx(1000.0)


def test_pool_validation():
    env = Environment()
    backend = NullBackend(env)
    memory = Gauge(env, capacity=100.0)
    with pytest.raises(ValueError):
        ContainerPool(env, backend, LRUPolicy(), memory, free_buffer_mb=-1.0)
    with pytest.raises(ValueError):
        ContainerPool(env, backend, LRUPolicy(), memory, eviction_interval=0.0)
