"""Unit tests for the container substrate (backends, agent, pools, images)."""

import numpy as np
import pytest

from repro.containers import (
    Agent,
    ContainerdBackend,
    ContainerState,
    CrunBackend,
    DockerBackend,
    HttpClientPool,
    ImageLayer,
    ImageManifest,
    ImageRegistry,
    NamespacePool,
    NullBackend,
    make_backend,
)
from repro.core.function import FunctionRegistration
from repro.sim import Environment


REG = FunctionRegistration(name="f", memory_mb=128.0, warm_time=0.1, cold_time=0.5)


def rng():
    return np.random.default_rng(0)


# ---------------------------------------------------------------- backends
def test_null_backend_zero_cost_create():
    env = Environment()
    backend = NullBackend(env)
    container = env.run_process(backend.create(REG))
    assert env.now == 0.0
    assert container.state is ContainerState.AVAILABLE
    assert backend.created == 1


def test_null_backend_invoke_is_pure_timeout():
    env = Environment()
    backend = NullBackend(env)
    container = env.run_process(backend.create(REG))
    result = env.run_process(backend.invoke(container, 2.5))
    assert env.now == pytest.approx(2.5)
    assert result["status"] == "ok"
    assert container.invocations == 1


def test_null_backend_destroy():
    env = Environment()
    backend = NullBackend(env, destroy_latency=0.1)
    container = env.run_process(backend.create(REG))
    env.run_process(backend.destroy(container))
    assert container.state is ContainerState.DESTROYED
    assert env.now == pytest.approx(0.1)
    assert backend.destroyed == 1


def test_simulated_backend_create_latency_ordering():
    times = {}
    for cls in (CrunBackend, ContainerdBackend, DockerBackend):
        env = Environment()
        backend = cls(env, rng=rng())
        env.run_process(backend.create(REG, namespace="ns-1"))
        times[cls.__name__] = env.now
    # Paper: crun ~150 ms < containerd ~300 ms < Docker ~400 ms.
    assert times["CrunBackend"] < times["ContainerdBackend"] < times["DockerBackend"]


def test_simulated_backend_pays_namespace_latency_without_pool():
    env1 = Environment()
    b1 = ContainerdBackend(env1, rng=rng())
    env1.run_process(b1.create(REG, namespace="pooled"))
    env2 = Environment()
    b2 = ContainerdBackend(env2, rng=rng())
    env2.run_process(b2.create(REG, namespace=None))
    assert env2.now - env1.now == pytest.approx(0.100, abs=1e-6)


def test_simulated_backend_invoke_includes_http_overhead():
    env = Environment()
    backend = ContainerdBackend(env, rng=rng())
    container = env.run_process(backend.create(REG, namespace="ns"))
    start = env.now
    env.run_process(backend.invoke(container, 1.0))
    overhead = env.now - start - 1.0
    assert overhead > 0
    assert overhead < 0.05


def test_simulated_backend_invoke_requires_available_state():
    env = Environment()
    backend = ContainerdBackend(env, rng=rng())
    container = env.run_process(backend.create(REG, namespace="ns"))
    container.state = ContainerState.DESTROYED
    with pytest.raises(RuntimeError):
        env.run_process(backend.invoke(container, 1.0))


def test_make_backend_factory():
    env = Environment()
    assert isinstance(make_backend("null", env), NullBackend)
    assert isinstance(make_backend("containerd", env), ContainerdBackend)
    assert isinstance(make_backend("DOCKER", env), DockerBackend)
    with pytest.raises(ValueError):
        make_backend("lxc", env)


# -------------------------------------------------------------------- agent
def test_agent_not_ready_until_started():
    env = Environment()
    agent = Agent(env, rng())
    assert not agent.status()
    env.run_process(agent.start(0.08))
    assert agent.status()
    assert env.now == pytest.approx(0.08)


def test_agent_invoke_requires_ready():
    env = Environment()
    agent = Agent(env, rng())
    with pytest.raises(RuntimeError):
        env.run_process(agent.invoke(1.0))


def test_agent_cold_handshake_costs_more():
    env = Environment()
    agent = Agent(env, np.random.default_rng(1))
    env.run_process(agent.start(0.0))
    t0 = env.now
    env.run_process(agent.invoke(0.0, cold_handshake=True))
    cold_cost = env.now - t0
    t1 = env.now
    env.run_process(agent.invoke(0.0, cold_handshake=False))
    warm_cost = env.now - t1
    assert cold_cost > warm_cost


# ---------------------------------------------------------------- http pool
def test_http_pool_caches_clients():
    pool = HttpClientPool(enabled=True)
    assert pool.connection_cost("c1") == pool.NEW_CLIENT_COST
    assert pool.connection_cost("c1") == 0.0
    assert pool.hits == 1 and pool.misses == 1
    assert len(pool) == 1


def test_http_pool_disabled_always_pays():
    pool = HttpClientPool(enabled=False)
    assert pool.connection_cost("c1") == pool.NEW_CLIENT_COST
    assert pool.connection_cost("c1") == pool.NEW_CLIENT_COST
    assert len(pool) == 0


def test_http_pool_forget():
    pool = HttpClientPool()
    pool.connection_cost("c1")
    pool.forget("c1")
    assert pool.connection_cost("c1") == pool.NEW_CLIENT_COST


# ------------------------------------------------------------ namespace pool
def test_namespace_pool_starts_full():
    env = Environment()
    pool = NamespacePool(env, target_size=4)
    assert len(pool) == 4
    ns = pool.acquire()
    assert ns is not None
    assert len(pool) == 3
    assert pool.hits == 1


def test_namespace_pool_miss_when_empty():
    env = Environment()
    pool = NamespacePool(env, target_size=1)
    pool.acquire()
    assert pool.acquire() is None
    assert pool.misses == 1
    assert pool.miss_latency() == pytest.approx(0.1)


def test_namespace_pool_disabled():
    env = Environment()
    pool = NamespacePool(env, target_size=8, enabled=False)
    assert len(pool) == 0
    assert pool.acquire() is None


def test_namespace_pool_release_caps_at_target():
    env = Environment()
    pool = NamespacePool(env, target_size=2)
    pool.release("extra-1")
    assert len(pool) == 2  # already full, release dropped


def test_namespace_pool_refiller_tops_up():
    env = Environment()
    pool = NamespacePool(env, target_size=3)
    for _ in range(3):
        pool.acquire()
    env.process(pool.refiller())
    env.run(until=1.0)
    pool.stop()
    assert len(pool) == 3


def test_namespace_pool_validation():
    env = Environment()
    with pytest.raises(ValueError):
        NamespacePool(env, target_size=-1)
    with pytest.raises(ValueError):
        NamespacePool(env, create_latency=-0.1)


# ------------------------------------------------------------------- images
def test_image_registry_pull_latency_scales_with_size():
    env = Environment()
    registry = ImageRegistry(env, bandwidth_mb_per_s=100.0)
    registry.push(ImageManifest("small", (ImageLayer("sha256:s", 10.0),)))
    registry.push(ImageManifest("large", (ImageLayer("sha256:l", 1000.0),)))
    env.run_process(registry.pull("small"))
    small_t = env.now
    env.run_process(registry.pull("large"))
    large_t = env.now - small_t
    assert large_t > small_t


def test_image_registry_layer_cache():
    env = Environment()
    registry = ImageRegistry(env)
    shared = ImageLayer("sha256:base", 50.0)
    registry.push(ImageManifest("a", (shared, ImageLayer("sha256:a", 10.0))))
    registry.push(ImageManifest("b", (shared, ImageLayer("sha256:b", 10.0))))
    env.run_process(registry.pull("a"))
    t_a = env.now
    env.run_process(registry.pull("b"))
    t_b = env.now - t_a
    assert registry.cached_layer_hits == 1
    assert t_b < t_a  # base layer not re-fetched


def test_image_registry_unknown_image_synthesized():
    env = Environment()
    registry = ImageRegistry(env)
    manifest = env.run_process(registry.pull("unknown/image:tag"))
    assert registry.has_image("unknown/image:tag")
    assert manifest.layers


def test_manifest_platform_filter():
    m = ImageManifest(
        "multi",
        (
            ImageLayer("l1", 10.0, os="linux", arch="amd64"),
            ImageLayer("l2", 10.0, os="linux", arch="arm64"),
        ),
    )
    assert len(m.relevant_layers("linux", "amd64")) == 1
