"""Final coverage batch: smaller API corners across the stack."""

import numpy as np
import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.loadgen import ClosedLoopResult, run_closed_loop
from repro.sim import PriorityStore, Store
from repro.trace import AzureTraceConfig, generate_dataset
from repro.trace.replay import expand_dataset


# ------------------------------------------------------- closed-loop result
def test_closed_loop_result_empty():
    r = ClosedLoopResult(duration=10.0)
    assert r.completed == []
    assert r.overheads().size == 0
    assert r.throughput == 0.0


def test_closed_loop_result_throughput_nan_without_duration():
    r = ClosedLoopResult(duration=0.0)
    assert np.isnan(r.throughput)


# ----------------------------------------------------------- store corners
def test_store_items_property_visibility():
    env = Environment()
    s = Store(env)
    s.put("a")
    env.run()
    assert s.items == ["a"]
    assert len(s) == 1


def test_priority_store_capacity_blocks():
    env = Environment()
    s = PriorityStore(env, capacity=1)
    done = []

    def producer():
        yield s.put("x", priority=1)
        done.append(("x", env.now))
        yield s.put("y", priority=0)
        done.append(("y", env.now))

    def consumer():
        yield env.timeout(3.0)
        item = yield s.get()
        done.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    # y's put blocked until the consumer drained x at t=3.
    assert ("x", 0.0) in done
    assert ("y", 3.0) in done


# ------------------------------------------------------------ worker corners
def test_worker_invoke_generator_convenience():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.start()
    worker.register_sync(FunctionRegistration(name="f"))

    def caller():
        inv = yield from worker.invoke("f.1")
        return inv

    inv = env.run_process(caller())
    assert inv.completed_at is not None


def test_worker_stop_idempotent():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.start()
    worker.stop()
    worker.stop()  # must not raise


def test_worker_args_passthrough():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.start()
    worker.register_sync(FunctionRegistration(name="f"))
    inv = env.run_process(worker.invoke("f.1", args={"x": 1}))
    assert inv.args == {"x": 1}


# -------------------------------------------------------------- trace misc
def test_dataset_total_invocations_per_function():
    ds = generate_dataset(AzureTraceConfig(num_functions=100,
                                           duration_minutes=60, seed=4))
    fn = sorted(ds.counts)[0]
    assert ds.total_invocations(fn) == int(ds.counts[fn][1].sum())
    assert ds.total_invocations() == sum(
        ds.total_invocations(f) for f in ds.counts
    )


def test_expand_dataset_empty_selection():
    ds = generate_dataset(AzureTraceConfig(num_functions=50,
                                           duration_minutes=30, seed=5))
    trace = expand_dataset(ds, [])
    assert len(trace) == 0
    assert trace.num_functions == 0


def test_trace_merge_single_preserves_names():
    from repro.trace.model import Trace, TraceFunction

    f = TraceFunction(name="solo", memory_mb=10.0, warm_time=0.1,
                      cold_time=0.2)
    t = Trace([f], np.array([0.0]), np.array([0]), duration=1.0)
    merged = Trace.merge([t])
    assert merged.functions[0].name == "solo"


# ---------------------------------------------------------------- cli misc
def test_cli_ablation_queue_only(capsys):
    from repro.cli import main

    assert main(["ablation", "--which", "queue"]) == 0
    out = capsys.readouterr().out
    assert "mqfq" in out
    assert "Bypass" not in out  # only the requested section ran
