"""Determinism regression tests: same seed → identical results.

The paper's motivation for a predictable platform extends to this
reproduction: every experiment must be exactly repeatable from its seed,
or regressions would hide inside run-to-run noise.
"""

import numpy as np

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.keepalive.simulator import simulate
from repro.loadgen import FunctionMix, build_plan, replay_plan
from repro.metrics import load_spans_jsonl
from repro.sim.distributions import Exponential
from repro.trace import AzureTraceConfig, generate_dataset, standard_samples


def _run_worker_workload(seed: int) -> list[tuple]:
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="containerd", cores=4,
                                      memory_mb=2048.0, seed=seed))
    worker.start()
    for i in range(3):
        worker.register_sync(
            FunctionRegistration(name=f"f{i}", warm_time=0.1 + 0.1 * i,
                                 cold_time=0.5 + 0.2 * i, memory_mb=128.0)
        )
    mixes = [FunctionMix(f"f{i}.1", Exponential(0.5 + 0.3 * i)) for i in range(3)]
    plan = build_plan(mixes, duration=30.0, seed=seed)
    invocations = replay_plan(env, worker, plan, grace=60.0)
    worker.stop()
    return [
        (i.function.fqdn(), round(i.arrival, 9), i.cold,
         round(i.e2e_time, 9), i.dropped)
        for i in invocations
    ]


def test_worker_workload_bitwise_repeatable():
    assert _run_worker_workload(seed=42) == _run_worker_workload(seed=42)


def test_worker_workload_seed_sensitivity():
    assert _run_worker_workload(seed=42) != _run_worker_workload(seed=43)


def test_keepalive_simulation_repeatable():
    dataset = generate_dataset(
        AzureTraceConfig(num_functions=400, duration_minutes=120, seed=9)
    )
    traces = standard_samples(dataset, rare_n=80, representative_n=40,
                              random_n=20)
    for trace in traces.values():
        a = simulate(trace, "GD", 4096.0)
        b = simulate(trace, "GD", 4096.0)
        assert a.cold_starts == b.cold_starts
        assert a.total_cold_overhead == b.total_cold_overhead
        assert a.evictions == b.evictions


def test_trace_generation_repeatable():
    cfg = AzureTraceConfig(num_functions=500, duration_minutes=60, seed=77)
    a, b = generate_dataset(cfg), generate_dataset(cfg)
    assert sorted(a.counts) == sorted(b.counts)
    for fn in a.counts:
        assert np.array_equal(a.counts[fn][0], b.counts[fn][0])
        assert np.array_equal(a.counts[fn][1], b.counts[fn][1])


def test_span_jsonl_round_trip(tmp_path):
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.spans.keep_spans = True
    worker.start()
    worker.register_sync(FunctionRegistration(name="f"))
    env.run_process(worker.invoke("f.1"))
    worker.stop()
    path = tmp_path / "spans.jsonl"
    written = worker.spans.dump_jsonl(path)
    assert written == len(worker.spans.spans()) > 0
    loaded = load_spans_jsonl(path)
    assert [s.name for s in loaded] == [s.name for s in worker.spans.spans()]
    assert loaded[0].duration >= 0
