"""Dispatch-layer tests: the policy contract, the pull queue under
adversarial shapes, factory errors, shard-seam refusal, and the inspect
section's fallbacks."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.dispatch import (
    LocalityPullDispatch,
    Offer,
    PullDispatch,
    PushDispatch,
    dispatch_policy_names,
    is_pull_policy,
    make_dispatch,
)
from repro.loadbalancer.cluster import Cluster
from repro.loadbalancer.policies import make_balancer
from repro.sim.core import Environment
from repro.telemetry import Telemetry, TelemetryConfig


def _load(_name):
    return 0.0


def _policy(name, env):
    return make_dispatch(name, env=env, load_fn=_load,
                         warm_fn=lambda _w, _f: False)


# ------------------------------------------------------------ registry

def test_registry_covers_push_and_pull():
    names = dispatch_policy_names()
    assert "ch_bl" in names and "pull" in names and "pull_local" in names
    env = Environment()
    for name in names:
        policy = _policy(name, env)
        assert policy.kind in ("push", "pull")
        assert is_pull_policy(name) == (policy.kind == "pull")


def test_make_dispatch_unknown_name_lists_choices():
    with pytest.raises(ValueError) as err:
        make_dispatch("random", env=Environment())
    message = str(err.value)
    assert "random" in message
    for name in dispatch_policy_names():
        assert name in message


def test_make_dispatch_pull_requires_env():
    with pytest.raises(ValueError, match="env"):
        make_dispatch("pull")


def test_make_balancer_unknown_name_lists_choices():
    with pytest.raises(ValueError) as err:
        make_balancer("bogus", _load)
    message = str(err.value)
    assert "bogus" in message
    for name in ("ch_bl", "chbl", "round_robin", "least_loaded"):
        assert name in message


def test_make_balancer_points_pull_names_at_dispatch():
    with pytest.raises(ValueError, match="make_dispatch"):
        make_balancer("pull", _load)


# ------------------------------------- add/remove across every policy

@pytest.mark.parametrize("name", dispatch_policy_names())
def test_add_remove_workers_mid_run(name):
    """Every registered policy survives membership churn mid-run."""
    env = Environment()
    policy = _policy(name, env)
    for w in ("w-0", "w-1", "w-2"):
        policy.add_worker(w)

    if policy.kind == "push":
        # Exercise the policy, then shrink and grow it mid-stream.
        picks = [policy.balancer.pick(f"fn-{i}.1") for i in range(6)]
        assert set(picks) <= {"w-0", "w-1", "w-2"}
        policy.remove_worker("w-1")
        picks = [policy.balancer.pick(f"fn-{i}.1") for i in range(6)]
        assert set(picks) <= {"w-0", "w-2"}
        policy.add_worker("w-3")
        picks = [policy.balancer.pick(f"fn-{i}.1") for i in range(12)]
        assert set(picks) <= {"w-0", "w-2", "w-3"}
    else:
        done = object()
        policy.offer(Offer("fn.1", None, 0.0, done))
        assert policy.claim("w-1") is not None
        policy.remove_worker("w-1")
        policy.offer(Offer("fn.1", None, 1.0, done))
        # Removed workers can no longer claim; remaining ones can.
        assert policy.claim("w-1") is None
        assert policy.claim("w-0") is not None
        policy.add_worker("w-3")
        policy.offer(Offer("fn.1", None, 2.0, done))
        assert policy.claim("w-3") is not None

    # Double removal and never-registered names fail identically.
    with pytest.raises(ValueError, match="not registered"):
        policy.remove_worker("w-1")
    with pytest.raises(ValueError, match="not registered"):
        policy.remove_worker("never-added")


def test_push_adapter_offer_is_the_pick():
    env = Environment()
    policy = _policy("round_robin", env)
    policy.add_worker("a")
    policy.add_worker("b")
    offer = Offer("fn.1", None, 0.0, object())
    target = policy.offer(offer)
    assert target in ("a", "b")
    assert offer.claimed_by == target
    assert offer.claimed_at == offer.offered_at
    # Push workers never claim.
    assert policy.claim("a") is None


# ------------------------------------------- pull queue, adversarially

def test_claim_on_empty_queue_returns_none():
    env = Environment()
    policy = PullDispatch(env)
    policy.add_worker("w-0")
    assert policy.claim("w-0") is None
    assert policy.claim("unknown") is None
    assert len(policy) == 0


def test_simultaneous_idle_workers_claim_exactly_one_each():
    """Two parked workers, two offers in one timestep: each claims one."""
    env = Environment()
    policy = PullDispatch(env)
    claims = []
    for w in ("w-0", "w-1"):
        policy.add_worker(w)

    def claim_loop(name):
        offer = policy.claim(name)
        while offer is None:
            yield policy.wait(name)
            offer = policy.claim(name)
        claims.append((name, offer))

    for w in ("w-0", "w-1"):
        env.process(claim_loop(w), name=f"loop-{w}")

    def producer():
        yield env.timeout(1.0)
        policy.offer(Offer("fn.1", None, env.now, object()))
        policy.offer(Offer("fn.2", None, env.now, object()))

    env.process(producer(), name="producer")
    env.run(until=5.0)
    assert len(claims) == 2
    assert {name for name, _offer in claims} == {"w-0", "w-1"}
    assert {offer.fqdn for _name, offer in claims} == {"fn.1", "fn.2"}
    assert len(policy) == 0


def test_wakeup_loser_parks_again_without_losing_offers():
    """An offer wakes one worker; a busy rival stealing it must not
    strand the woken worker when the next offer lands."""
    env = Environment()
    policy = PullDispatch(env)
    policy.add_worker("slow")
    policy.add_worker("fast")
    got = []

    def slow_loop():
        robbed = False
        offer = policy.claim("slow")
        while offer is None:
            yield policy.wait("slow")
            if not robbed:
                # Simulate losing the race once: "fast" grabs the queue
                # head between our wakeup and our claim.
                robbed = True
                stolen = policy.claim("fast")
                if stolen is not None:
                    got.append(("fast", stolen.fqdn))
            offer = policy.claim("slow")
        got.append(("slow", offer.fqdn))

    env.process(slow_loop(), name="slow-loop")

    def producer():
        yield env.timeout(1.0)
        policy.offer(Offer("first.1", None, env.now, object()))
        yield env.timeout(1.0)
        policy.offer(Offer("second.1", None, env.now, object()))

    env.process(producer(), name="producer")
    env.run(until=10.0)
    assert got == [("fast", "first.1"), ("slow", "second.1")]


def test_locality_pull_prefers_warm_function_but_stays_work_conserving():
    env = Environment()
    policy = LocalityPullDispatch(env, warm_fn=lambda w, fqdn: fqdn == "warm.1")
    policy.add_worker("w-0")
    policy.offer(Offer("cold.1", None, 0.0, object()))
    policy.offer(Offer("warm.1", None, 0.0, object()))
    # Warm offer wins despite sitting behind the head...
    assert policy.claim("w-0").fqdn == "warm.1"
    assert policy.locality_hits == 1
    # ...but with nothing warm left, the head is claimed anyway.
    assert policy.claim("w-0").fqdn == "cold.1"
    assert policy.locality_hits == 1


def _pull_cluster(env, policy="pull", **kwargs):
    cluster = Cluster(
        env, num_workers=2,
        config=WorkerConfig(cores=1, memory_mb=4096, seed=7,
                            backend="null"),
        lb_policy=policy, **kwargs,
    )
    cluster.start()
    return cluster


def test_claim_after_drop_releases_the_slot():
    """Terminal non-complete outcomes (timeout kill) must release claim
    slots through the dispatch seam, or the worker stops claiming."""
    env = Environment()
    cluster = _pull_cluster(env)
    # Always times out: every claimed invocation dies on the kill path.
    cluster.register_sync(FunctionRegistration(
        name="doomed", memory_mb=128, warm_time=2.0, cold_time=2.2,
        timeout=0.2))
    cluster.register_sync(FunctionRegistration(
        name="fine", memory_mb=128, warm_time=0.05, cold_time=0.3))
    results = []

    def submit(at, fqdn):
        yield env.timeout(at)
        inv = yield from cluster.invoke(fqdn)
        results.append(inv)

    for i in range(4):
        env.process(submit(0.1 * i, "doomed.1"), name=f"d{i}")
    # These arrive after the timeouts; they only run if slots came back.
    for i in range(4):
        env.process(submit(5.0 + 0.1 * i, "fine.1"), name=f"f{i}")
    env.run(until=60.0)
    cluster.stop()

    assert len(results) == 8
    timed_out = [r for r in results if r.timed_out]
    completed = [r for r in results if r.completed_at and not r.timed_out]
    assert len(timed_out) == 4
    assert len(completed) == 4
    engine = cluster._pull
    assert not engine._claims, "claim bookkeeping leaked"
    for slot in engine._slots.values():
        # An idle claim loop pre-acquires one slot before parking; any
        # higher count means a timeout kill leaked its claim slot.
        assert slot.count == 1, "a claim slot was never released"
        assert slot.queue_length == 0
    assert len(cluster.dispatch) == 0


@settings(deadline=None, max_examples=40)
@given(
    offsets=st.lists(st.floats(min_value=0.0, max_value=8.0), min_size=1,
                     max_size=25),
    num_workers=st.integers(min_value=1, max_value=4),
    service=st.floats(min_value=0.0, max_value=0.4),
)
def test_every_offer_claimed_exactly_once(offsets, num_workers, service):
    """Property: whatever the arrival pattern and worker count, every
    accepted offer is claimed exactly once — none lost, none duplicated."""
    env = Environment()
    policy = PullDispatch(env)
    workers = [f"w-{i}" for i in range(num_workers)]
    for w in workers:
        policy.add_worker(w)
    claimed: list[str] = []

    def claim_loop(name):
        while True:
            offer = policy.claim(name)
            while offer is None:
                yield policy.wait(name)
                offer = policy.claim(name)
            claimed.append(offer.fqdn)
            if service > 0:
                yield env.timeout(service)

    for w in workers:
        env.process(claim_loop(w), name=f"loop-{w}")

    def producer(at, index):
        yield env.timeout(at)
        policy.offer(Offer(f"fn-{index}.1", None, env.now, object()))

    for index, at in enumerate(offsets):
        env.process(producer(at, index), name=f"p{index}")
    env.run(until=60.0)

    assert len(claimed) == len(offsets)
    assert len(set(claimed)) == len(offsets)
    assert policy.offered == len(offsets)
    assert policy.claimed == len(offsets)
    assert len(policy) == 0


# ------------------------------------------------- cluster integration

def test_pull_cluster_charges_claim_wait_into_overhead():
    env = Environment()
    cluster = _pull_cluster(env, claim_latency=0.002)
    telemetry = Telemetry(env, TelemetryConfig(interval=1.0))
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    cluster.register_sync(FunctionRegistration(
        name="fn", memory_mb=128, warm_time=0.1, cold_time=0.4))
    results = []

    def submit(at):
        yield env.timeout(at)
        inv = yield from cluster.invoke("fn.1")
        results.append(inv)

    for i in range(6):
        env.process(submit(0.05 * i), name=f"s{i}")
    env.run(until=30.0)
    cluster.stop()
    telemetry.stop()

    assert len(results) == 6
    for inv in results:
        assert inv.offered_at is not None
        assert inv.claimed_at is not None
        assert inv.claimed_at - inv.offered_at >= 0.002
        assert inv.arrival == inv.offered_at
    from repro.telemetry.decomposition import (
        CLAIM_WAIT_PHASE, aggregate_phases, match_records,
    )
    breakdowns = telemetry.breakdowns()
    matched, compared = match_records(breakdowns, telemetry.records())
    assert compared == 6 and matched == 6
    phases = aggregate_phases(breakdowns)
    assert phases[CLAIM_WAIT_PHASE]["total"] > 0.0
    # Span-derived and context-derived breakdowns agree on the new phase.
    from repro.telemetry.decomposition import decompose
    by_span = {b.tag: b.phases for b in decompose(telemetry.spans())}
    for b in breakdowns:
        assert by_span[b.tag] == dict(b.phases)


def test_push_cluster_summary_has_no_claim_artifacts():
    env = Environment()
    cluster = Cluster(env, num_workers=2,
                      config=WorkerConfig(cores=1, memory_mb=4096, seed=7,
                                          backend="null"))
    telemetry = Telemetry(env, TelemetryConfig(interval=1.0))
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    cluster.start()
    cluster.register_sync(FunctionRegistration(
        name="fn", memory_mb=128, warm_time=0.1, cold_time=0.4))

    def submit(at):
        yield env.timeout(at)
        yield from cluster.invoke("fn.1")

    for i in range(4):
        env.process(submit(0.05 * i), name=f"s{i}")
    env.run(until=30.0)
    cluster.stop()
    telemetry.stop()

    summary = telemetry.summary()
    assert summary["dispatch"] == {"policy": "ch_bl", "kind": "push"}
    assert "claim_wait_seconds" not in summary["histograms"]
    from repro.telemetry import PHASES
    for b in telemetry.breakdowns():
        assert set(b.phases) == set(PHASES)


# ------------------------------------------------------ sharding rules

def test_pull_policies_refuse_the_shard_seam():
    from repro.cluster_shard.protocol import ShardingUnavailable, sync_indices

    for name in ("pull", "pull_local", "PULL"):
        with pytest.raises(ShardingUnavailable, match="serial-only"):
            sync_indices([0.0, 1.0], name, None)
    # Push policies are untouched by the guard.
    assert sync_indices([0.0, 1.0], "round_robin", None) == frozenset()


def test_sharded_replay_rejects_pull_before_spawning():
    from repro.cluster_shard.coordinator import run_sharded_replay
    from repro.cluster_shard.protocol import ShardingUnavailable
    from repro.loadgen.openloop import FunctionMix, build_plan
    from repro.sim.distributions import Exponential

    reg = FunctionRegistration(name="fn", memory_mb=128, warm_time=0.1,
                               cold_time=0.4)
    plan = build_plan([FunctionMix("fn.1", Exponential(1.0))], 5.0, seed=3)
    with pytest.raises(ShardingUnavailable, match="serial-only"):
        run_sharded_replay(plan, num_workers=2, shards=2,
                           registrations=[reg], lb_policy="pull")


# ------------------------------------------------------ inspect section

def _export_run(tmp_path, lb_policy):
    env = Environment()
    cluster = Cluster(env, num_workers=2,
                      config=WorkerConfig(cores=1, memory_mb=4096, seed=7,
                                          backend="null"),
                      lb_policy=lb_policy)
    telemetry = Telemetry(env, TelemetryConfig(interval=1.0))
    cluster.attach_telemetry(telemetry)
    telemetry.start()
    cluster.start()
    cluster.register_sync(FunctionRegistration(
        name="fn", memory_mb=128, warm_time=0.1, cold_time=0.4))

    def submit(at):
        yield env.timeout(at)
        yield from cluster.invoke("fn.1")

    for i in range(5):
        env.process(submit(0.05 * i), name=f"s{i}")
    env.run(until=30.0)
    cluster.stop()
    telemetry.stop()
    run_dir = tmp_path / f"run-{lb_policy}"
    telemetry.export(run_dir)
    return run_dir


def test_inspect_reports_pull_dispatch_section(tmp_path):
    from repro.telemetry import inspect_report

    report = inspect_report(_export_run(tmp_path, "pull"))
    assert "dispatch: policy=pull  kind=pull" in report
    assert "claim_latency=" in report
    assert "claim wait (seconds):" in report


def test_inspect_reports_push_dispatch_without_claim_histogram(tmp_path):
    from repro.telemetry import inspect_report

    report = inspect_report(_export_run(tmp_path, "ch_bl"))
    assert "dispatch: policy=ch_bl  kind=push" in report
    assert "claim wait" not in report


def test_inspect_falls_back_when_dispatch_key_absent(tmp_path):
    """Run dirs from before the dispatch layer (no key, health off) must
    render with no dispatch section and no errors."""
    from repro.telemetry import inspect_report

    run_dir = _export_run(tmp_path, "ch_bl")
    summary_path = run_dir / "summary.json"
    summary = json.loads(summary_path.read_text())
    del summary["dispatch"]
    summary_path.write_text(json.dumps(summary))
    report = inspect_report(run_dir)
    assert "dispatch:" not in report
    assert "overhead decomposition" in report
