"""Unit tests for repro.sim.distributions."""

import numpy as np
import pytest

from repro.sim.distributions import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Pareto,
    ShiftedExponential,
    Uniform,
    lognormal_from_mean_cv,
    make_rng,
)


def test_make_rng_deterministic():
    a = make_rng(42).random(5)
    b = make_rng(42).random(5)
    assert np.allclose(a, b)


def test_constant_always_same():
    rng = make_rng(0)
    d = Constant(3.5)
    assert d.sample(rng) == 3.5
    assert np.all(d.sample_n(rng, 10) == 3.5)
    assert d.mean == 3.5


def test_exponential_mean_close():
    rng = make_rng(1)
    d = Exponential(2.0)
    samples = d.sample_n(rng, 50_000)
    assert samples.mean() == pytest.approx(2.0, rel=0.05)
    assert d.mean == 2.0


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0.0)
    with pytest.raises(ValueError):
        Exponential(-1.0)


def test_shifted_exponential_floor():
    rng = make_rng(2)
    d = ShiftedExponential(shift=0.5, mean_tail=0.1)
    samples = d.sample_n(rng, 10_000)
    assert samples.min() >= 0.5
    assert samples.mean() == pytest.approx(0.6, rel=0.05)
    assert d.mean == pytest.approx(0.6)


def test_shifted_exponential_zero_tail_is_constant():
    rng = make_rng(3)
    d = ShiftedExponential(shift=0.25, mean_tail=0.0)
    assert d.sample(rng) == 0.25
    assert np.all(d.sample_n(rng, 5) == 0.25)


def test_lognormal_mean_formula():
    rng = make_rng(4)
    d = LogNormal(mu=0.0, sigma=0.5)
    samples = d.sample_n(rng, 100_000)
    assert samples.mean() == pytest.approx(d.mean, rel=0.05)


def test_lognormal_from_mean_cv_roundtrip():
    rng = make_rng(5)
    d = lognormal_from_mean_cv(mean=3.0, cv=1.5)
    samples = d.sample_n(rng, 200_000)
    assert samples.mean() == pytest.approx(3.0, rel=0.05)
    assert samples.std() / samples.mean() == pytest.approx(1.5, rel=0.1)


def test_lognormal_from_mean_cv_validation():
    with pytest.raises(ValueError):
        lognormal_from_mean_cv(mean=-1.0, cv=1.0)
    with pytest.raises(ValueError):
        lognormal_from_mean_cv(mean=1.0, cv=-0.1)


def test_pareto_heavy_tail():
    rng = make_rng(6)
    d = Pareto(xm=1.0, alpha=2.0)
    samples = d.sample_n(rng, 50_000)
    assert samples.min() >= 1.0
    assert d.mean == pytest.approx(2.0)
    assert samples.mean() == pytest.approx(2.0, rel=0.1)


def test_pareto_infinite_mean():
    assert Pareto(xm=1.0, alpha=0.9).mean == float("inf")


def test_uniform_bounds_and_mean():
    rng = make_rng(7)
    d = Uniform(1.0, 3.0)
    samples = d.sample_n(rng, 10_000)
    assert samples.min() >= 1.0 and samples.max() <= 3.0
    assert d.mean == 2.0
    with pytest.raises(ValueError):
        Uniform(3.0, 1.0)


def test_empirical_reproduces_quantiles():
    rng = make_rng(8)
    values = np.arange(1, 101, dtype=float)
    d = Empirical(values)
    samples = d.sample_n(rng, 50_000)
    assert np.percentile(samples, 50) == pytest.approx(50.5, rel=0.05)
    assert samples.min() >= 1.0 and samples.max() <= 100.0


def test_empirical_scaling():
    rng = make_rng(9)
    d = Empirical([1.0, 2.0, 3.0], scale=10.0)
    assert d.mean == pytest.approx(20.0)
    scaled = d.with_scale(0.5)
    assert scaled.mean == pytest.approx(1.0)
    # Original is untouched.
    assert d.scale == 10.0


def test_empirical_validation():
    with pytest.raises(ValueError):
        Empirical([])
    with pytest.raises(ValueError):
        Empirical([-1.0, 2.0])
    with pytest.raises(ValueError):
        Empirical([1.0], scale=0.0)


def test_empirical_single_value():
    rng = make_rng(10)
    d = Empirical([7.0])
    assert np.all(d.sample_n(rng, 100) == 7.0)
