"""Edge-path coverage: prewarm failure, client caps, report formatting."""

import pytest

from repro import Environment, FunctionRegistration, Worker, WorkerConfig
from repro.experiments.report import format_table
from repro.loadgen import ClosedLoopClient
from repro.metrics.spans import SpanRecorder


def test_prewarm_fails_when_memory_unavailable():
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(backend="null", cores=2, memory_mb=300.0,
                     free_memory_buffer_mb=0.0, memory_wait_timeout=0.5),
    )
    worker.start()
    worker.register_sync(
        FunctionRegistration(name="big", memory_mb=256.0, warm_time=60.0,
                             cold_time=60.0)
    )
    worker.register_sync(
        FunctionRegistration(name="second", memory_mb=256.0)
    )
    worker.async_invoke("big.1")   # occupies all memory for 60 s
    env.run(until=5.0)
    ok = env.run_process(worker.prewarm("second.1"))
    assert ok is False
    assert worker.pool.available_count("second.1") == 0


def test_prewarm_unknown_function_raises():
    from repro.errors import FunctionNotRegistered

    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null"))
    worker.start()
    with pytest.raises(FunctionNotRegistered):
        env.run_process(worker.prewarm("ghost.1"))


def test_closed_loop_client_max_invocations():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.start()
    worker.register_sync(FunctionRegistration(name="f", warm_time=0.01,
                                              cold_time=0.02))
    client = ClosedLoopClient(worker, "f.1", max_invocations=3)
    env.run_process(client.run(env, until=100.0))
    assert len(client.results) == 3


def test_closed_loop_client_think_time_validation():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null"))
    with pytest.raises(ValueError):
        ClosedLoopClient(worker, "f.1", think_time=-1.0)


def test_span_recorder_durations_and_missing():
    rec = SpanRecorder(clock=lambda: 0.0)
    rec.record("x", 1.0)
    rec.record("x", 3.0)
    assert rec.durations("x") == [1.0, 3.0]
    assert rec.durations("missing") == []
    import math

    assert math.isnan(rec.mean("missing"))


def test_format_table_handles_mixed_and_special_values():
    rows = [
        {"a": float("nan"), "b": 1e9, "c": 0.00001},
        {"a": 1, "b": "text", "c": -5},
    ]
    text = format_table(rows)
    assert "nan" in text
    assert "1e+09" in text
    assert "text" in text


def test_format_table_title_only_empty():
    assert format_table([], title="Nothing") == "Nothing\n(no rows)"


def test_worker_with_explicit_backend_instance():
    from repro.containers import NullBackend

    env = Environment()
    backend = NullBackend(env, create_latency=0.01)
    worker = Worker(env, WorkerConfig(backend="containerd"), backend=backend)
    worker.start()
    worker.register_sync(FunctionRegistration(name="f"))
    inv = env.run_process(worker.invoke("f.1"))
    # The injected backend wins over the config string.
    assert worker.backend is backend
    assert inv.cold


def test_registration_version_namespacing():
    env = Environment()
    worker = Worker(env, WorkerConfig(backend="null", cores=2,
                                      memory_mb=2048.0))
    worker.start()
    worker.register_sync(FunctionRegistration(name="f", version=1,
                                              warm_time=0.01, cold_time=0.02))
    worker.register_sync(FunctionRegistration(name="f", version=2,
                                              warm_time=0.01, cold_time=0.02))
    a = env.run_process(worker.invoke("f.1"))
    b = env.run_process(worker.invoke("f.2"))
    # Different versions never share containers.
    assert a.cold and b.cold
    assert worker.pool.available_count("f.1") == 1
    assert worker.pool.available_count("f.2") == 1
