"""Tests for trace-derived empirical load generation."""

import numpy as np
import pytest

from repro.loadgen import build_plan, empirical_mixes, mixes_from_trace
from repro.sim.distributions import Empirical, Exponential, make_rng
from repro.trace.model import Trace, TraceFunction
from repro.trace.scaling import little_load


def periodic_trace(period=10.0, n=50, name="f"):
    functions = [TraceFunction(name=name, memory_mb=64.0, warm_time=1.0,
                               cold_time=2.0)]
    ts = np.arange(n) * period
    return Trace(functions, ts, np.zeros(n, dtype=np.int64),
                 duration=n * period)


def test_empirical_mixes_reproduce_iat_scale():
    trace = periodic_trace(period=10.0)
    mixes = empirical_mixes(trace)
    assert len(mixes) == 1
    assert isinstance(mixes[0].iat, Empirical)
    rng = make_rng(0)
    samples = mixes[0].iat.sample_n(rng, 1000)
    assert samples.mean() == pytest.approx(10.0, rel=0.05)


def test_empirical_mixes_scale_factor():
    trace = periodic_trace(period=10.0)
    mixes = empirical_mixes(trace, scale=2.0)
    rng = make_rng(1)
    assert mixes[0].iat.sample_n(rng, 500).mean() == pytest.approx(20.0, rel=0.05)


def test_per_function_scale_override():
    trace = periodic_trace(period=10.0, name="hot")
    mixes = empirical_mixes(trace, per_function_scale={"hot": 0.5})
    rng = make_rng(2)
    assert mixes[0].iat.sample_n(rng, 500).mean() == pytest.approx(5.0, rel=0.05)


def test_sparse_function_falls_back_to_exponential():
    functions = [TraceFunction(name="rare", memory_mb=64.0, warm_time=1.0,
                               cold_time=2.0)]
    trace = Trace(functions, np.array([5.0]), np.array([0]), duration=100.0)
    mixes = empirical_mixes(trace)
    assert isinstance(mixes[0].iat, Exponential)
    assert mixes[0].iat.mean == pytest.approx(100.0)


def test_mixes_from_trace_hits_target_load():
    trace = periodic_trace(period=2.0, n=200)  # load = 1.0/2.0 * ... = 0.5
    assert little_load(trace) == pytest.approx(0.5)
    mixes = mixes_from_trace(trace, target_load=0.25)
    plan = build_plan(mixes, duration=trace.duration, seed=3)
    # Halving load doubles IATs -> roughly half the arrivals.
    assert len(plan) == pytest.approx(100, rel=0.3)


def test_validation():
    trace = periodic_trace()
    with pytest.raises(ValueError):
        empirical_mixes(trace, scale=0.0)
    with pytest.raises(ValueError):
        empirical_mixes(trace, per_function_scale={"f": -1.0})
    with pytest.raises(ValueError):
        mixes_from_trace(trace, target_load=0.0)


def test_plan_builds_and_respects_start_offset():
    trace = periodic_trace(period=5.0)
    mixes = empirical_mixes(trace)
    assert mixes[0].start_offset == pytest.approx(0.0)
    plan = build_plan(mixes, duration=100.0, seed=4)
    assert len(plan) > 5
    assert plan.fqdns[0] == "f.1"
