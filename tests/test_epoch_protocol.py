"""The epoch-batched seam walk is the per-arrival walk, batched.

Three independent angles on the refactor from per-invocation seam tuples
to columnar epoch messages:

* **sync_indices vs the board** — the vectorized, epoch-jumping
  ``sync_indices`` (binary search + exact-predicate fixup) is compared
  against a literal per-arrival :class:`StatusBoard` simulation counting
  actual refreshes, over hypothesis-generated timestamp sets including
  duplicates, near-boundary deltas and overflow-scale magnitudes.
* **epoch walk vs per-arrival walk** — a coordinator-shaped walk (loads
  refreshed only at epoch boundaries from the frozen seam dict, one
  clock write per epoch) must produce the same pick sequence as the
  per-arrival protocol walk (clock written at every arrival), for random
  plans x policies x status intervals.
* **failure surfacing** — a shard dying mid-protocol names its shard
  index in the coordinator's error, both at the pipe layer (unit) and
  through a real run whose second shard explodes (integration).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster_shard import (
    ShardingUnavailable,
    plan_epochs,
    run_sharded_replay,
    sync_indices,
)
from repro.cluster_shard.coordinator import _recv
from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.loadbalancer.policies import StatusBoard, make_balancer, snap_to_grid
from repro.loadgen.openloop import InvocationPlan

WORKERS = ["w0", "w1", "w2"]
RPC = 0.0005


# ------------------------------------------------------- strategies
def _plans():
    """Sorted timestamp arrays + parallel fqdn choices."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False,
                      allow_infinity=False),
            st.sampled_from(["alpha.1", "beta.1", "gamma.1"]),
        ),
        min_size=0,
        max_size=60,
    ).map(lambda rows: sorted(rows, key=lambda r: r[0]))


INTERVALS = st.sampled_from([None, 0.1, 0.5, 2.0, 7.3])
POLICIES = st.sampled_from(["ch_bl", "least_loaded", "round_robin", "CH_BL"])


# ------------------------------------------------- sync_indices vs board
def _board_refresh_indices(ts, interval):
    """Literal per-arrival simulation: which arrivals refresh the board."""
    clk = {"now": 0.0}
    board = StatusBoard(clock=lambda: clk["now"], live_load_fn=lambda w: 0.0,
                        interval=interval)
    out = set()
    for k, t in enumerate(ts):
        clk["now"] = t
        before = board.refreshes
        board.load("w0")
        if board.refreshes > before:
            out.add(k)
    return frozenset(out)


@settings(max_examples=120, deadline=None)
@given(plan=_plans(), interval=st.sampled_from([0.1, 0.5, 1.0, 2.0, 7.3]))
def test_sync_indices_matches_statusboard_simulation(plan, interval):
    ts = np.array([t for t, _ in plan], dtype=np.float64)
    assert sync_indices(ts, "ch_bl", interval) == _board_refresh_indices(
        ts, interval
    )


@pytest.mark.parametrize(
    "ts, policy, interval, expected",
    [
        # empty plan: nothing to sync, for any policy/interval
        ([], "ch_bl", 2.0, frozenset()),
        ([], "ch_bl", None, frozenset()),
        # duplicates inside one epoch never re-sync (delta to the epoch
        # floor is unchanged)
        ([0.0, 0.0, 0.0, 0.5], "ch_bl", 2.0, frozenset({0})),
        # a duplicate pair exactly on the refresh boundary syncs once, at
        # the first of the pair
        ([0.0, 2.0, 2.0], "ch_bl", 2.0, frozenset({0, 1})),
        # policy names are case-insensitive, matching make_balancer
        ([0.0, 1.0], "CH_BL", None, frozenset({0, 1})),
        ([0.0, 1.0], "ROUND_ROBIN", 1.0, frozenset()),
        ([0.0, 1.0], "Least_Loaded", None, frozenset({0, 1})),
    ],
)
def test_sync_indices_table(ts, policy, interval, expected):
    assert sync_indices(np.array(ts, dtype=np.float64), policy, interval) == expected


def test_sync_indices_survives_overflow_scale_timestamps():
    # t / interval overflows to inf here; snap_to_grid's fmod fallback
    # (shared with StatusBoard.load) must keep both walks agreeing.
    ts = np.array([1e308, 1e308, 1.7e308], dtype=np.float64)
    interval = 1e-3
    got = sync_indices(ts, "ch_bl", interval)
    assert got == _board_refresh_indices(ts, interval)
    assert 0 in got
    assert snap_to_grid(1e308, 1e-3) <= 1e308


def test_plan_epochs_segments():
    assert plan_epochs(0, frozenset()) == []
    assert plan_epochs(5, frozenset()) == [(None, 0, 5)]
    assert plan_epochs(8, {2, 5}) == [(None, 0, 2), (2, 2, 5), (5, 5, 8)]
    assert plan_epochs(3, {0}) == [(0, 0, 3)]
    with pytest.raises(ValueError, match="out of plan range"):
        plan_epochs(3, {5})
    with pytest.raises(ValueError, match="out of plan range"):
        plan_epochs(3, {-1})


# ----------------------------------------- epoch walk == per-arrival walk
def _live_loads_at(dispatches, t):
    """The deterministic shard-side load model for the walk comparison:
    every dispatch occupies its worker from delivery (pick + rpc) on."""
    loads = {w: 0.0 for w in WORKERS}
    for pick_t, worker in dispatches:
        if pick_t + RPC <= t:
            loads[worker] += 1.0
    return loads


def _make_lb(policy, interval, clk, loads):
    board = StatusBoard(clock=lambda: clk["now"],
                        live_load_fn=loads.__getitem__, interval=interval)
    balancer = make_balancer(policy, board.load)
    for w in WORKERS:
        balancer.add_worker(w)
    return balancer


def _per_arrival_walk(ts, fqdns, policy, interval):
    """The pre-batching protocol: clock written and sync set consulted at
    every arrival, loads dict refreshed from the shard model at syncs."""
    syncs = sync_indices(ts, policy, interval)
    clk = {"now": 0.0}
    loads = {w: 0.0 for w in WORKERS}
    balancer = _make_lb(policy, interval, clk, loads)
    dispatches, picks = [], []
    for k, (t, f) in enumerate(zip(ts, fqdns)):
        clk["now"] = float(t)
        if k in syncs:
            loads.update(_live_loads_at(dispatches, float(t)))
        w = balancer.pick(f)
        picks.append(w)
        dispatches.append((float(t), w))
    return picks


def _epoch_walk(ts, fqdns, policy, interval):
    """The batched walk: loads refreshed per epoch boundary, one clock
    write per epoch, picks streamed inside the epoch."""
    syncs = sync_indices(ts, policy, interval)
    segments = plan_epochs(len(ts), syncs)
    clk = {"now": 0.0}
    loads = {w: 0.0 for w in WORKERS}
    balancer = _make_lb(policy, interval, clk, loads)
    dispatches, picks = [], []
    for sync_k, a, b in segments:
        if sync_k is not None:
            loads.update(_live_loads_at(dispatches, float(ts[sync_k])))
        if b > a:
            clk["now"] = float(ts[a])
        for k in range(a, b):
            w = balancer.pick(fqdns[k])
            picks.append(w)
            dispatches.append((float(ts[k]), w))
    return picks


@settings(max_examples=120, deadline=None)
@given(plan=_plans(), policy=POLICIES, interval=INTERVALS)
def test_epoch_walk_equals_per_arrival_walk(plan, policy, interval):
    ts = np.array([t for t, _ in plan], dtype=np.float64)
    fqdns = [f for _, f in plan]
    assert _epoch_walk(ts, fqdns, policy, interval) == _per_arrival_walk(
        ts, fqdns, policy, interval
    )


# ------------------------------------------------------- failure naming
class _DeadConn:
    def recv(self):
        raise EOFError("pipe closed")


class _ErrorConn:
    def recv(self):
        return ("error", "Traceback: shard exploded")


def test_recv_names_shard_on_dead_pipe():
    with pytest.raises(RuntimeError, match="shard 3 died mid-run"):
        _recv(_DeadConn(), 3)


def test_recv_names_shard_on_error_payload():
    with pytest.raises(RuntimeError, match="shard 2 failed"):
        _recv(_ErrorConn(), 2)


def test_shard_death_mid_epoch_names_the_shard():
    """A real run whose second shard hits an unregistered function: the
    error must surface the failing shard's index, not a bare crash."""
    ts = np.array([0.0, 0.1, 0.2, 0.3])
    # round_robin (stream mode, no syncs): arrival 1 lands on worker 1 =
    # shard 1 and names a function nobody registered.
    fqdns = ["alpha.1", "ghost.1", "alpha.1", "ghost.1"]
    plan = InvocationPlan(ts, fqdns, 1.0)
    try:
        with pytest.raises(RuntimeError, match="shard 1"):
            run_sharded_replay(
                plan,
                num_workers=2,
                shards=2,
                registrations=[
                    FunctionRegistration(name="alpha", memory_mb=128.0,
                                         warm_time=0.05, cold_time=0.2),
                ],
                config=WorkerConfig(cores=1, memory_mb=4096, seed=7),
                lb_policy="round_robin",
                horizon=30.0,
            )
    except ShardingUnavailable as exc:  # pragma: no cover - sandbox dependent
        pytest.skip(f"shard processes unavailable here: {exc}")
