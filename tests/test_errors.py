"""The error taxonomy: one base class, documented attributes, and the
pipeline recording the right terminal outcomes.

``repro.errors`` is the layering root (every layer may import it), so its
contract is pinned here: every public exception subclasses
:class:`ReproError`, constructor attributes survive on the instance, and
the lifecycle's drop / timeout-kill stages produce the documented
invocation state and records.
"""

import inspect

import pytest

import repro.errors as errors_mod
from repro.core.config import WorkerConfig
from repro.core.function import FunctionRegistration
from repro.core.worker import Worker
from repro.errors import (
    ConfigurationError,
    ContainerError,
    DuplicateRegistration,
    FunctionNotRegistered,
    InsufficientResources,
    InvocationDropped,
    ReproError,
)
from repro.metrics.registry import Outcome
from repro.sim.core import Environment


# --------------------------------------------------------------- hierarchy
def test_all_public_exceptions_subclass_repro_error():
    public = [getattr(errors_mod, name) for name in errors_mod.__all__]
    assert ReproError in public
    for exc in public:
        assert inspect.isclass(exc) and issubclass(exc, ReproError), exc
        assert issubclass(exc, Exception)


def test_module_exports_every_defined_exception():
    defined = {
        name
        for name, obj in vars(errors_mod).items()
        if inspect.isclass(obj) and issubclass(obj, Exception)
    }
    assert defined == set(errors_mod.__all__)


def test_documented_attributes():
    e = FunctionNotRegistered("f.1")
    assert e.name == "f.1" and "f.1" in str(e)
    e = DuplicateRegistration("f.1")
    assert e.name == "f.1" and "already" in str(e)
    e = InvocationDropped("f.1", reason="insufficient memory")
    assert e.function == "f.1"
    assert e.reason == "insufficient memory"
    assert "insufficient memory" in str(e)
    # Default reason is the common shed cause.
    assert InvocationDropped("f.1").reason == "queue overflow"
    for exc in (ContainerError, InsufficientResources, ConfigurationError):
        assert str(exc("boom")) == "boom"


def test_catching_the_base_class_catches_everything():
    for e in (
        FunctionNotRegistered("f.1"),
        DuplicateRegistration("f.1"),
        InvocationDropped("f.1"),
        ContainerError("x"),
    ):
        with pytest.raises(ReproError):
            raise e


# ------------------------------------------------------- worker raise sites
def test_unregistered_invoke_raises():
    env = Environment()
    worker = Worker(env, WorkerConfig(cores=2, memory_mb=1024, free_memory_buffer_mb=0.0))
    with pytest.raises(FunctionNotRegistered) as exc_info:
        worker.async_invoke("ghost.1")
    assert exc_info.value.name == "ghost.1"


def test_duplicate_registration_raises():
    env = Environment()
    worker = Worker(env, WorkerConfig(cores=2, memory_mb=1024, free_memory_buffer_mb=0.0))
    reg = FunctionRegistration(name="f", memory_mb=128, warm_time=0.1, cold_time=0.3)
    worker.register_sync(reg)
    with pytest.raises(DuplicateRegistration) as exc_info:
        worker.register_sync(reg)
    assert exc_info.value.name == reg.fqdn()


# -------------------------------------------------- drop / timeout recording
def _run_one(config, registration, until=60.0):
    env = Environment()
    worker = Worker(env, config)
    worker.start()
    worker.register_sync(registration)
    done = {}

    def submit():
        inv = yield from worker.invoke(registration.fqdn())
        done["inv"] = inv

    env.process(submit(), name="submit")
    env.run(until=until)
    return worker, done["inv"]


def test_drop_path_records_reason_and_outcome():
    # Two 200 MB functions on a 256 MB worker: the second cold start waits
    # for memory held by the still-running first one, exhausts the
    # memory_wait_timeout, and the lifecycle's drop stage sheds it with
    # the documented reason.
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(cores=2, memory_mb=256, memory_wait_timeout=0.5,
                     free_memory_buffer_mb=0.0),
    )
    worker.start()
    hog = FunctionRegistration(name="hog", memory_mb=200, warm_time=5.0, cold_time=5.0)
    late = FunctionRegistration(name="late", memory_mb=200, warm_time=0.1, cold_time=0.3)
    worker.register_sync(hog)
    worker.register_sync(late)
    dropped_inv = {}

    def submit_late():
        yield env.timeout(0.5)
        inv = yield from worker.invoke(late.fqdn())
        dropped_inv["inv"] = inv

    worker.async_invoke(hog.fqdn())
    env.process(submit_late(), name="late")
    env.run(until=60.0)

    inv = dropped_inv["inv"]
    assert inv.dropped is True
    assert inv.drop_reason == "insufficient memory"
    assert worker.dropped == 1 and worker.lifecycle.dropped == 1
    [record] = [r for r in worker.metrics.records if r.outcome is Outcome.DROPPED]
    assert record.function == late.fqdn()
    # The invocation state maps onto the taxonomy's InvocationDropped.
    err = InvocationDropped(record.function, reason=inv.drop_reason)
    assert err.reason == inv.drop_reason and err.function == late.fqdn()


def test_queue_overflow_drop_reason():
    # queue_max_len=1 and no free cores: the second enqueued invocation
    # observes a full queue at insertion and is shed.
    env = Environment()
    worker = Worker(
        env,
        WorkerConfig(cores=1, memory_mb=1024, free_memory_buffer_mb=0.0,
                     concurrency_limit=1, queue_max_len=1),
    )
    worker.start()
    reg = FunctionRegistration(name="f", memory_mb=64, warm_time=2.0, cold_time=2.5)
    worker.register_sync(reg)
    events = [worker.async_invoke(reg.fqdn()) for _ in range(4)]
    env.run(until=60.0)
    done = [e.value for e in events]
    dropped = [i for i in done if i.dropped]
    assert dropped, "expected at least one overflow drop"
    assert all(i.drop_reason == "queue overflow" for i in dropped)
    assert worker.dropped == len(dropped)


def test_timeout_kill_records_timeout_outcome():
    reg = FunctionRegistration(
        name="slow", memory_mb=64, warm_time=5.0, cold_time=6.0, timeout=0.5
    )
    worker, inv = _run_one(WorkerConfig(cores=2, memory_mb=1024, free_memory_buffer_mb=0.0), reg)
    assert inv.timed_out is True
    assert inv.dropped is False
    assert worker.timeouts == 1 and worker.lifecycle.timeouts == 1
    [record] = worker.metrics.records
    assert record.outcome is Outcome.TIMEOUT
    # The killed container was discarded, not returned to the pool.
    assert worker.pool.available_count() == 0
