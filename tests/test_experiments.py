"""Smoke + shape tests for the experiment harnesses (tiny scales).

The benchmarks regenerate the paper artifacts at MEDIUM scale; these
tests assert the harnesses run and preserve the paper's qualitative
shapes at SMALL scale so regressions show up fast.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    SMALL,
    PAPER_TABLE2_MS,
    PAPER_TABLE3,
    appendix_timeseries,
    fig4_rows,
    fig5_rows,
    format_table,
    litmus_plan,
    make_traces,
    run_coldpath_ablation,
    run_fig1,
    run_fig8,
    run_keepalive_sweep,
    run_litmus,
    run_queue_policy_ablation,
    run_table2,
    table3_rows,
    table4_rows,
)
from repro.experiments.fig6_litmus import litmus_workload
from repro.experiments.fig7_faasbench import run_faasbench, warm_hit_ratios

TINY = dataclasses.replace(
    SMALL,
    fig1_clients=(1, 8),
    fig1_duration=5.0,
    litmus_duration=600.0,
    cache_sizes_gb=(2.0, 8.0, 20.0),
)


@pytest.fixture(scope="module")
def traces():
    return make_traces(TINY)


# ----------------------------------------------------------------- Fig 1
def test_fig1_iluvatar_beats_openwhisk():
    rows = run_fig1(TINY, cores=16)
    ow = {r.clients: r for r in rows if r.system == "openwhisk"}
    ilu = {r.clients: r for r in rows if r.system == "iluvatar"}
    for clients in TINY.fig1_clients:
        # Paper: >=10 ms vs ~2 ms — an order of magnitude at least.
        assert ow[clients].p50_ms > 5 * ilu[clients].p50_ms
        assert ilu[clients].p50_ms < 5.0
        assert ow[clients].p99_ms > ow[clients].p50_ms


# ---------------------------------------------------------------- Table 2
def test_table2_agent_communication_dominates():
    rows = run_table2(warm_invocations=30)
    by_fn = {r["function"]: r["time"] for r in rows}
    assert by_fn["call_container"] == max(
        v for k, v in by_fn.items() if k in PAPER_TABLE2_MS
    )
    # Each modeled component is within 50% of the paper's measurement.
    for name, paper_ms in PAPER_TABLE2_MS.items():
        assert by_fn[name] == pytest.approx(paper_ms, rel=0.5)


# ---------------------------------------------------------------- Table 3
def test_table3_rows_have_expected_traces():
    rows = table3_rows(TINY)
    assert [r["trace"] for r in rows] == ["representative", "rare", "random"]
    for row in rows:
        assert row["num_invocations"] > 0
    assert len(PAPER_TABLE3) == 3


def test_table4_is_the_catalog():
    rows = table4_rows()
    assert any(r["mem_mb"] == 512.0 and r["run_s"] == 6.5 for r in rows)


# -------------------------------------------------------------- Figs 4 & 5
def test_keepalive_sweep_paper_shapes(traces):
    results = run_keepalive_sweep(TINY, traces=traces)
    rows4 = fig4_rows(results)
    rows5 = fig5_rows(results)
    assert len(rows4) == len(rows5) == 3 * 6 * len(TINY.cache_sizes_gb)

    def get(rows, trace, policy, gb, key):
        for r in rows:
            if (r["trace"], r["policy"], r["cache_gb"]) == (trace, policy, gb):
                return r[key]
        raise KeyError((trace, policy, gb))

    big = max(TINY.cache_sizes_gb)
    # Representative: GD beats TTL on execution-time increase.
    assert get(rows4, "representative", "GD", big, "exec_increase_pct") < get(
        rows4, "representative", "TTL", big, "exec_increase_pct"
    )
    # Rare: caching-based LRU never loses to TTL on cold fraction, and
    # strictly wins somewhere in the size sweep.
    lru_vs_ttl = [
        (
            get(rows5, "rare", "LRU", gb, "cold_fraction"),
            get(rows5, "rare", "TTL", gb, "cold_fraction"),
        )
        for gb in TINY.cache_sizes_gb
    ]
    assert all(lru <= ttl + 1e-12 for lru, ttl in lru_vs_ttl)
    assert any(lru < ttl for lru, ttl in lru_vs_ttl)
    # Cold fractions are valid probabilities and monotone-ish in size.
    for r in rows5:
        assert 0.0 <= r["cold_fraction"] <= 1.0


# ------------------------------------------------------------------ Fig 6
def test_litmus_faascache_direction():
    results = run_litmus(TINY, workloads=("skew_frequency",))
    by_system = {r.system: r for r in results}
    fc, ow = by_system["faascache"], by_system["openwhisk"]
    assert fc.warm >= ow.warm
    assert fc.served >= ow.served
    assert fc.dropped <= ow.dropped


def test_litmus_workload_definitions():
    for name in ("skew_frequency", "cyclic", "two_size"):
        regs, plan = litmus_workload(name, duration=60.0)
        assert regs and len(plan) > 0
        fqdns = {r.fqdn() for r in regs}
        assert set(plan.fqdns) <= fqdns
    with pytest.raises(ValueError):
        litmus_workload("nope", duration=60.0)
    assert len(litmus_plan("cyclic", duration=60.0)) > 0


# ------------------------------------------------------------------ Fig 7
def test_faasbench_float_op_gains_under_faascache():
    breakdown = run_faasbench(TINY)
    ratios = warm_hit_ratios(breakdown)
    # The high-init, small-memory floating-point function should do at
    # least as well under Greedy-Dual as under TTL (paper: 3x better).
    assert (
        ratios["faascache"]["float_op.1"]
        >= ratios["openwhisk"]["float_op.1"] * 0.95
    )
    for system in breakdown:
        assert "float_op.1" in breakdown[system]


# ------------------------------------------------------------------ Fig 8
def test_fig8_dynamic_sizing_saves_memory(traces):
    outcome = run_fig8(TINY, trace=traces["representative"])
    assert outcome.average_size_mb < outcome.static_size_mb
    assert outcome.savings > 0.0
    times, sizes, speeds = outcome.controller.timeseries()
    assert len(times) == len(sizes) == len(speeds)
    assert all(s >= outcome.controller.config.min_size_mb for s in sizes)


# --------------------------------------------------------------- appendix
def test_appendix_timeseries_keys(traces):
    series = appendix_timeseries(TINY)
    assert set(series) == {"full", "representative", "rare", "random"}
    for arr in series.values():
        assert isinstance(arr, np.ndarray)
        assert np.all(arr >= 0)


# --------------------------------------------------------------- ablations
def test_queue_policy_ablation_rows():
    rows = run_queue_policy_ablation(duration=30.0)
    assert [r["policy"] for r in rows] == ["fcfs", "sjf", "eedf", "rare", "mqfq"]
    for row in rows:
        assert row["completed"] > 0


def test_coldpath_ablation_namespace_pool_effect():
    rows = run_coldpath_ablation(cold_starts=10)
    by_cfg = {(r["namespace_pool"], r["http_client_cache"]): r for r in rows}
    with_pool = by_cfg[(True, True)]["cold_e2e_mean_ms"]
    without_pool = by_cfg[(False, True)]["cold_e2e_mean_ms"]
    # Paper: the namespace pool hides ~100 ms of cold-start latency.
    assert without_pool - with_pool == pytest.approx(100.0, rel=0.2)
    # HTTP cache: warm-path overhead drops when enabled.
    warm_cached = by_cfg[(True, True)]["warm_overhead_mean_ms"]
    warm_uncached = by_cfg[(True, False)]["warm_overhead_mean_ms"]
    assert warm_uncached > warm_cached


# ----------------------------------------------------------------- report
def test_format_table_renders():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}], title="T")
    assert "T" in text and "a" in text and "c" in text
    assert format_table([]) == "(no rows)"
