"""Unit tests for FunctionRegistration / Invocation and characteristics."""

import numpy as np
import pytest

from repro.core.characteristics import CharacteristicsMap, FunctionStats, MovingAverage
from repro.core.function import FunctionRegistration, Invocation


# ----------------------------------------------------------- registration
def test_registration_defaults_and_fqdn():
    reg = FunctionRegistration(name="hello")
    assert reg.fqdn() == "hello.1"
    assert reg.init_time == pytest.approx(reg.cold_time - reg.warm_time)


def test_registration_versioned_fqdn():
    assert FunctionRegistration(name="f", version=3).fqdn() == "f.3"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"name": "f", "memory_mb": 0},
        {"name": "f", "cpus": 0},
        {"name": "f", "warm_time": -1.0},
        {"name": "f", "warm_time": 2.0, "cold_time": 1.0},
    ],
)
def test_registration_validation(kwargs):
    with pytest.raises(ValueError):
        FunctionRegistration(**kwargs)


# -------------------------------------------------------------- invocation
def test_invocation_timing_properties():
    reg = FunctionRegistration(name="f", warm_time=0.1, cold_time=0.5)
    inv = Invocation(function=reg, arrival=10.0)
    inv.enqueued_at = 10.001
    inv.dispatched_at = 10.101
    inv.exec_started_at = 10.102
    inv.exec_finished_at = 10.202
    inv.completed_at = 10.203
    assert inv.queue_time == pytest.approx(0.1)
    assert inv.exec_time == pytest.approx(0.1)
    assert inv.e2e_time == pytest.approx(0.203)
    assert inv.overhead == pytest.approx(0.103)
    assert inv.stretch == pytest.approx(0.203 / 0.1)


def test_invocation_defaults_zero():
    reg = FunctionRegistration(name="f")
    inv = Invocation(function=reg, arrival=0.0)
    assert inv.queue_time == 0.0
    assert inv.exec_time == 0.0
    assert inv.e2e_time == 0.0
    assert np.isnan(inv.stretch)


def test_invocation_ids_unique():
    reg = FunctionRegistration(name="f")
    a = Invocation(function=reg, arrival=0.0)
    b = Invocation(function=reg, arrival=0.0)
    assert a.id != b.id


# ---------------------------------------------------------- moving average
def test_moving_average_window():
    ma = MovingAverage(window=3)
    for v in [1.0, 2.0, 3.0, 4.0]:
        ma.push(v)
    assert ma.value == pytest.approx(3.0)  # [2, 3, 4]
    assert ma.count == 3


def test_moving_average_empty_is_zero():
    ma = MovingAverage()
    assert ma.value == 0.0
    assert not ma


def test_moving_average_invalid_window():
    with pytest.raises(ValueError):
        MovingAverage(window=0)


# ------------------------------------------------------------- statistics
def test_function_stats_iat_tracking():
    s = FunctionStats(fqdn="f.1")
    s.record_arrival(0.0)
    s.record_arrival(2.0)
    s.record_arrival(6.0)
    assert s.avg_iat == pytest.approx(3.0)
    assert s.invocations == 3


def test_function_stats_arrival_order_enforced():
    s = FunctionStats(fqdn="f.1")
    s.record_arrival(5.0)
    with pytest.raises(ValueError):
        s.record_arrival(1.0)


def test_function_stats_cold_warm_split():
    s = FunctionStats(fqdn="f.1")
    s.record_execution(0.1, cold=False)
    s.record_execution(0.5, cold=True)
    assert s.warm_time == pytest.approx(0.1)
    assert s.cold_time == pytest.approx(0.5)
    assert s.cold_invocations == 1


def test_function_stats_cold_falls_back_to_warm():
    s = FunctionStats(fqdn="f.1")
    s.record_execution(0.2, cold=False)
    assert s.cold_time == pytest.approx(0.2)


def test_function_stats_cold_never_below_warm():
    s = FunctionStats(fqdn="f.1")
    s.record_execution(0.5, cold=False)
    s.record_execution(0.1, cold=True)  # anomalous fast cold
    assert s.cold_time >= s.warm_time


def test_function_stats_negative_duration_rejected():
    s = FunctionStats(fqdn="f.1")
    with pytest.raises(ValueError):
        s.record_execution(-0.1, cold=False)


# ---------------------------------------------------------------- the map
def test_characteristics_map_lazy_creation():
    m = CharacteristicsMap()
    assert "f.1" not in m
    stats = m.get("f.1")
    assert "f.1" in m
    assert m.get("f.1") is stats
    assert len(m) == 1


def test_characteristics_expected_exec_time_unseen_is_zero():
    m = CharacteristicsMap()
    assert m.expected_exec_time("new.1", warm_available=True) == 0.0
    assert m.expected_exec_time("new.1", warm_available=False) == 0.0


def test_characteristics_expected_exec_time_uses_mode():
    m = CharacteristicsMap()
    m.record_execution("f.1", 0.1, cold=False)
    m.record_execution("f.1", 0.9, cold=True)
    assert m.expected_exec_time("f.1", warm_available=True) == pytest.approx(0.1)
    assert m.expected_exec_time("f.1", warm_available=False) == pytest.approx(0.9)


def test_characteristics_snapshot():
    m = CharacteristicsMap()
    m.record_arrival("f.1", 0.0)
    m.record_execution("f.1", 0.2, cold=True)
    snap = m.snapshot()
    assert snap["f.1"]["invocations"] == 1
    assert snap["f.1"]["cold_invocations"] == 1
    assert snap["f.1"]["cold_time"] == pytest.approx(0.2)


def test_characteristics_invalid_window():
    with pytest.raises(ValueError):
        CharacteristicsMap(window=0)
