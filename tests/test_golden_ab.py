"""Golden A/B pin: the lifecycle pipeline is behaviour-preserving.

``tests/data/golden_cluster_study.json`` was captured by running
``tests/golden_scenario.py`` on the pre-refactor invocation path (commit
8f4f807, where the control flow lived inline in ``Worker._ingest /
_handle / _execute`` and breakdowns were span-derived).  Replaying the
same scenario on the current pipeline must reproduce every invocation
record, every retained span, and every telemetry phase sum **bit for
bit** — floats compared exactly, after the same JSON round-trip.

If this test fails, the refactor changed behaviour: component order, RNG
draw order, a float accumulation order, or span begin/end sequencing.
Fix the regression; do not regenerate the fixture unless the change is an
intentional, reviewed behaviour change (regenerate with
``PYTHONPATH=src:tests python tests/golden_scenario.py``).
"""

import json

import pytest

from tests.golden_scenario import GOLDEN_PATH, normalized, run_scenario


@pytest.fixture(scope="module")
def replay():
    return normalized(run_scenario())


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_fixture_is_committed(golden):
    assert golden["invocations"] == 42
    outcomes = {row[2] for row in golden["records"]}
    # The scenario exercises every non-drop terminal stage.
    assert {"cold", "warm", "bypass", "timeout"} <= outcomes


def test_records_bit_identical(replay, golden):
    assert replay["invocations"] == golden["invocations"]
    assert replay["records"] == golden["records"]


def test_spans_bit_identical(replay, golden):
    assert replay["spans"] == golden["spans"]


def test_phase_decomposition_bit_identical(replay, golden):
    assert replay["breakdowns"] == golden["breakdowns"]
    assert replay["phase_totals"] == golden["phase_totals"]
    # Sanity: the pinned run has real work in every primary phase.
    for phase in ("queue", "acquire", "cold_create", "exec_comm", "post"):
        assert golden["phase_totals"][phase] > 0.0
